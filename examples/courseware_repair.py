"""The paper's running example, end to end (Sections 2-5).

Reproduces, in order:

1. the five anomalous access pairs of Section 3.2 (including chi_1 and
   chi_2 of Section 5) at all four consistency levels;
2. the Figure 3 refactored program, generated automatically;
3. a dynamic demonstration: an eventually consistent execution of the
   ORIGINAL program exhibiting the dirty read of Figure 2, and the same
   schedule on the REPAIRED program behaving serializably;
4. a refinement check: a serial workload gives identical results and a
   contained final state on both programs.

Run:  python examples/courseware_repair.py
"""

from repro import CC, EC, RR, SC, detect_anomalies, print_program, repair
from repro.corpus.courseware import COURSEWARE
from repro.refactor import check_containment, migrate_database
from repro.semantics import TxnCall, is_serializable, run_interleaved, run_serial
from repro.semantics.views import ScriptedView


def detect_at_all_levels(program) -> None:
    print("== static anomaly detection ==")
    for level in (EC, CC, RR, SC):
        pairs = detect_anomalies(program, level)
        print(f"  {level.name}: {len(pairs)} anomalous access pairs")
        if level is EC:
            for pair in pairs:
                print("    ", pair.describe())


def show_repair(program):
    report = repair(program)
    print()
    print("== repair (Figure 10) ==")
    for outcome in report.outcomes:
        print(f"  [{outcome.action}] {outcome.pair.describe()}")
    print()
    print("== refactored program (matches the paper's Figure 3) ==")
    print(print_program(report.repaired_program))
    return report


def dynamic_dirty_read(program, report) -> None:
    """Figure 2 (centre): getSt sees st_reg=true but co_avail=false."""
    print("== dynamic check: the Figure 2 dirty read ==")
    db = COURSEWARE.database(scale=4)
    calls = [TxnCall("regSt", (0, 0)), TxnCall("getSt", (0,))]
    # regSt runs both updates; getSt's S1 sees the STUDENT update (U1)
    # but S3 misses the COURSE update (U2).
    script = [
        frozenset(),                # regSt U1
        frozenset(),                # regSt S1 (count read)
        frozenset(),                # regSt U2
        frozenset({(0, "U1")}),     # getSt S1: sees registration
        frozenset({(0, "U1")}),     # getSt S2
        frozenset(),                # getSt S3: misses availability
    ]
    history = run_interleaved(
        program, db, calls, schedule=[0, 0, 0, 1, 1, 1],
        policy=ScriptedView(script),
    )
    print("  original program serializable under this schedule? "
          f"{is_serializable(history)}")

    at_db = migrate_database(db, report.repaired_program, report.rewrites)
    at_history = run_interleaved(
        report.repaired_program, at_db, calls, schedule=[0, 0, 1],
        policy=ScriptedView([frozenset()] * 3),
    )
    print("  repaired program serializable under the analogous schedule? "
          f"{is_serializable(at_history)}")


def refinement_demo(program, report) -> None:
    print()
    print("== refinement: serial workload, original vs repaired ==")
    db = COURSEWARE.database(scale=4)
    calls = [
        TxnCall("regSt", (1, 0)),
        TxnCall("getSt", (1,)),
        TxnCall("setSt", (2, "dana", "dana@host")),
        TxnCall("getSt", (2,)),
    ]
    original = run_serial(program, db, calls)
    at_db = migrate_database(db, report.repaired_program, report.rewrites)
    refactored = run_serial(report.repaired_program, at_db, calls)
    print(f"  return values original : {original.results}")
    print(f"  return values repaired : {refactored.results}")
    violations = check_containment(
        program,
        original.state.materialize(),
        refactored.state.materialize(),
        report.correspondences,
    )
    print(f"  containment violations : {len(violations)}")


def main() -> None:
    program = COURSEWARE.program()
    detect_at_all_levels(program)
    report = show_repair(program)
    dynamic_dirty_read(program, report)
    refinement_demo(program, report)


if __name__ == "__main__":
    main()
