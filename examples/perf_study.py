"""Performance study (Section 7.2, Figures 12-15) on the simulator.

Sweeps closed-loop clients over the US cluster for SmallBank, SEATS and
TPC-C in the four configurations, then shows the cross-cluster latency
effect (VA vs US vs Global).

Run:  python examples/perf_study.py            (about a minute)
      python examples/perf_study.py --fast     (seconds, coarser grid)
"""

import sys

from repro.corpus import SEATS, SMALLBANK, TPCC
from repro.exp import run_perf_sweep
from repro.exp.reporting import format_series
from repro.store import CLUSTERS, PerfConfig, US_CLUSTER


def sweep_us_cluster(fast: bool) -> None:
    clients = (1, 8, 32) if fast else (1, 8, 32, 96, 192)
    config = PerfConfig(duration_ms=2000 if fast else 6000, warmup_ms=400)
    gains, cuts = [], []
    for bench in (SMALLBANK, SEATS, TPCC):
        sweep = run_perf_sweep(
            bench, US_CLUSTER, client_counts=clients, config=config, scale=12
        )
        print(f"== {bench.name} on the US cluster ==")
        for mode in ("EC", "AT-EC", "SC", "AT-SC"):
            series = sweep.series[mode]
            print(" ", format_series(f"{mode:5s} txn/s", clients, series.throughputs()))
        gains.append(sweep.gain_at_peak())
        cuts.append(sweep.latency_reduction_at_peak())
        print(f"  AT-SC vs SC: +{gains[-1]:.0%} throughput, -{cuts[-1]:.0%} latency")
        print()
    print("average over the three benchmarks: "
          f"+{sum(gains)/3:.0%} throughput (paper: +120%), "
          f"-{sum(cuts)/3:.0%} latency (paper: -45%)")


def sweep_clusters(fast: bool) -> None:
    config = PerfConfig(duration_ms=1500, warmup_ms=300)
    print()
    print("== cross-cluster SC latency (2 clients, SmallBank) ==")
    for name, cluster in CLUSTERS.items():
        sweep = run_perf_sweep(
            SMALLBANK, cluster, client_counts=(2,), config=config, scale=8
        )
        ec = sweep.series["EC"].points[0].avg_latency_ms
        sc = sweep.series["SC"].points[0].avg_latency_ms
        print(f"  {name:7s} EC {ec:7.1f} ms   SC {sc:7.1f} ms   "
              f"penalty x{sc / ec:.1f}")


def main() -> None:
    fast = "--fast" in sys.argv
    sweep_us_cluster(fast)
    sweep_clusters(fast)


if __name__ == "__main__":
    main()
