"""Quickstart: detect and repair serializability anomalies in 30 lines.

Run:  python examples/quickstart.py
"""

from repro import detect_anomalies, parse_program, print_program, repair
from repro.api import RepairRequest, Workspace

# A tiny account service: the read-then-write pattern races with itself
# (lost update), and the two-table read can observe fractured state.
SOURCE = """
schema ACCOUNT { key acc_id; field balance; }
schema AUDIT   { key acc_id; field last_amount; }

txn deposit(id, amount) {
  x := select balance from ACCOUNT where acc_id = id;
  update ACCOUNT set balance = x.balance + amount where acc_id = id;
  update AUDIT set last_amount = amount where acc_id = id;
}

txn statement(id) {
  a := select balance from ACCOUNT where acc_id = id;
  b := select last_amount from AUDIT where acc_id = id;
  return a.balance + b.last_amount;
}
"""


def main() -> None:
    program = parse_program(SOURCE)

    print("== anomalous access pairs under eventual consistency ==")
    for pair in detect_anomalies(program):
        print(" ", pair.describe(), "via", ", ".join(pair.interferers))

    report = repair(program)
    print()
    print("== repair summary ==")
    print(report.summary())
    print()
    print("== repaired program ==")
    print(print_program(report.repaired_program))

    # The same repair through the versioned facade (what the HTTP
    # service speaks): a frozen request in, a JSON-stable result out.
    with Workspace(strategy="serial") as ws:
        result = ws.repair(RepairRequest(source=SOURCE))
    assert result.repaired_program == print_program(report.repaired_program)
    print("== facade ==")
    print(f"repro.api agrees: {result.repaired_count} pair(s) repaired, "
          f"{len(result.plan['steps'])}-step plan (schema v1)")


if __name__ == "__main__":
    main()
