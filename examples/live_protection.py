"""Live protection: enforce a repair on a store that is already running.

The static pipeline (``repro repair``) produces a rewritten program for
the *next* deployment.  ``repro.live`` protects the copy already in
production: it compiles the rewrite plan into declarative mutation
rules, and an interceptor executes the repaired commands inside each
issuing transaction while the application keeps issuing its old ones.

This walkthrough protects the Courseware benchmark end to end:
compile the rules, watch the interceptor replay a workload faithfully,
run the live-vs-static differential, and price the rewrite overhead --
then does the same through the versioned facade.

Run:  python examples/live_protection.py
"""

import random

from repro.api import LiveProtectRequest, Workspace
from repro.corpus import BY_NAME
from repro.live import (
    LiveInterceptor,
    compile_plan,
    corpus_calls,
    measure_overhead,
    validate_benchmark,
)
from repro.refactor.migrate import migrate_database
from repro.repair import repair
from repro.semantics import run_serial
from repro.store import PerfConfig


def main() -> None:
    bench = BY_NAME["Courseware"]
    program = bench.program()
    report = repair(program)

    # 1. Compile the plan into mutation rules.  Steps with no sound
    # runtime analogue (postprocess layout changes) are recorded and
    # skipped, never silently approximated.
    ruleset = compile_plan(program, report.plan)
    print("== compiled mutation rules ==")
    print(f"{len(ruleset.rules)} rule(s), "
          f"{ruleset.rewritten_rule_count()} rewriting, "
          f"{len(ruleset.unsupported)} unsupported step(s)")
    for skipped in ruleset.unsupported:
        print(f"  skipped {skipped.step['step']}: {skipped.reason[:60]}...")

    # 2. The interceptor in action: the ORIGINAL program runs against
    # the migrated (live-layout) database, with every command rewritten
    # in place -- and its serial results match the static repair's.
    db = bench.database(scale=2)
    live_db = migrate_database(db, ruleset.live_program, ruleset.rewrites)
    static_db = migrate_database(db, report.repaired_program, report.rewrites)
    calls = corpus_calls(bench, random.Random(11), 2)
    static = run_serial(report.repaired_program, static_db, calls)
    live = run_serial(program, live_db, calls,
                      executor=LiveInterceptor(ruleset))
    assert static.results == live.results
    print()
    print("== serial fidelity ==")
    print(f"{len(calls)} transaction(s) replayed; "
          "live results identical to the static repair")
    fired = sum(r.hits for r in ruleset.rules.values())
    rewritten = sum(r.rewrites for r in ruleset.rules.values())
    print(f"rules fired {fired} time(s), executed {rewritten} live command(s)")

    # 3. The differential gate: seeded weak replays of the corpus mix
    # must agree on the anomaly verdict between the enforcement target
    # (the pre-postprocess repaired program) and the live rules.
    verdict = validate_benchmark(bench, plan=report.plan, samples=40)
    print()
    print("== live-vs-static differential ==")
    print(f"original program : {verdict.original.anomalies} anomalies "
          f"/ {verdict.original.samples} weak replays")
    print(f"static target    : {verdict.target.anomalies}")
    print(f"live rules       : {verdict.live.anomalies}")
    print(f"verdict: {'PASS' if verdict.passed else 'FAIL'}")

    # 4. What enforcement costs: the simulated store under the rewrite
    # hook vs the repair search's own throughput prediction.
    m = measure_overhead(bench, clients=8, scale=4,
                         config=PerfConfig(duration_ms=2000, warmup_ms=200))
    print()
    print("== rewrite overhead (simulated) ==")
    print(f"predicted {m.predicted_throughput:.1f} txn/s, "
          f"live {m.live_throughput:.1f} txn/s "
          f"(ratio {m.overhead_ratio:.3f})")

    # 5. The same operation through the versioned facade -- the exact
    # document POST /v1/protect returns.
    with Workspace(strategy="serial") as ws:
        result = ws.protect(LiveProtectRequest(benchmark="Courseware",
                                               samples=40))
    assert result.passed == verdict.passed
    print()
    print("== facade ==")
    print(f"repro.api agrees: {result.rules} rule(s), passed={result.passed} "
          "(schema v1)")


if __name__ == "__main__":
    main()
