"""SmallBank case study (Section 7.1 + Appendix A.2).

Shows the three-way story on the banking benchmark:

1. static analysis finds the anomaly set; repair fuses the satellite
   balance tables into the account row and eliminates the fracture
   pairs, while the check-then-zero pattern resists the logger rule
   (the paper's residual 26%);
2. the surviving transactions are pinned to serializable execution
   (the AT-SC program);
3. the dynamic invariant study: which application invariants are
   violable under adversarial EC executions, before and after repair.

Run:  python examples/smallbank_study.py
"""

from repro import print_program, repair
from repro.corpus import SMALLBANK
from repro.exp import run_invariant_study


def main() -> None:
    program = SMALLBANK.program()
    print(f"SmallBank: {len(program.transactions)} transactions, "
          f"{len(program.schemas)} tables")

    report = repair(program)
    print(f"anomalous pairs: {len(report.initial_pairs)} -> "
          f"{len(report.residual_pairs)}")
    print(f"tables: {[s.name for s in program.schemas]} -> "
          f"{[s.name for s in report.repaired_program.schemas]}")

    print()
    print("residual (unrepairable) pairs -- the check-then-write shapes:")
    for pair in report.residual_pairs[:8]:
        print("  ", pair.describe())

    at_sc = report.serializable_variant()
    flagged = [t.name for t in at_sc.transactions if t.serializable]
    print()
    print(f"AT-SC pins these transactions to serializable execution: {flagged}")

    print()
    print("repaired Balance transaction (single atomic row read):")
    print(print_program(report.repaired_program).split("txn Balance")[1].split("}")[0])

    print()
    print("== dynamic invariant study (Appendix A.2) ==")
    study = run_invariant_study(samples=40)
    for inv in ("nonnegative", "conservation", "joint-view"):
        print(f"  {inv:13s} original={'VIOLABLE' if study.original[inv] else 'safe':9s}"
              f" repaired={'VIOLABLE' if study.repaired[inv] else 'safe'}")
    print()
    print("(paper: original violates 3, repaired violates 1; our register-"
          "based store cannot express the increment-negativity case, so the "
          "original shows 2 -- see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
