"""Authoring your own benchmark: a ticket-sales service, end to end.

Shows the workflow a downstream user follows to bring their own
application: write the schema+transactions in the DSL (declaring the
reference paths the redirect rule can exploit), detect anomalies, repair,
migrate data, and measure the four deployment configurations on a
simulated geo-cluster.

Run:  python examples/custom_benchmark.py
"""


from repro import detect_anomalies, parse_program, print_program, repair
from repro.refactor import migrate_database
from repro.semantics import Database, TxnCall
from repro.store import PerfConfig, US_CLUSTER, profile_program, simulate

SOURCE = """
schema EVENT {
  key ev_id;
  field ev_name;
  field ev_sold;
}

schema VENUE {
  key vn_id;
  field vn_city;
  field vn_capacity;
}

schema LISTING {
  key ls_id;
  field ls_ev_id ref EVENT.ev_id;
  field ls_vn_id ref VENUE.vn_id;
  field ls_price;
}

txn browse(lid) {
  l := select ls_ev_id, ls_vn_id, ls_price from LISTING where ls_id = lid;
  e := select ev_name, ev_sold from EVENT where ev_id = l.ls_ev_id;
  v := select vn_city from VENUE where vn_id = l.ls_vn_id;
  return l.ls_price + e.ev_sold;
}

txn buy(lid, evid) {
  e := select ev_sold from EVENT where ev_id = evid;
  update EVENT set ev_sold = e.ev_sold + 1 where ev_id = evid;
  update LISTING set ls_price = 100 where ls_id = lid;
}

txn reprice(lid, price) {
  update LISTING set ls_price = price where ls_id = lid;
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    print("anomalies under EC:")
    for pair in detect_anomalies(program):
        print("  ", pair.describe())

    report = repair(program)
    print()
    print(report.summary())
    print()
    print(print_program(report.repaired_program))

    # The same verdict through the versioned facade (repro.api): the
    # HTTP service serves exactly this result for POST /v1/repair.
    from repro.api import RepairRequest, Workspace

    with Workspace(strategy="serial") as ws:
        wire = ws.repair(RepairRequest(source=SOURCE))
    assert wire.repaired_program == print_program(report.repaired_program)
    print(f"(facade agrees: plan of {len(wire.plan['steps'])} steps, schema v1)")

    # Populate, migrate, and compare deployment configurations.
    db = Database(program)
    for ev in range(4):
        db.insert("EVENT", ev_id=ev, ev_name=f"show{ev}", ev_sold=0)
    db.insert("VENUE", vn_id=0, vn_city="Lisbon", vn_capacity=500)
    for ls in range(8):
        db.insert("LISTING", ls_id=ls, ls_ev_id=ls % 4, ls_vn_id=0, ls_price=60)

    calls = {
        "browse": TxnCall("browse", (1,)),
        "buy": TxnCall("buy", (1, 1)),
        "reprice": TxnCall("reprice", (1, 80)),
    }
    mix = [("browse", 60.0), ("buy", 30.0), ("reprice", 10.0)]
    config = PerfConfig(duration_ms=2000, warmup_ms=300)

    profiles = profile_program(program, db, calls)
    at_db = migrate_database(db, report.repaired_program, report.rewrites)
    at_profiles = profile_program(report.repaired_program, at_db, calls)

    print("deployment comparison (32 clients, US cluster):")
    for name, profs, strong in (
        ("EC   ", profiles, False),
        ("SC   ", profiles, True),
        ("AT-EC", at_profiles, False),
    ):
        result = simulate(profs, mix, US_CLUSTER, 32, config, serialize_all=strong)
        print(f"  {name} {result.throughput:7.0f} txn/s  "
              f"{result.avg_latency_ms:6.1f} ms")


if __name__ == "__main__":
    main()
