"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at tool boundaries while the library keeps
fine-grained categories internally.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised when DSL source text cannot be tokenized or parsed.

    Carries the 1-based source position to make error messages actionable.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ValidationError(ReproError):
    """Raised when a syntactically valid program fails static checks.

    Examples: referencing an unknown table or field, a where clause on a
    field that does not belong to the queried schema, or re-declaring a
    transaction name.
    """


class SemanticsError(ReproError):
    """Raised by the interpreter for runtime-level faults.

    Examples: evaluating ``at1(x.f)`` when ``x`` holds no records, or an
    insert that does not assign the full primary key.
    """


class RefactoringError(ReproError):
    """Raised when a refactoring rule is applied outside its precondition.

    The repair engine treats these as "rule not applicable" and moves on;
    direct users of :mod:`repro.refactor` see them as hard errors.
    """


class PlanError(ReproError):
    """Raised when a rewrite-plan step cannot be applied or decoded.

    The plan search treats these as "candidate not viable" and moves on;
    replaying a serialized plan on a program it does not fit surfaces
    them as hard errors.
    """


class SolverError(ReproError):
    """Raised for malformed solver input (e.g. clauses over unknown vars)."""


class SimulationError(ReproError):
    """Raised by the distributed-store simulator for invalid configs."""
