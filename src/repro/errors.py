"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single type at tool boundaries while the library keeps
fine-grained categories internally.

Every class carries a stable, machine-readable ``code`` (kebab-case,
part of the versioned API surface -- see ``schemas/error.v1.json``):
:mod:`repro.api` and :mod:`repro.service` serialize errors as
``{"error": {"code": ..., "message": ...}}``, and clients are expected
to dispatch on the code, never on the message text.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""

    code = "repro-error"

    def to_payload(self) -> dict:
        """The wire form of this error (see ``schemas/error.v1.json``)."""
        return {"error": {"code": self.code, "message": str(self)}}


class ParseError(ReproError):
    """Raised when DSL source text cannot be tokenized or parsed.

    Carries the 1-based source position to make error messages actionable.
    """

    code = "parse-error"

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ValidationError(ReproError):
    """Raised when a syntactically valid program fails static checks.

    Examples: referencing an unknown table or field, a where clause on a
    field that does not belong to the queried schema, or re-declaring a
    transaction name.
    """

    code = "validation-error"


class SemanticsError(ReproError):
    """Raised by the interpreter for runtime-level faults.

    Examples: evaluating ``at1(x.f)`` when ``x`` holds no records, or an
    insert that does not assign the full primary key.
    """

    code = "semantics-error"


class RefactoringError(ReproError):
    """Raised when a refactoring rule is applied outside its precondition.

    The repair engine treats these as "rule not applicable" and moves on;
    direct users of :mod:`repro.refactor` see them as hard errors.
    """

    code = "refactoring-error"


class PlanError(ReproError):
    """Raised when a rewrite-plan step cannot be applied or decoded.

    The plan search treats these as "candidate not viable" and moves on;
    replaying a serialized plan on a program it does not fit surfaces
    them as hard errors.
    """

    code = "plan-error"


class SolverError(ReproError):
    """Raised for malformed solver input (e.g. clauses over unknown vars)."""

    code = "solver-error"


class BudgetExhaustedError(ReproError):
    """A single SAT query ran out of its :class:`~repro.budget.Budget`
    (wall-clock deadline or conflict cap) and answered *unknown*.

    Raised by the formula layer when the solver reports an unknown
    result; the analysis layers catch it and convert to a
    :class:`DeadlineExceededError` carrying whatever partial results
    were already established.
    """

    code = "budget-exhausted"

    def __init__(self, message: str, reason: str = "deadline"):
        super().__init__(message)
        self.reason = reason


class DeadlineExceededError(ReproError):
    """An operation exceeded its ``deadline_ms``/``budget`` and was cut
    short cooperatively.

    ``partial`` is a JSON-ready document with whatever the analysis
    established before the cut (per-pair verdicts found so far and the
    checked/total counts); the service serializes it inside the error
    payload so a client paying for a bounded answer gets the bounded
    answer, not nothing.  The HTTP layer maps this to 504.
    """

    code = "deadline-exceeded"

    def __init__(self, message: str, partial: dict = None):
        super().__init__(message)
        self.partial = partial

    def to_payload(self) -> dict:
        payload = super().to_payload()
        if self.partial is not None:
            payload["error"]["partial"] = self.partial
        return payload


class SimulationError(ReproError):
    """Raised by the distributed-store simulator for invalid configs."""

    code = "simulation-error"


class LiveRewriteError(ReproError):
    """Raised when a rewrite plan cannot be lowered into sound runtime
    mutation rules (rule installation failure).

    Steps with no runtime analogue that are *safe to skip* (postprocess)
    are recorded as :class:`repro.live.rules.UnsupportedStep` entries
    instead; this error is reserved for plans whose live enforcement
    would silently diverge from the static repair.
    """

    code = "live-rewrite-error"
