"""The small-step interpreter (Figure 6).

A transaction instance is compiled into a Python generator that yields
each database command it is about to execute; the scheduler performs the
command against the shared :class:`DatabaseState` with a policy-chosen
local view and resumes the generator.  Control commands (``if``,
``iterate``, ``skip``, sequencing) are evaluated locally, exactly as in
the paper where only database commands interact with Sigma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Generator, Iterable, List, Optional, Tuple

from repro.errors import SemanticsError
from repro.lang import ast
from repro.semantics.events import Event, READ, WRITE, RecordId
from repro.semantics.state import DatabaseState

# A local binding: ordered records as (record id, field -> value).
ResultSet = List[Tuple[RecordId, Dict[str, Any]]]


@dataclass
class TxnCall:
    """A transaction invocation: name plus argument values."""

    name: str
    args: Tuple[Any, ...] = ()

    def bind(self, txn: ast.Transaction) -> Dict[str, Any]:
        if len(self.args) != len(txn.params):
            raise SemanticsError(
                f"{txn.name} expects {len(txn.params)} args, got {len(self.args)}"
            )
        return dict(zip(txn.params, self.args))


class Instance:
    """A running transaction instance (the tuples of Gamma in Fig. 6)."""

    def __init__(self, iid: int, program: ast.Program, call: TxnCall):
        self.iid = iid
        self.program = program
        self.txn = program.transaction(call.name)
        self.call = call
        self.args = call.bind(self.txn)
        self.store: Dict[str, ResultSet] = {}
        self.iter_stack: List[int] = []
        self.result: Any = None
        self.finished = False
        self._gen = self._run()

    # -- driving ---------------------------------------------------------

    def next_command(self) -> Optional[ast.Command]:
        """Advance to the next database command; None when finished."""
        try:
            return next(self._gen)
        except StopIteration:
            self.finished = True
            return None

    def _run(self) -> Generator[ast.Command, None, None]:
        yield from self._exec_body(self.txn.body)
        if self.txn.ret is not None:
            self.result = self.eval_expr(self.txn.ret)

    def _exec_body(
        self, body: Iterable[ast.Command]
    ) -> Generator[ast.Command, None, None]:
        for cmd in body:
            if isinstance(cmd, (ast.Select, ast.Update, ast.Insert)):
                yield cmd
            elif isinstance(cmd, ast.If):
                if _truthy(self.eval_expr(cmd.cond)):
                    yield from self._exec_body(cmd.body)
            elif isinstance(cmd, ast.Iterate):
                count = self.eval_expr(cmd.count)
                if not isinstance(count, int) or count < 0:
                    raise SemanticsError(
                        f"{self.txn.name}: iterate count must be a non-negative "
                        f"int, got {count!r}"
                    )
                for i in range(count):
                    self.iter_stack.append(i + 1)
                    yield from self._exec_body(cmd.body)
                    self.iter_stack.pop()
            elif isinstance(cmd, ast.Skip):
                continue
            else:
                raise SemanticsError(f"unknown command {cmd!r}")

    # -- expression evaluation (the big-step relation of the paper) -------

    def eval_expr(self, expr: ast.Expr) -> Any:
        if isinstance(expr, ast.Const):
            return expr.value
        if isinstance(expr, ast.Arg):
            if expr.name not in self.args:
                raise SemanticsError(f"unbound argument {expr.name!r}")
            return self.args[expr.name]
        if isinstance(expr, ast.IterVar):
            if not self.iter_stack:
                raise SemanticsError("'iter' outside an iterate body")
            return self.iter_stack[-1]
        if isinstance(expr, ast.Uuid):
            # Freshness is provided by the state at command execution
            # time; within pure expression evaluation, a placeholder is
            # produced and replaced by execute_command.
            raise SemanticsError("uuid() may only appear in insert assignments")
        if isinstance(expr, ast.BinOp):
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            return _arith(expr.op, left, right)
        if isinstance(expr, ast.Cmp):
            left = self.eval_expr(expr.left)
            right = self.eval_expr(expr.right)
            return _compare(expr.op, left, right)
        if isinstance(expr, ast.BoolOp):
            left = _truthy(self.eval_expr(expr.left))
            if expr.op == "and":
                return left and _truthy(self.eval_expr(expr.right))
            return left or _truthy(self.eval_expr(expr.right))
        if isinstance(expr, ast.Not):
            return not _truthy(self.eval_expr(expr.operand))
        if isinstance(expr, ast.At):
            records = self._records_of(expr.var)
            index = self.eval_expr(expr.index)
            if not isinstance(index, int) or index < 1 or index > len(records):
                raise SemanticsError(
                    f"at({index}, {expr.var}.{expr.field}): index out of "
                    f"range (have {len(records)} records)"
                )
            return records[index - 1][1].get(expr.field)
        if isinstance(expr, ast.Agg):
            records = self._records_of(expr.var)
            values = [fields.get(expr.field) for _, fields in records]
            return _aggregate(expr.func, values)
        raise SemanticsError(f"unknown expression {expr!r}")

    def _records_of(self, var: str) -> ResultSet:
        if var not in self.store:
            raise SemanticsError(f"variable {var!r} not bound")
        return self.store[var]

    def eval_where(self, where: ast.Where, record_fields: Dict[str, Any]) -> bool:
        """Evaluate a where clause against a record snapshot."""
        if isinstance(where, ast.WhereTrue):
            return True
        if isinstance(where, ast.WhereCond):
            lhs = record_fields.get(where.field)
            rhs = self.eval_expr(where.expr)
            return _compare(where.op, lhs, rhs)
        if isinstance(where, ast.WhereBool):
            left = self.eval_where(where.left, record_fields)
            if where.op == "and":
                return left and self.eval_where(where.right, record_fields)
            return left or self.eval_where(where.right, record_fields)
        raise SemanticsError(f"unknown where clause {where!r}")


# ---------------------------------------------------------------------------
# Command execution against the shared state
# ---------------------------------------------------------------------------


def execute_command(
    state: DatabaseState,
    instance: Instance,
    cmd: ast.Command,
    view: FrozenSet[int],
) -> List[Event]:
    """Execute one database command under ``view``; returns its events.

    Mirrors the (select)/(update) rules: evaluates the where clause
    against the view-reconstructed record snapshots, produces the event
    batch with a single fresh timestamp, appends it to the store with
    visibility edges from the view, and advances the counter.
    """
    if isinstance(cmd, ast.Select):
        return _exec_select(state, instance, cmd, view)
    if isinstance(cmd, ast.Update):
        return _exec_update(state, instance, cmd, view)
    if isinstance(cmd, ast.Insert):
        return _exec_insert(state, instance, cmd, view)
    raise SemanticsError(f"not a database command: {cmd!r}")


def _exec_select(
    state: DatabaseState,
    instance: Instance,
    cmd: ast.Select,
    view: FrozenSet[int],
) -> List[Event]:
    schema = state.program.schema(cmd.table)
    fields = cmd.selected_fields(schema)
    where_fields = ast.where_fields(cmd.where)
    ts = state.tick()
    events: List[Event] = []
    results: ResultSet = []
    for record in state.visible_records(view, cmd.table):
        snapshot = state.record_snapshot(
            view, record, set(where_fields) | set(fields) | {"alive"}
        )
        if snapshot.get("alive") is False:
            continue
        # epsilon_1: the scan touches the where-clause fields of every record.
        for f in where_fields:
            events.append(
                Event(state.next_eid() + len(events), READ, ts, record, f, None,
                      instance.iid, cmd.label)
            )
        if instance.eval_where(cmd.where, snapshot):
            # epsilon_2: read events for the retrieved fields.
            for f in fields:
                events.append(
                    Event(state.next_eid() + len(events), READ, ts, record, f,
                          None, instance.iid, cmd.label)
                )
            results.append((record, {f: snapshot[f] for f in fields}))
    state.append_events(events, view)
    instance.store[cmd.var] = results
    return events


def _exec_update(
    state: DatabaseState,
    instance: Instance,
    cmd: ast.Update,
    view: FrozenSet[int],
) -> List[Event]:
    where_fields = ast.where_fields(cmd.where)
    ts = state.tick()
    events: List[Event] = []
    for record in state.visible_records(view, cmd.table):
        snapshot = state.record_snapshot(
            view, record, set(where_fields) | {"alive"}
        )
        if snapshot.get("alive") is False:
            continue
        if not instance.eval_where(cmd.where, snapshot):
            continue
        for f, expr in cmd.assignments:
            value = instance.eval_expr(expr)
            events.append(
                Event(state.next_eid() + len(events), WRITE, ts, record, f,
                      value, instance.iid, cmd.label)
            )
    state.append_events(events, view)
    return events


def _exec_insert(
    state: DatabaseState,
    instance: Instance,
    cmd: ast.Insert,
    view: FrozenSet[int],
) -> List[Event]:
    schema = state.program.schema(cmd.table)
    ts = state.tick()
    values: Dict[str, Any] = {}
    for f, expr in cmd.assignments:
        if isinstance(expr, ast.Uuid):
            values[f] = state.fresh_uuid()
        else:
            values[f] = instance.eval_expr(expr)
    key = tuple(values[k] for k in schema.key)
    record: RecordId = (cmd.table, key)
    events: List[Event] = []
    for f in schema.fields:
        if f in values:
            events.append(
                Event(state.next_eid() + len(events), WRITE, ts, record, f,
                      values[f], instance.iid, cmd.label)
            )
    # The implicit alive flag materialises the record (Section 3's model
    # of INSERT).
    events.append(
        Event(state.next_eid() + len(events), WRITE, ts, record, "alive",
              True, instance.iid, cmd.label)
    )
    state.append_events(events, view)
    return events


# ---------------------------------------------------------------------------
# Value helpers
# ---------------------------------------------------------------------------


def _truthy(value: Any) -> bool:
    return bool(value)


def _arith(op: str, left: Any, right: Any) -> Any:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SemanticsError("division by zero")
        return left // right if isinstance(left, int) and isinstance(right, int) else left / right
    raise SemanticsError(f"unknown arithmetic operator {op!r}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if left is None or right is None:
        return False
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SemanticsError(f"unknown comparison operator {op!r}")


def _aggregate(func: str, values: List[Any]) -> Any:
    present = [v for v in values if v is not None]
    if func == "sum":
        return sum(present) if present else 0
    if func == "count":
        return len(present)
    if func == "min":
        if not present:
            raise SemanticsError("min() of empty result set")
        return min(present)
    if func == "max":
        if not present:
            raise SemanticsError("max() of empty result set")
        return max(present)
    if func == "any":
        if not present:
            raise SemanticsError("any() of empty result set")
        return present[0]
    raise SemanticsError(f"unknown aggregator {func!r}")
