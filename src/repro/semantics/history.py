"""Execution histories and the serializability conditions of Section 3.2.

A :class:`History` records the step sequence of an interleaved execution:
which instance executed which command at which timestamp, with which
view.  The checkers implement the paper's two conditions --

- **strong atomicity**: timestamp order implies visibility, and all of a
  transaction's events become visible together;
- **strong isolation**: a transaction never gains visibility of another
  transaction's events partway through its execution --

plus a conventional serialization-graph cycle check used by the dynamic
invariant experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.semantics.events import Event, WRITE
from repro.semantics.state import DatabaseState


@dataclass
class Step:
    """One executed database command."""

    instance: int
    txn_name: str
    label: str
    ts: int
    view: FrozenSet[int]
    events: Tuple[Event, ...]


@dataclass
class History:
    """A finite trace of interleaved transaction execution."""

    state: DatabaseState
    steps: List[Step] = field(default_factory=list)
    results: Dict[int, Any] = field(default_factory=dict)

    def record(self, step: Step) -> None:
        self.steps.append(step)

    @property
    def instances(self) -> List[int]:
        seen: List[int] = []
        for step in self.steps:
            if step.instance not in seen:
                seen.append(step.instance)
        return seen

    def events_visible_to(self, step: Step) -> FrozenSet[int]:
        return step.view

    def steps_of(self, instance: int) -> List[Step]:
        return [s for s in self.steps if s.instance == instance]


# ---------------------------------------------------------------------------
# Strong atomicity / strong isolation (Section 3.2)
# ---------------------------------------------------------------------------


def check_strong_atomicity(history: History) -> Optional[str]:
    """Return a violation description, or None if strong atomicity holds.

    Condition: (1) every event with a smaller counter is visible to later
    events; (2) if any event of transaction T is visible to an event e,
    then all of T's earlier-created events are visible to e.
    """
    state = history.state
    for step in history.steps:
        view = step.view
        # (1) linearization: all strictly earlier events must be visible.
        for ev in state.events:
            if ev.ts < step.ts and ev.eid not in view:
                return (
                    f"event {ev.label}@txn{ev.txn} (ts {ev.ts}) invisible to "
                    f"{step.label}@txn{step.instance} (ts {step.ts})"
                )
    # (2) all-or-nothing: follows from (1) in complete histories, but check
    # the pairwise formulation directly for partial views.
    for step in history.steps:
        view = step.view
        per_txn_seen: Dict[int, bool] = {}
        for ev in state.events:
            if ev.ts >= step.ts or ev.txn == step.instance:
                continue
            seen = ev.eid in view
            if ev.txn in per_txn_seen and per_txn_seen[ev.txn] != seen:
                return (
                    f"txn{ev.txn} is partially visible to "
                    f"{step.label}@txn{step.instance}"
                )
            per_txn_seen[ev.txn] = seen
    return None


def check_strong_isolation(history: History) -> Optional[str]:
    """Return a violation description, or None if strong isolation holds.

    Condition: if an event eta'' is visible to a later event of T, it must
    also have been visible to every earlier event of T -- i.e. a running
    transaction's view of other transactions never grows.
    """
    for instance in history.instances:
        steps = history.steps_of(instance)
        for earlier_idx in range(len(steps)):
            for later_idx in range(earlier_idx + 1, len(steps)):
                earlier, later = steps[earlier_idx], steps[later_idx]
                gained = later.view - earlier.view
                for eid in gained:
                    ev = history.state.events[eid]
                    # Events created after `earlier` executed could not
                    # have been in its view; only previously existing
                    # events count as isolation violations.
                    if ev.ts < earlier.ts and ev.txn != instance:
                        return (
                            f"txn{instance} gained visibility of "
                            f"{ev.label}@txn{ev.txn} between "
                            f"{earlier.label} and {later.label}"
                        )
    return None


def is_serializable(history: History) -> bool:
    """Serialization-graph test over the history's reads-from relation.

    Builds the conventional DSG: nodes are transaction instances, with
    WR (reads-from), WW (timestamp order on same field), and RW
    (anti-dependency) edges; the history is serializable iff the graph is
    acyclic.  This is the checker the dynamic experiments use to count
    anomalous executions.
    """
    graph = serialization_graph(history)
    return nx.is_directed_acyclic_graph(graph)


def serialization_graph(history: History) -> "nx.DiGraph":
    state = history.state
    graph = nx.DiGraph()
    for instance in history.instances:
        graph.add_node(instance)

    writes_by_loc: Dict[Tuple, List[Event]] = {}
    for ev in state.events:
        if ev.kind == WRITE:
            writes_by_loc.setdefault((ev.record, ev.field), []).append(ev)
    for evs in writes_by_loc.values():
        evs.sort(key=lambda e: (e.ts, e.eid))
        # WW edges in timestamp (arbitration) order.
        for i in range(len(evs)):
            for j in range(i + 1, len(evs)):
                if evs[i].txn != evs[j].txn:
                    graph.add_edge(evs[i].txn, evs[j].txn, kind="ww")

    for step in history.steps:
        view = step.view
        for ev in step.events:
            if ev.kind == WRITE:
                continue
            loc = (ev.record, ev.field)
            writes = writes_by_loc.get(loc, [])
            visible = [w for w in writes if w.eid in view and w.ts < step.ts]
            invisible = [w for w in writes if w.eid not in view and w.txn != step.instance]
            if visible:
                src = max(visible, key=lambda w: (w.ts, w.eid))
                if src.txn != step.instance:
                    graph.add_edge(src.txn, step.instance, kind="wr")
                # Anti-dependency: writes newer than what we read.
                for w in writes:
                    if w.ts > src.ts and w.txn not in (step.instance, src.txn):
                        graph.add_edge(step.instance, w.txn, kind="rw")
            else:
                # Read from the initial database: every write is newer.
                for w in invisible:
                    graph.add_edge(step.instance, w.txn, kind="rw")
    return graph
