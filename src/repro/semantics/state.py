"""Concrete database states.

``Database`` is a plain initial table assignment (what the paper calls the
table instances at history start); ``DatabaseState`` is the evolving
triple ``(str, vis, cnt)`` layered over it.  Record reconstruction
``Sigma(r.f)`` resolves a field to the value of the maximal-timestamp
visible write, falling back to the initial database.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import SemanticsError
from repro.lang import ast
from repro.semantics.events import Event, RecordId, WRITE

# table -> key tuple -> field -> value
TableData = Dict[str, Dict[Tuple[Any, ...], Dict[str, Any]]]


class Database:
    """An initial database population for a program's schemas."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.tables: TableData = {s.name: {} for s in program.schemas}

    def insert(self, table: str, **fields: Any) -> Tuple[Any, ...]:
        """Populate one record; returns its key tuple.

        All schema fields must be provided (missing non-key fields default
        to ``None``); key fields are mandatory.
        """
        schema = self.program.schema(table)
        for k in schema.key:
            if k not in fields:
                raise SemanticsError(f"insert into {table} missing key field {k}")
        unknown = set(fields) - set(schema.fields)
        if unknown:
            raise SemanticsError(
                f"insert into {table} with unknown fields {sorted(unknown)}"
            )
        key = tuple(fields[k] for k in schema.key)
        record = {f: fields.get(f) for f in schema.fields}
        self.tables[table][key] = record
        return key

    def copy(self) -> "Database":
        dup = Database(self.program)
        dup.tables = copy.deepcopy(self.tables)
        return dup

    def records(self, table: str) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
        return self.tables[table]


class DatabaseState:
    """The evolving state Sigma = (str, vis, cnt) over an initial database.

    ``vis`` is stored as ``{target eid -> set of source eids}``: the set of
    events that were in the local view when the target event was created
    (the paper's ``vis(eta, eta')`` with eta visible to eta').
    """

    def __init__(self, base: Database):
        self.base = base
        self.program = base.program
        self.events: List[Event] = []
        self.vis: Dict[int, FrozenSet[int]] = {}
        self.cnt = 1  # counter 0 is reserved for the initial database
        self._uuid_counter = 0

    # -- event allocation ----------------------------------------------------

    def append_events(self, events: Iterable[Event], view: FrozenSet[int]) -> None:
        for ev in events:
            self.events.append(ev)
            self.vis[ev.eid] = view

    def next_eid(self) -> int:
        return len(self.events)

    def fresh_uuid(self) -> str:
        self._uuid_counter += 1
        return f"uuid-{self._uuid_counter}"

    def tick(self) -> int:
        ts = self.cnt
        self.cnt += 1
        return ts

    # -- views and reconstruction ---------------------------------------------

    def all_event_ids(self) -> FrozenSet[int]:
        return frozenset(ev.eid for ev in self.events)

    def atomicity_closure(self, eids: Set[int]) -> FrozenSet[int]:
        """Close an event-id set under record-level atomicity.

        ConstructView: if an event is in the view, every event with the
        same record and the same counter value must be in the view too.
        """
        atoms = {self.events[e].atom() for e in eids}
        closed = {ev.eid for ev in self.events if ev.atom() in atoms}
        return frozenset(closed | eids)

    def visible_writes(
        self, view: FrozenSet[int], record: RecordId, field: str
    ) -> List[Event]:
        """Writes to ``record.field`` inside ``view``, timestamp order."""
        out = [
            ev
            for ev in self.events
            if ev.eid in view
            and ev.kind == WRITE
            and ev.record == record
            and ev.field == field
        ]
        out.sort(key=lambda ev: (ev.ts, ev.eid))
        return out

    def read_field(
        self, view: FrozenSet[int], record: RecordId, field: str
    ) -> Any:
        """Sigma(r.f) restricted to ``view``: latest visible write, or the
        initial database value."""
        writes = self.visible_writes(view, record, field)
        if writes:
            return writes[-1].value
        table, key = record
        base_record = self.base.tables.get(table, {}).get(key)
        if base_record is None:
            return None
        return base_record.get(field)

    def visible_records(self, view: FrozenSet[int], table: str) -> List[RecordId]:
        """Record identities present in ``view``: initial records plus
        records materialised by visible ``alive`` writes (inserts)."""
        keys = set(self.base.tables.get(table, {}).keys())
        for ev in self.events:
            if (
                ev.eid in view
                and ev.kind == WRITE
                and ev.table == table
                and ev.field == "alive"
                and ev.value
            ):
                keys.add(ev.key)
        return [(table, k) for k in sorted(keys, key=repr)]

    def record_snapshot(
        self, view: FrozenSet[int], record: RecordId, fields: Iterable[str]
    ) -> Dict[str, Any]:
        return {f: self.read_field(view, record, f) for f in fields}

    # -- whole-table reconstruction (full visibility) ---------------------------

    def materialize(self) -> TableData:
        """Reconstruct every table under full visibility.

        Used by tests, the containment checker, and invariant assertions.
        """
        view = self.all_event_ids()
        out: TableData = {}
        for schema in self.program.schemas:
            table: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
            for record in self.visible_records(view, schema.name):
                table[record[1]] = self.record_snapshot(view, record, schema.fields)
            out[schema.name] = table
        return out

    def events_of_txn(self, txn: int) -> List[Event]:
        return [ev for ev in self.events if ev.txn == txn]
