"""Operational semantics of weakly isolated database programs (Section 3).

The model follows the paper: a database state is a triple
``(str, vis, cnt)`` of an event store, a visibility relation, and a global
execution counter.  Commands execute against *local views* of the store
that are only required to respect record-level atomicity
(``ConstructView``); stronger consistency levels add further closure
conditions on the views a policy may construct.

Public surface:

- :class:`repro.semantics.state.Database` / ``DatabaseState`` -- concrete
  stores;
- :class:`repro.semantics.interp.Instance` /
  :func:`repro.semantics.interp.execute_command` -- the small-step
  interpreter;
- :mod:`repro.semantics.views` -- view construction policies (serial,
  random-EC, scripted);
- :mod:`repro.semantics.scheduler` -- serial and interleaved execution
  drivers;
- :mod:`repro.semantics.history` -- execution histories plus the strong
  atomicity / strong isolation checks of Section 3.2.
"""

from repro.semantics.events import Event
from repro.semantics.state import Database, DatabaseState
from repro.semantics.interp import Instance, TxnCall, execute_command
from repro.semantics.views import (
    FullView,
    RandomPartialView,
    ScriptedView,
    ViewPolicy,
)
from repro.semantics.scheduler import (
    run_serial,
    run_interleaved,
    enumerate_schedules,
)
from repro.semantics.history import (
    History,
    check_strong_atomicity,
    check_strong_isolation,
    is_serializable,
)

__all__ = [
    "Event",
    "Database",
    "DatabaseState",
    "Instance",
    "TxnCall",
    "execute_command",
    "FullView",
    "RandomPartialView",
    "ScriptedView",
    "ViewPolicy",
    "run_serial",
    "run_interleaved",
    "enumerate_schedules",
    "History",
    "check_strong_atomicity",
    "check_strong_isolation",
    "is_serializable",
]
