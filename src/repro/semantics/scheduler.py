"""Execution drivers: serial runs, scripted interleavings, exploration.

These drive :class:`~repro.semantics.interp.Instance` generators against
a shared :class:`~repro.semantics.state.DatabaseState`, one database
command per step, recording a :class:`~repro.semantics.history.History`.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SemanticsError
from repro.lang import ast
from repro.semantics.history import History, Step
from repro.semantics.interp import Instance, TxnCall, execute_command
from repro.semantics.state import Database, DatabaseState
from repro.semantics.views import FullView, ViewPolicy

# An executor performs one database command and returns its events; the
# default is plain execute_command.  repro.live installs its rewrite
# interceptor here without the schedulers knowing about rules.
Executor = Callable[..., List]


def run_serial(
    program: ast.Program,
    db: Database,
    calls: Sequence[TxnCall],
    executor: Optional[Executor] = None,
) -> History:
    """Run ``calls`` one after another under full visibility.

    The result is a serializable history by construction; its final state
    is the reference point for refinement testing.
    """
    state = DatabaseState(db.copy())
    history = History(state)
    policy = FullView()
    for iid, call in enumerate(calls):
        instance = Instance(iid, program, call)
        _run_to_completion(state, history, instance, policy, executor)
        history.results[iid] = instance.result
    return history


def run_interleaved(
    program: ast.Program,
    db: Database,
    calls: Sequence[TxnCall],
    schedule: Sequence[int],
    policy: ViewPolicy,
    executor: Optional[Executor] = None,
) -> History:
    """Run ``calls`` interleaved according to ``schedule``.

    ``schedule[i]`` names which instance executes its next database
    command at step ``i``; remaining commands run to completion in
    instance order afterwards (so partial schedules are allowed).
    """
    state = DatabaseState(db.copy())
    history = History(state)
    instances = [Instance(iid, program, call) for iid, call in enumerate(calls)]
    pending: List[Optional[ast.Command]] = [inst.next_command() for inst in instances]
    for iid in schedule:
        if iid < 0 or iid >= len(instances):
            raise SemanticsError(f"schedule names unknown instance {iid}")
        cmd = pending[iid]
        if cmd is None:
            continue
        _step(state, history, instances[iid], cmd, policy, executor)
        pending[iid] = instances[iid].next_command()
    for iid, instance in enumerate(instances):
        while pending[iid] is not None:
            _step(state, history, instance, pending[iid], policy, executor)  # type: ignore[arg-type]
            pending[iid] = instance.next_command()
        history.results[iid] = instance.result
    return history


def _run_to_completion(
    state: DatabaseState,
    history: History,
    instance: Instance,
    policy: ViewPolicy,
    executor: Optional[Executor] = None,
) -> None:
    cmd = instance.next_command()
    while cmd is not None:
        _step(state, history, instance, cmd, policy, executor)
        cmd = instance.next_command()


def _step(
    state: DatabaseState,
    history: History,
    instance: Instance,
    cmd: ast.Command,
    policy: ViewPolicy,
    executor: Optional[Executor] = None,
) -> None:
    view = policy.choose_view(state, instance.iid)
    events = (executor or execute_command)(state, instance, cmd, view)
    history.record(
        Step(
            instance=instance.iid,
            txn_name=instance.txn.name,
            label=getattr(cmd, "label", ""),
            ts=events[0].ts if events else state.cnt - 1,
            view=view,
            events=tuple(events),
        )
    )


def enumerate_schedules(
    command_counts: Sequence[int], limit: Optional[int] = None
) -> Iterator[Tuple[int, ...]]:
    """All interleavings of instances with the given command counts.

    Yields tuples of instance indices (each index ``i`` appearing
    ``command_counts[i]`` times).  ``limit`` caps the number of schedules
    produced (the count grows multinomially).
    """
    symbols: List[int] = []
    for iid, count in enumerate(command_counts):
        symbols.extend([iid] * count)
    seen = 0
    emitted = set()
    for perm in itertools.permutations(symbols):
        if perm in emitted:
            continue
        emitted.add(perm)
        yield perm
        seen += 1
        if limit is not None and seen >= limit:
            return


def count_db_commands(
    program: ast.Program, call: TxnCall, db: Optional[Database] = None
) -> int:
    """Number of database commands a call will execute.

    Loops and conditionals are counted by a dry serial execution on ``db``
    (an empty database by default), so data-dependent control flow is
    respected.
    """
    history = run_serial(program, db or Database(program), [call])
    return len(history.steps)


def random_schedules(
    command_counts: Sequence[int],
    rng: random.Random,
    samples: int,
) -> Iterator[Tuple[int, ...]]:
    """Uniformly sampled interleavings (with replacement)."""
    symbols: List[int] = []
    for iid, count in enumerate(command_counts):
        symbols.extend([iid] * count)
    for _ in range(samples):
        shuffled = symbols[:]
        rng.shuffle(shuffled)
        yield tuple(shuffled)
