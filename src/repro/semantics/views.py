"""Local-view construction policies.

The semantics lets every database command pick an arbitrary local view
``Sigma' <= Sigma`` subject to record-level atomicity.  A *policy*
resolves that nondeterminism.  Policies model consistency levels:

- :class:`FullView` -- every committed event is visible (what a serial or
  strongly consistent execution provides);
- :class:`RandomPartialView` -- eventually-consistent chaos: each foreign
  atomicity group is independently visible or not (optionally keeping a
  transaction's own earlier events visible, the session read-your-writes
  guarantee real stores provide);
- :class:`ScriptedView` -- an explicit visibility script, used by the
  exhaustive interleaving explorer and by regression tests to pin down a
  specific anomaly execution.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, Optional, Protocol, Set, Tuple

from repro.semantics.state import DatabaseState


class ViewPolicy(Protocol):
    """Chooses the event-id view a command executes against."""

    def choose_view(self, state: DatabaseState, txn: int) -> FrozenSet[int]:
        """Return the set of visible event ids for a command of ``txn``."""
        ...


class FullView:
    """All events are visible (serial executions, SC stores)."""

    def choose_view(self, state: DatabaseState, txn: int) -> FrozenSet[int]:
        return state.all_event_ids()


class RandomPartialView:
    """Random eventually-consistent views.

    Each atomicity group (same command timestamp, same record) generated
    by *other* transactions is visible with probability ``p_visible``.
    The choice is re-drawn per command, so visibility can regress between
    commands of the same transaction -- exactly the weakness the paper's
    EC model permits.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        p_visible: float = 0.5,
        read_your_writes: bool = True,
    ):
        self.rng = rng or random.Random(0)
        self.p_visible = p_visible
        self.read_your_writes = read_your_writes

    def choose_view(self, state: DatabaseState, txn: int) -> FrozenSet[int]:
        chosen: Set[int] = set()
        group_choice: Dict[Tuple, bool] = {}
        for ev in state.events:
            if ev.txn == txn:
                if self.read_your_writes:
                    chosen.add(ev.eid)
                continue
            atom = ev.atom()
            if atom not in group_choice:
                group_choice[atom] = self.rng.random() < self.p_visible
            if group_choice[atom]:
                chosen.add(ev.eid)
        return state.atomicity_closure(chosen)


class ScriptedView:
    """Visibility driven by an explicit script.

    The script maps a step index (the how-manieth command executed under
    this policy) to the set of *atom groups* that should be visible; own
    events are always visible.  Atom groups are identified by
    ``(txn, label)`` of the generating command, which is stable across
    runs and independent of event ids.
    """

    def __init__(self, script: Iterable[FrozenSet[Tuple[int, str]]]):
        self.script = list(script)
        self.step = 0

    def choose_view(self, state: DatabaseState, txn: int) -> FrozenSet[int]:
        visible_groups = (
            self.script[self.step] if self.step < len(self.script) else frozenset()
        )
        self.step += 1
        chosen: Set[int] = set()
        for ev in state.events:
            if ev.txn == txn or (ev.txn, ev.label) in visible_groups:
                chosen.add(ev.eid)
        return state.atomicity_closure(chosen)


def causal_closure(state: DatabaseState, view: Set[int]) -> FrozenSet[int]:
    """Close a view under causal visibility (used by CC-style policies):
    if event e is visible and e' was visible to e's command, e' joins."""
    changed = True
    out = set(view)
    while changed:
        changed = False
        for eid in list(out):
            for dep in state.vis.get(eid, ()):  # events e saw when created
                if dep not in out:
                    out.add(dep)
                    changed = True
    return state.atomicity_closure(out)


class CausalPartialView(RandomPartialView):
    """Random views that additionally respect causal consistency."""

    def choose_view(self, state: DatabaseState, txn: int) -> FrozenSet[int]:
        base = super().choose_view(state, txn)
        return causal_closure(state, set(base))
