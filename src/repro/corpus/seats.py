"""SEATS: the airline ticketing benchmark (8 tables, 6 transactions)."""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema COUNTRY {
  key co_id;
  field co_name;
}

schema AIRPORT {
  key ap_id;
  field ap_code;
  field ap_co_id;
}

schema AIRLINE {
  key al_id;
  field al_name;
}

schema CUSTOMER {
  key cu_id;
  field cu_balance;
  field cu_iattr;
}

schema FREQUENT_FLYER {
  key ff_cu_id;
  key ff_al_id;
  field ff_points;
}

schema FLIGHT {
  key f_id;
  field f_al_id;
  field f_seats_left;
  field f_price;
  field f_status;
}

schema RESERVATION {
  key r_id;
  field r_f_id;
  field r_cu_id;
  field r_seat;
  field r_price;
}

schema CONFIG {
  key cfg_id;
  field cfg_val;
}

txn FindFlights(fid) {
  f := select f_al_id, f_price, f_status from FLIGHT where f_id = fid;
  a := select al_name from AIRLINE where al_id = f.f_al_id;
  return f.f_price;
}

txn FindOpenSeats(fid) {
  f := select f_seats_left, f_price from FLIGHT where f_id = fid;
  return f.f_seats_left;
}

txn NewReservation(rid, fid, cuid, alid, seat) {
  f := select f_seats_left, f_price from FLIGHT where f_id = fid;
  insert into RESERVATION values (r_id = rid, r_f_id = fid, r_cu_id = cuid,
    r_seat = seat, r_price = f.f_price);
  update FLIGHT set f_seats_left = f.f_seats_left - 1 where f_id = fid;
  c := select cu_balance from CUSTOMER where cu_id = cuid;
  update CUSTOMER set cu_balance = c.cu_balance - f.f_price where cu_id = cuid;
  p := select ff_points from FREQUENT_FLYER
    where ff_cu_id = cuid and ff_al_id = alid;
  update FREQUENT_FLYER set ff_points = p.ff_points + 10
    where ff_cu_id = cuid and ff_al_id = alid;
}

txn UpdateCustomer(cuid, attr) {
  c := select cu_iattr from CUSTOMER where cu_id = cuid;
  update CUSTOMER set cu_iattr = attr where cu_id = cuid;
}

txn UpdateReservation(rid, seat) {
  r := select r_seat from RESERVATION where r_id = rid;
  update RESERVATION set r_seat = seat where r_id = rid;
}

txn DeleteReservation(rid, fid, cuid, alid) {
  r := select r_price from RESERVATION where r_id = rid;
  update RESERVATION set r_seat = 0, r_price = 0 where r_id = rid;
  f := select f_seats_left from FLIGHT where f_id = fid;
  update FLIGHT set f_seats_left = f.f_seats_left + 1 where f_id = fid;
  c := select cu_balance from CUSTOMER where cu_id = cuid;
  update CUSTOMER set cu_balance = c.cu_balance + r.r_price where cu_id = cuid;
  p := select ff_points from FREQUENT_FLYER
    where ff_cu_id = cuid and ff_al_id = alid;
  update FREQUENT_FLYER set ff_points = p.ff_points - 10
    where ff_cu_id = cuid and ff_al_id = alid;
}
"""

AIRLINES = 2


def populate(db: Database, scale: int) -> None:
    db.insert("COUNTRY", co_id=0, co_name="US")
    db.insert("AIRPORT", ap_id=0, ap_code="JFK", ap_co_id=0)
    db.insert("AIRPORT", ap_id=1, ap_code="SFO", ap_co_id=0)
    db.insert("CONFIG", cfg_id=0, cfg_val=1)
    for al in range(AIRLINES):
        db.insert("AIRLINE", al_id=al, al_name=f"airline{al}")
    flights = max(scale // 2, 1)
    for f in range(flights):
        db.insert(
            "FLIGHT", f_id=f, f_al_id=f % AIRLINES,
            f_seats_left=150, f_price=100 + f, f_status=0,
        )
    for cu in range(scale):
        db.insert("CUSTOMER", cu_id=cu, cu_balance=1000, cu_iattr=0)
        for al in range(AIRLINES):
            db.insert("FREQUENT_FLYER", ff_cu_id=cu, ff_al_id=al, ff_points=0)
        db.insert(
            "RESERVATION", r_id=cu, r_f_id=cu % flights, r_cu_id=cu,
            r_seat=cu, r_price=100,
        )


def _flight(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, max(scale // 2, 1)),)


def _new_res(rng: random.Random, scale: int) -> Tuple:
    return (
        10_000 + rng.randrange(1_000_000),
        zipf_int(rng, max(scale // 2, 1)),
        zipf_int(rng, scale),
        rng.randrange(AIRLINES),
        rng.randint(1, 150),
    )


def _upd_cust(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale), rng.randint(0, 9))


def _upd_res(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale), rng.randint(1, 150))


def _del_res(rng: random.Random, scale: int) -> Tuple:
    return (
        zipf_int(rng, scale),
        zipf_int(rng, max(scale // 2, 1)),
        zipf_int(rng, scale),
        rng.randrange(AIRLINES),
    )


SEATS = Benchmark(
    name="SEATS",
    source=SOURCE,
    populate=populate,
    mix=(
        ("FindFlights", 25.0, _flight),
        ("FindOpenSeats", 25.0, _flight),
        ("NewReservation", 20.0, _new_res),
        ("UpdateCustomer", 10.0, _upd_cust),
        ("UpdateReservation", 10.0, _upd_res),
        ("DeleteReservation", 10.0, _del_res),
    ),
    paper=PaperRow(
        txns=6, tables_before=8, tables_after=12,
        ec=35, at=10, cc=35, rr=33, time_s=61.5,
    ),
)
