"""Courseware: the paper's running example (Sections 2-5), five txns."""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema COURSE {
  key co_id;
  field co_avail;
  field co_st_cnt;
}

schema EMAIL {
  key em_id;
  field em_addr;
}

schema STUDENT {
  key st_id;
  field st_name;
  field st_em_id ref EMAIL.em_id;
  field st_co_id ref COURSE.co_id;
  field st_reg;
}

txn getSt(id) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id, name, email) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id, course) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true
    where co_id = course;
}

txn getCourse(course) {
  z := select co_avail from COURSE where co_id = course;
  return z.co_avail;
}

txn unregSt(id) {
  update STUDENT set st_reg = false where st_id = id;
}
"""


def populate(db: Database, scale: int) -> None:
    courses = max(scale // 4, 1)
    for co in range(courses):
        db.insert("COURSE", co_id=co, co_avail=False, co_st_cnt=0)
    for st in range(scale):
        db.insert("EMAIL", em_id=1000 + st, em_addr=f"st{st}@host")
        db.insert(
            "STUDENT",
            st_id=st,
            st_name=f"student{st}",
            st_em_id=1000 + st,
            st_co_id=st % courses,
            st_reg=False,
        )


def _student(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


def _set_args(rng: random.Random, scale: int) -> Tuple:
    s = zipf_int(rng, scale)
    return (s, f"name{rng.randrange(100)}", f"mail{rng.randrange(100)}@host")


def _reg_args(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale), rng.randrange(max(scale // 4, 1)))


def _course(rng: random.Random, scale: int) -> Tuple:
    return (rng.randrange(max(scale // 4, 1)),)


COURSEWARE = Benchmark(
    name="Courseware",
    source=SOURCE,
    populate=populate,
    mix=(
        ("getSt", 30.0, _student),
        ("setSt", 15.0, _set_args),
        ("regSt", 25.0, _reg_args),
        ("getCourse", 20.0, _course),
        ("unregSt", 10.0, _student),
    ),
    paper=PaperRow(
        txns=5, tables_before=3, tables_after=2,
        ec=5, at=0, cc=5, rr=5, time_s=12.7,
    ),
)
