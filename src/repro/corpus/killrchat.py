"""Killrchat: the scalable chat application (3 tables, 5 transactions)."""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema ROOM {
  key rm_id;
  field rm_name;
  field rm_participants;
}

schema PARTICIPANT {
  key pt_rm_id;
  key pt_u_id;
  field pt_active;
}

schema MESSAGE {
  key msg_id;
  field msg_rm_id;
  field msg_u_id;
  field msg_text;
}

txn CreateRoom(rmid, name) {
  insert into ROOM values (rm_id = rmid, rm_name = name,
    rm_participants = 0);
}

txn JoinRoom(rmid, uid) {
  insert into PARTICIPANT values (pt_rm_id = rmid, pt_u_id = uid,
    pt_active = true);
  r := select rm_participants from ROOM where rm_id = rmid;
  update ROOM set rm_participants = r.rm_participants + 1 where rm_id = rmid;
}

txn LeaveRoom(rmid, uid) {
  update PARTICIPANT set pt_active = false
    where pt_rm_id = rmid and pt_u_id = uid;
  r := select rm_participants from ROOM where rm_id = rmid;
  update ROOM set rm_participants = r.rm_participants - 1 where rm_id = rmid;
}

txn SendMessage(rmid, uid, text) {
  insert into MESSAGE values (msg_id = uuid(), msg_rm_id = rmid,
    msg_u_id = uid, msg_text = text);
}

txn GetRoom(rmid) {
  r := select rm_name, rm_participants from ROOM where rm_id = rmid;
  return r.rm_participants;
}
"""


def populate(db: Database, scale: int) -> None:
    rooms = max(scale // 2, 1)
    for rm in range(rooms):
        db.insert(
            "ROOM", rm_id=rm, rm_name=f"room{rm}", rm_participants=0
        )
    for u in range(scale):
        db.insert(
            "PARTICIPANT", pt_rm_id=u % rooms, pt_u_id=u, pt_active=True
        )
    db.insert(
        "MESSAGE", msg_id="seed", msg_rm_id=0, msg_u_id=0, msg_text="hello"
    )


def _room(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, max(scale // 2, 1)),)


def _create(rng: random.Random, scale: int) -> Tuple:
    return (10_000 + rng.randrange(1_000_000), "fresh room")


def _member(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, max(scale // 2, 1)), zipf_int(rng, scale))


def _message(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, max(scale // 2, 1)), zipf_int(rng, scale), "hi!")


KILLRCHAT = Benchmark(
    name="Killrchat",
    source=SOURCE,
    populate=populate,
    mix=(
        ("CreateRoom", 5.0, _create),
        ("JoinRoom", 20.0, _member),
        ("LeaveRoom", 15.0, _member),
        ("SendMessage", 40.0, _message),
        ("GetRoom", 20.0, _room),
    ),
    paper=PaperRow(
        txns=5, tables_before=3, tables_after=4,
        ec=6, at=3, cc=6, rr=6, time_s=42.9,
    ),
)
