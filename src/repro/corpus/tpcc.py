"""TPC-C: the order-processing benchmark (9 tables, 5 transactions).

The DSL encoding follows the standard transaction profiles at the
granularity the paper's language supports: one order line per new order
(the ``iterate`` construct is exercised by the SEATS encoding instead),
explicit district-sequence and stock read-modify-writes, and the
customer-balance updates of Payment and Delivery.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema WAREHOUSE {
  key w_id;
  field w_name;
  field w_ytd;
}

schema DISTRICT {
  key d_w_id ref WAREHOUSE.w_id;
  key d_id;
  field d_ytd;
  field d_next_o_id;
}

schema CUSTOMER {
  key c_w_id;
  key c_d_id;
  key c_id;
  field c_balance;
  field c_ytd_payment;
  field c_payment_cnt;
  field c_delivery_cnt;
}

schema ORDERS {
  key o_w_id;
  key o_d_id;
  key o_id;
  field o_c_id;
  field o_carrier_id;
  field o_ol_cnt;
}

schema NEW_ORDER {
  key no_w_id;
  key no_d_id;
  key no_o_id;
  field no_pending;
}

schema ORDER_LINE {
  key ol_w_id;
  key ol_d_id;
  key ol_o_id;
  key ol_number;
  field ol_i_id;
  field ol_qty;
  field ol_amount;
  field ol_delivery_d;
}

schema ITEM {
  key i_id;
  field i_price;
  field i_name;
}

schema STOCK {
  key s_w_id;
  key s_i_id;
  field s_qty;
  field s_ytd;
}

schema HISTORY {
  key h_id;
  field h_c_id;
  field h_amount;
}

txn NewOrder(wid, did, cid, iid, qty) {
  d := select d_next_o_id from DISTRICT where d_w_id = wid and d_id = did;
  update DISTRICT set d_next_o_id = d.d_next_o_id + 1
    where d_w_id = wid and d_id = did;
  insert into ORDERS values (o_w_id = wid, o_d_id = did,
    o_id = d.d_next_o_id, o_c_id = cid, o_carrier_id = 0, o_ol_cnt = 1);
  insert into NEW_ORDER values (no_w_id = wid, no_d_id = did,
    no_o_id = d.d_next_o_id, no_pending = true);
  i := select i_price from ITEM where i_id = iid;
  s := select s_qty from STOCK where s_w_id = wid and s_i_id = iid;
  update STOCK set s_qty = s.s_qty - qty where s_w_id = wid and s_i_id = iid;
  insert into ORDER_LINE values (ol_w_id = wid, ol_d_id = did,
    ol_o_id = d.d_next_o_id, ol_number = 1, ol_i_id = iid, ol_qty = qty,
    ol_amount = qty * i.i_price, ol_delivery_d = 0);
  return d.d_next_o_id;
}

txn Payment(wid, did, cid, amount) {
  w := select w_ytd from WAREHOUSE where w_id = wid;
  update WAREHOUSE set w_ytd = w.w_ytd + amount where w_id = wid;
  d := select d_ytd from DISTRICT where d_w_id = wid and d_id = did;
  update DISTRICT set d_ytd = d.d_ytd + amount
    where d_w_id = wid and d_id = did;
  c := select c_balance from CUSTOMER
    where c_w_id = wid and c_d_id = did and c_id = cid;
  update CUSTOMER set c_balance = c.c_balance - amount
    where c_w_id = wid and c_d_id = did and c_id = cid;
  p := select c_ytd_payment from CUSTOMER
    where c_w_id = wid and c_d_id = did and c_id = cid;
  update CUSTOMER set c_ytd_payment = p.c_ytd_payment + amount
    where c_w_id = wid and c_d_id = did and c_id = cid;
  insert into HISTORY values (h_id = uuid(), h_c_id = cid, h_amount = amount);
}

txn OrderStatus(wid, did, cid, oid) {
  c := select c_balance from CUSTOMER
    where c_w_id = wid and c_d_id = did and c_id = cid;
  o := select o_carrier_id, o_ol_cnt from ORDERS
    where o_w_id = wid and o_d_id = did and o_id = oid;
  l := select ol_amount, ol_delivery_d from ORDER_LINE
    where ol_w_id = wid and ol_d_id = did and ol_o_id = oid and ol_number = 1;
  return c.c_balance;
}

txn Delivery(wid, did, oid, carrier) {
  n := select no_pending from NEW_ORDER
    where no_w_id = wid and no_d_id = did and no_o_id = oid;
  update NEW_ORDER set no_pending = false
    where no_w_id = wid and no_d_id = did and no_o_id = oid;
  o := select o_c_id from ORDERS
    where o_w_id = wid and o_d_id = did and o_id = oid;
  update ORDERS set o_carrier_id = carrier
    where o_w_id = wid and o_d_id = did and o_id = oid;
  l := select ol_amount from ORDER_LINE
    where ol_w_id = wid and ol_d_id = did and ol_o_id = oid and ol_number = 1;
  update ORDER_LINE set ol_delivery_d = 1
    where ol_w_id = wid and ol_d_id = did and ol_o_id = oid and ol_number = 1;
  c := select c_balance from CUSTOMER
    where c_w_id = wid and c_d_id = did and c_id = o.o_c_id;
  update CUSTOMER set c_balance = c.c_balance + l.ol_amount
    where c_w_id = wid and c_d_id = did and c_id = o.o_c_id;
}

txn StockLevel(wid, did, iid, threshold) {
  d := select d_next_o_id from DISTRICT where d_w_id = wid and d_id = did;
  s := select s_qty from STOCK where s_w_id = wid and s_i_id = iid;
  if (s.s_qty < threshold) {
    skip;
  }
  return s.s_qty;
}
"""

DISTRICTS = 2
ITEMS = 8


def populate(db: Database, scale: int) -> None:
    warehouses = max(scale // 4, 1)
    for w in range(warehouses):
        db.insert("WAREHOUSE", w_id=w, w_name=f"wh{w}", w_ytd=0)
        for d in range(DISTRICTS):
            db.insert("DISTRICT", d_w_id=w, d_id=d, d_ytd=0, d_next_o_id=1)
            for c in range(max(scale // warehouses, 1)):
                db.insert(
                    "CUSTOMER",
                    c_w_id=w, c_d_id=d, c_id=c,
                    c_balance=100, c_ytd_payment=0,
                    c_payment_cnt=0, c_delivery_cnt=0,
                )
            db.insert(
                "ORDERS", o_w_id=w, o_d_id=d, o_id=0,
                o_c_id=0, o_carrier_id=0, o_ol_cnt=1,
            )
            db.insert(
                "NEW_ORDER", no_w_id=w, no_d_id=d, no_o_id=0, no_pending=True
            )
            db.insert(
                "ORDER_LINE",
                ol_w_id=w, ol_d_id=d, ol_o_id=0, ol_number=1,
                ol_i_id=0, ol_qty=1, ol_amount=10, ol_delivery_d=0,
            )
    for i in range(ITEMS):
        db.insert("ITEM", i_id=i, i_price=10 + i, i_name=f"item{i}")
        for w in range(warehouses):
            db.insert("STOCK", s_w_id=w, s_i_id=i, s_qty=100, s_ytd=0)


def _wh(rng: random.Random, scale: int) -> int:
    return rng.randrange(max(scale // 4, 1))


def _new_order(rng: random.Random, scale: int) -> Tuple:
    w = _wh(rng, scale)
    return (
        w,
        rng.randrange(DISTRICTS),
        zipf_int(rng, max(scale // max(scale // 4, 1), 1)),
        rng.randrange(ITEMS),
        rng.randint(1, 5),
    )


def _payment(rng: random.Random, scale: int) -> Tuple:
    w = _wh(rng, scale)
    return (
        w,
        rng.randrange(DISTRICTS),
        zipf_int(rng, max(scale // max(scale // 4, 1), 1)),
        rng.randint(1, 50),
    )


def _order_status(rng: random.Random, scale: int) -> Tuple:
    w = _wh(rng, scale)
    return (w, rng.randrange(DISTRICTS), 0, 0)


def _delivery(rng: random.Random, scale: int) -> Tuple:
    w = _wh(rng, scale)
    return (w, rng.randrange(DISTRICTS), 0, rng.randint(1, 10))


def _stock_level(rng: random.Random, scale: int) -> Tuple:
    w = _wh(rng, scale)
    return (w, rng.randrange(DISTRICTS), rng.randrange(ITEMS), 20)


TPCC = Benchmark(
    name="TPC-C",
    source=SOURCE,
    populate=populate,
    mix=(
        ("NewOrder", 45.0, _new_order),
        ("Payment", 43.0, _payment),
        ("OrderStatus", 4.0, _order_status),
        ("Delivery", 4.0, _delivery),
        ("StockLevel", 4.0, _stock_level),
    ),
    paper=PaperRow(
        txns=5, tables_before=9, tables_after=16,
        ec=33, at=8, cc=33, rr=33, time_s=81.2,
    ),
)
