"""The benchmark corpus of Section 7.1 (Table 1).

Nine OLTP benchmark programs encoded in the DSL: TPC-C, SEATS,
Courseware, SmallBank, Twitter, FMKe, SIBench, Wikipedia, and Killrchat.
Each module exposes a :class:`~repro.corpus.base.Benchmark` instance with
the program text, an initial-database populator, and a workload generator
(transaction mix plus argument distributions) used by the performance
experiments.

``ALL_BENCHMARKS`` lists them in the paper's Table 1 order.
"""

from repro.corpus.base import Benchmark, PaperRow
from repro.corpus.tpcc import TPCC
from repro.corpus.seats import SEATS
from repro.corpus.courseware import COURSEWARE
from repro.corpus.smallbank import SMALLBANK
from repro.corpus.twitter import TWITTER
from repro.corpus.fmke import FMKE
from repro.corpus.sibench import SIBENCH
from repro.corpus.wikipedia import WIKIPEDIA
from repro.corpus.killrchat import KILLRCHAT

ALL_BENCHMARKS = (
    TPCC,
    SEATS,
    COURSEWARE,
    SMALLBANK,
    TWITTER,
    FMKE,
    SIBENCH,
    WIKIPEDIA,
    KILLRCHAT,
)

BY_NAME = {b.name: b for b in ALL_BENCHMARKS}

__all__ = [
    "Benchmark",
    "PaperRow",
    "ALL_BENCHMARKS",
    "BY_NAME",
    "TPCC",
    "SEATS",
    "COURSEWARE",
    "SMALLBANK",
    "TWITTER",
    "FMKE",
    "SIBENCH",
    "WIKIPEDIA",
    "KILLRCHAT",
]
