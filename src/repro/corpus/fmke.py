"""FMKe: the healthcare key-value benchmark (7 tables, 7 transactions)."""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema PATIENT {
  key pat_id;
  field pat_name;
  field pat_rx_cnt;
}

schema PHARMACY {
  key ph_id;
  field ph_name;
  field ph_rx_cnt;
}

schema FACILITY {
  key fac_id;
  field fac_name;
}

schema STAFF {
  key stf_id;
  field stf_name;
}

schema PRESCRIPTION {
  key pr_id;
  field pr_pat_id ref PATIENT.pat_id;
  field pr_ph_id ref PHARMACY.ph_id;
  field pr_stf_id ref STAFF.stf_id;
  field pr_drugs;
  field pr_processed;
}

schema PATIENT_RX {
  key px_pat_id;
  key px_pr_id;
  field px_active;
}

schema PHARMACY_RX {
  key hx_ph_id;
  key hx_pr_id;
  field hx_active;
}

txn CreatePrescription(prid, pat, ph, stf, drugs) {
  insert into PRESCRIPTION values (pr_id = prid, pr_pat_id = pat,
    pr_ph_id = ph, pr_stf_id = stf, pr_drugs = drugs, pr_processed = false);
  insert into PATIENT_RX values (px_pat_id = pat, px_pr_id = prid,
    px_active = true);
  insert into PHARMACY_RX values (hx_ph_id = ph, hx_pr_id = prid,
    hx_active = true);
  p := select pat_rx_cnt from PATIENT where pat_id = pat;
  update PATIENT set pat_rx_cnt = p.pat_rx_cnt + 1 where pat_id = pat;
}

txn GetPrescription(prid) {
  p := select pr_drugs, pr_processed from PRESCRIPTION where pr_id = prid;
  return p.pr_drugs;
}

txn GetPatientRecord(pat) {
  p := select pat_name, pat_rx_cnt from PATIENT where pat_id = pat;
  rx := select px_pr_id from PATIENT_RX where px_pat_id = pat;
  return p.pat_rx_cnt;
}

txn ProcessPrescription(prid) {
  p := select pr_processed from PRESCRIPTION where pr_id = prid;
  if (not p.pr_processed) {
    update PRESCRIPTION set pr_processed = true where pr_id = prid;
  }
}

txn UpdatePrescriptionMedication(prid, drugs) {
  update PRESCRIPTION set pr_drugs = drugs where pr_id = prid;
}

txn GetPharmacyPrescriptions(ph) {
  h := select ph_name, ph_rx_cnt from PHARMACY where ph_id = ph;
  rx := select hx_pr_id from PHARMACY_RX where hx_ph_id = ph;
  return h.ph_rx_cnt;
}

txn GetStaffInfo(stf) {
  s := select stf_name from STAFF where stf_id = stf;
  return s.stf_name;
}
"""


def populate(db: Database, scale: int) -> None:
    for p in range(scale):
        db.insert("PATIENT", pat_id=p, pat_name=f"patient{p}", pat_rx_cnt=1)
    for f in range(max(scale // 4, 1)):
        db.insert("FACILITY", fac_id=f, fac_name=f"facility{f}")
        db.insert("PHARMACY", ph_id=f, ph_name=f"pharmacy{f}", ph_rx_cnt=1)
        db.insert("STAFF", stf_id=f, stf_name=f"staff{f}")
    for r in range(scale):
        db.insert(
            "PRESCRIPTION", pr_id=r, pr_pat_id=r,
            pr_ph_id=r % max(scale // 4, 1), pr_stf_id=r % max(scale // 4, 1),
            pr_drugs="aspirin", pr_processed=False,
        )
        db.insert("PATIENT_RX", px_pat_id=r, px_pr_id=r, px_active=True)
        db.insert(
            "PHARMACY_RX", hx_ph_id=r % max(scale // 4, 1), hx_pr_id=r,
            hx_active=True,
        )


def _create(rng: random.Random, scale: int) -> Tuple:
    return (
        10_000 + rng.randrange(1_000_000),
        zipf_int(rng, scale),
        rng.randrange(max(scale // 4, 1)),
        rng.randrange(max(scale // 4, 1)),
        "ibuprofen",
    )


def _rx(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


def _patient(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


def _update_rx(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale), "paracetamol")


def _pharmacy(rng: random.Random, scale: int) -> Tuple:
    return (rng.randrange(max(scale // 4, 1)),)


FMKE = Benchmark(
    name="FMKe",
    source=SOURCE,
    populate=populate,
    mix=(
        ("CreatePrescription", 15.0, _create),
        ("GetPrescription", 25.0, _rx),
        ("GetPatientRecord", 15.0, _patient),
        ("ProcessPrescription", 15.0, _rx),
        ("UpdatePrescriptionMedication", 10.0, _update_rx),
        ("GetPharmacyPrescriptions", 15.0, _pharmacy),
        ("GetStaffInfo", 5.0, _pharmacy),
    ),
    paper=PaperRow(
        txns=7, tables_before=7, tables_after=9,
        ec=6, at=2, cc=6, rr=6, time_s=33.6,
    ),
)
