"""SIBench: the minimal snapshot-isolation stress benchmark (one table)."""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema SITEM {
  key si_id;
  field si_value;
}

txn ReadValue(k) {
  x := select si_value from SITEM where si_id = k;
  return x.si_value;
}

txn IncrementValue(k) {
  x := select si_value from SITEM where si_id = k;
  update SITEM set si_value = x.si_value + 1 where si_id = k;
}
"""


def populate(db: Database, scale: int) -> None:
    for i in range(scale):
        db.insert("SITEM", si_id=i, si_value=0)


def _key(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


SIBENCH = Benchmark(
    name="SIBench",
    source=SOURCE,
    populate=populate,
    mix=(
        ("ReadValue", 50.0, _key),
        ("IncrementValue", 50.0, _key),
    ),
    paper=PaperRow(
        txns=2, tables_before=1, tables_after=2,
        ec=1, at=0, cc=1, rr=1, time_s=0.3,
    ),
)
