"""Wikipedia: the article-editing workload (12 tables, 5 transactions)."""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema PAGE {
  key pg_id;
  field pg_title;
  field pg_latest;
  field pg_touched;
}

schema REVISION {
  key rev_id;
  field rev_pg_id;
  field rev_content;
  field rev_user;
}

schema TEXT {
  key txt_id;
  field txt_content;
}

schema USERACCT {
  key u_id;
  field u_name;
  field u_editcount;
  field u_touched;
}

schema WATCHLIST {
  key wl_u_id;
  key wl_pg_id;
  field wl_notif;
}

schema LOGGING {
  key log_id;
  field log_type;
  field log_user;
}

schema RECENTCHANGES {
  key rc_id;
  field rc_pg_id;
  field rc_user;
}

schema IPBLOCKS {
  key ipb_id;
  field ipb_address;
  field ipb_user;
}

schema USER_GROUPS {
  key ug_u_id;
  key ug_group;
  field ug_active;
}

schema PAGE_RESTRICTIONS {
  key pre_pg_id;
  key pre_type;
  field pre_level;
}

schema CATEGORY {
  key cat_id;
  field cat_title;
  field cat_pages;
}

schema PAGELINKS {
  key pl_from;
  key pl_to;
  field pl_active;
}

txn GetPageAnonymous(pgid) {
  p := select pg_title, pg_latest from PAGE where pg_id = pgid;
  r := select rev_content from REVISION where rev_id = p.pg_latest;
  pr := select pre_level from PAGE_RESTRICTIONS
    where pre_pg_id = pgid and pre_type = 0;
  return r.rev_content;
}

txn GetPageAuthenticated(pgid, uid) {
  u := select u_name from USERACCT where u_id = uid;
  g := select ug_active from USER_GROUPS where ug_u_id = uid and ug_group = 0;
  p := select pg_title, pg_latest from PAGE where pg_id = pgid;
  r := select rev_content from REVISION where rev_id = p.pg_latest;
  return r.rev_content;
}

txn AddWatchList(uid, pgid) {
  insert into WATCHLIST values (wl_u_id = uid, wl_pg_id = pgid,
    wl_notif = true);
  update USERACCT set u_touched = 1 where u_id = uid;
}

txn RemoveWatchList(uid, pgid) {
  update WATCHLIST set wl_notif = false where wl_u_id = uid and wl_pg_id = pgid;
  update USERACCT set u_touched = 2 where u_id = uid;
}

txn UpdatePage(pgid, uid, content, txtid, revid) {
  insert into TEXT values (txt_id = txtid, txt_content = content);
  insert into REVISION values (rev_id = revid, rev_pg_id = pgid,
    rev_content = content, rev_user = uid);
  update PAGE set pg_latest = revid, pg_touched = 1 where pg_id = pgid;
  u := select u_editcount from USERACCT where u_id = uid;
  update USERACCT set u_editcount = u.u_editcount + 1 where u_id = uid;
  insert into RECENTCHANGES values (rc_id = uuid(), rc_pg_id = pgid,
    rc_user = uid);
  insert into LOGGING values (log_id = uuid(), log_type = 1, log_user = uid);
}
"""


def populate(db: Database, scale: int) -> None:
    for pg in range(scale):
        db.insert(
            "PAGE", pg_id=pg, pg_title=f"page{pg}", pg_latest=pg, pg_touched=0
        )
        db.insert(
            "REVISION", rev_id=pg, rev_pg_id=pg,
            rev_content=f"content of page {pg}", rev_user=0,
        )
        db.insert("TEXT", txt_id=pg, txt_content=f"content of page {pg}")
        db.insert("PAGE_RESTRICTIONS", pre_pg_id=pg, pre_type=0, pre_level=0)
    for u in range(max(scale // 2, 1)):
        db.insert(
            "USERACCT", u_id=u, u_name=f"user{u}", u_editcount=0, u_touched=0
        )
        db.insert("USER_GROUPS", ug_u_id=u, ug_group=0, ug_active=True)
    db.insert("IPBLOCKS", ipb_id=0, ipb_address="10.0.0.1", ipb_user=0)
    db.insert("CATEGORY", cat_id=0, cat_title="root", cat_pages=0)
    db.insert("PAGELINKS", pl_from=0, pl_to=0, pl_active=True)
    db.insert("LOGGING", log_id="seed", log_type=0, log_user=0)
    db.insert("RECENTCHANGES", rc_id="seed", rc_pg_id=0, rc_user=0)
    db.insert("WATCHLIST", wl_u_id=0, wl_pg_id=0, wl_notif=False)


def _page(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


def _page_user(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale), zipf_int(rng, max(scale // 2, 1)))


def _watch(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, max(scale // 2, 1)), zipf_int(rng, scale))


def _update(rng: random.Random, scale: int) -> Tuple:
    fresh = 10_000 + rng.randrange(1_000_000)
    return (
        zipf_int(rng, scale),
        zipf_int(rng, max(scale // 2, 1)),
        "new content",
        fresh,
        fresh + 1,
    )


WIKIPEDIA = Benchmark(
    name="Wikipedia",
    source=SOURCE,
    populate=populate,
    mix=(
        ("GetPageAnonymous", 50.0, _page),
        ("GetPageAuthenticated", 25.0, _page_user),
        ("AddWatchList", 10.0, _watch),
        ("RemoveWatchList", 5.0, _watch),
        ("UpdatePage", 10.0, _update),
    ),
    paper=PaperRow(
        txns=5, tables_before=12, tables_after=13,
        ec=2, at=1, cc=2, rr=2, time_s=9.0,
    ),
)
