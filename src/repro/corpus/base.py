"""Shared scaffolding for corpus benchmarks."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.lang import ast, parse_program
from repro.semantics.interp import TxnCall
from repro.semantics.state import Database

# An argument generator: (rng, scale) -> argument tuple.
ArgGen = Callable[[random.Random, int], Tuple]


@dataclass(frozen=True)
class PaperRow:
    """The benchmark's row in the paper's Table 1 (for EXPERIMENTS.md)."""

    txns: int
    tables_before: int
    tables_after: int
    ec: int
    at: int
    cc: int
    rr: int
    time_s: float


@dataclass
class Benchmark:
    """A corpus benchmark: program + population + workload.

    Attributes:
        name: Table 1 name.
        source: DSL source text.
        populate: fills a fresh :class:`Database` at the given scale.
        mix: transaction mix as ``(txn name, weight, arg generator)``.
        paper: the row the paper reports, kept for paper-vs-measured
            comparison in EXPERIMENTS.md.
    """

    name: str
    source: str
    populate: Callable[[Database, int], None]
    mix: Sequence[Tuple[str, float, ArgGen]]
    paper: PaperRow
    _program: Optional[ast.Program] = field(default=None, repr=False)

    def program(self) -> ast.Program:
        if self._program is None:
            self._program = parse_program(self.source)
        return self._program

    def database(self, scale: int = 8) -> Database:
        db = Database(self.program())
        self.populate(db, scale)
        return db

    def sample_call(self, rng: random.Random, scale: int = 8) -> TxnCall:
        """Draw one transaction call from the mix."""
        total = sum(w for _, w, _ in self.mix)
        pick = rng.random() * total
        acc = 0.0
        for name, weight, gen in self.mix:
            acc += weight
            if pick <= acc:
                return TxnCall(name, gen(rng, scale))
        name, _, gen = self.mix[-1]
        return TxnCall(name, gen(rng, scale))

    def workload(
        self, rng: random.Random, count: int, scale: int = 8
    ) -> List[TxnCall]:
        return [self.sample_call(rng, scale) for _ in range(count)]


def zipf_int(rng: random.Random, n: int, skew: float = 1.1) -> int:
    """A Zipf-ish draw over ``0..n-1`` (hot keys first), cheap and stable."""
    if n <= 1:
        return 0
    # Inverse-CDF over a truncated zeta distribution via rejection-free
    # approximation: u^(1/(1-skew)) concentrates mass on small ranks.
    u = rng.random()
    rank = int(n * (u ** skew))
    return min(rank, n - 1)
