"""Twitter: the OLTP-Bench social-network workload (4 tables, 5 txns)."""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema USERS {
  key u_id;
  field u_name;
  field u_follower_cnt;
  field u_tweet_cnt;
}

schema FOLLOWS {
  key fw_u_id;
  key fw_f_id;
  field fw_active;
}

schema FOLLOWERS {
  key fo_u_id;
  key fo_f_id;
  field fo_active;
}

schema TWEETS {
  key t_id;
  field t_u_id;
  field t_text;
}

txn GetTweet(tid) {
  t := select t_u_id, t_text from TWEETS where t_id = tid;
  return t.t_text;
}

txn GetFollowers(uid) {
  fo := select fo_f_id, fo_active from FOLLOWERS where fo_u_id = uid;
  u := select u_follower_cnt from USERS where u_id = uid;
  return u.u_follower_cnt + count(fo.fo_active);
}

txn GetUserTweets(uid) {
  u := select u_tweet_cnt from USERS where u_id = uid;
  t := select t_text from TWEETS where t_u_id = uid;
  return u.u_tweet_cnt + count(t.t_text);
}

txn InsertTweet(uid, tid, text) {
  u := select u_tweet_cnt from USERS where u_id = uid;
  insert into TWEETS values (t_id = tid, t_u_id = uid, t_text = text);
  update USERS set u_tweet_cnt = u.u_tweet_cnt + 1 where u_id = uid;
}

txn Follow(uid, target) {
  insert into FOLLOWS values (fw_u_id = uid, fw_f_id = target,
                              fw_active = true);
  insert into FOLLOWERS values (fo_u_id = target, fo_f_id = uid,
                                fo_active = true);
  u := select u_follower_cnt from USERS where u_id = target;
  update USERS set u_follower_cnt = u.u_follower_cnt + 1 where u_id = target;
}
"""


def populate(db: Database, scale: int) -> None:
    for u in range(scale):
        db.insert(
            "USERS", u_id=u, u_name=f"user{u}", u_follower_cnt=0, u_tweet_cnt=1
        )
        db.insert("TWEETS", t_id=u, t_u_id=u, t_text=f"hello from {u}")
        db.insert("FOLLOWS", fw_u_id=u, fw_f_id=(u + 1) % scale, fw_active=True)
        db.insert(
            "FOLLOWERS", fo_u_id=(u + 1) % scale, fo_f_id=u, fo_active=True
        )


def _tweet(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


def _user(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


def _insert_tweet(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale), 10_000 + rng.randrange(1_000_000), "tweet!")


def _follow(rng: random.Random, scale: int) -> Tuple:
    a = zipf_int(rng, scale)
    b = (a + 1 + rng.randrange(max(scale - 1, 1))) % max(scale, 1)
    return (a, b)


TWITTER = Benchmark(
    name="Twitter",
    source=SOURCE,
    populate=populate,
    mix=(
        ("GetTweet", 50.0, _tweet),
        ("GetFollowers", 15.0, _user),
        ("GetUserTweets", 10.0, _user),
        ("InsertTweet", 15.0, _insert_tweet),
        ("Follow", 10.0, _follow),
    ),
    paper=PaperRow(
        txns=5, tables_before=4, tables_after=5,
        ec=6, at=1, cc=6, rr=5, time_s=3.6,
    ),
)
