"""SmallBank: the banking micro-benchmark of Section 7.1 / Appendix A.2.

Three tables (accounts plus keyed savings/checking satellites) and six
transactions.  The balance-check-then-write shape (``WriteCheck``,
``Amalgamate``'s zeroing) is exactly the pattern schema refactoring
cannot fully repair -- the paper reports 8 of 24 anomalies surviving, and
one of the three application invariants still violable after repair.
"""

from __future__ import annotations

import random
from typing import Tuple

from repro.corpus.base import Benchmark, PaperRow, zipf_int
from repro.semantics.state import Database

SOURCE = """
schema ACCOUNTS {
  key custid;
  field name;
}

schema SAVINGS {
  key s_custid ref ACCOUNTS.custid;
  field s_bal;
}

schema CHECKING {
  key c_custid ref ACCOUNTS.custid;
  field c_bal;
}

txn Balance(custid) {
  a := select name from ACCOUNTS where custid = custid;
  s := select s_bal from SAVINGS where s_custid = custid;
  c := select c_bal from CHECKING where c_custid = custid;
  return s.s_bal + c.c_bal;
}

txn DepositChecking(custid, amount) {
  c := select c_bal from CHECKING where c_custid = custid;
  update CHECKING set c_bal = c.c_bal + amount where c_custid = custid;
}

txn TransactSavings(custid, amount) {
  s := select s_bal from SAVINGS where s_custid = custid;
  update SAVINGS set s_bal = s.s_bal + amount where s_custid = custid;
}

txn Amalgamate(custid1, custid2) {
  s := select s_bal from SAVINGS where s_custid = custid1;
  c := select c_bal from CHECKING where c_custid = custid1;
  update SAVINGS set s_bal = 0 where s_custid = custid1;
  update CHECKING set c_bal = 0 where c_custid = custid1;
  d := select c_bal from CHECKING where c_custid = custid2;
  update CHECKING set c_bal = d.c_bal + s.s_bal + c.c_bal
    where c_custid = custid2;
}

txn WriteCheck(custid, amount) {
  s := select s_bal from SAVINGS where s_custid = custid;
  c := select c_bal from CHECKING where c_custid = custid;
  if (s.s_bal + c.c_bal < amount) {
    update CHECKING set c_bal = c.c_bal - amount - 1 where c_custid = custid;
  }
  if (s.s_bal + c.c_bal >= amount) {
    update CHECKING set c_bal = c.c_bal - amount where c_custid = custid;
  }
}

txn SendPayment(sender, receiver, amount) {
  c := select c_bal from CHECKING where c_custid = sender;
  if (c.c_bal >= amount) {
    update CHECKING set c_bal = c.c_bal - amount where c_custid = sender;
    d := select c_bal from CHECKING where c_custid = receiver;
    update CHECKING set c_bal = d.c_bal + amount where c_custid = receiver;
  }
}
"""


def populate(db: Database, scale: int) -> None:
    for cid in range(scale):
        db.insert("ACCOUNTS", custid=cid, name=f"cust{cid}")
        db.insert("SAVINGS", s_custid=cid, s_bal=100)
        db.insert("CHECKING", c_custid=cid, c_bal=100)


def _one_cust(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale),)


def _cust_amount(rng: random.Random, scale: int) -> Tuple:
    return (zipf_int(rng, scale), rng.randint(1, 50))


def _two_custs(rng: random.Random, scale: int) -> Tuple:
    a = zipf_int(rng, scale)
    b = (a + 1 + rng.randrange(max(scale - 1, 1))) % max(scale, 1)
    return (a, b)


def _payment(rng: random.Random, scale: int) -> Tuple:
    a, b = _two_custs(rng, scale)
    return (a, b, rng.randint(1, 30))


SMALLBANK = Benchmark(
    name="SmallBank",
    source=SOURCE,
    populate=populate,
    mix=(
        ("Balance", 25.0, _one_cust),
        ("DepositChecking", 20.0, _cust_amount),
        ("TransactSavings", 20.0, _cust_amount),
        ("Amalgamate", 10.0, _two_custs),
        ("WriteCheck", 15.0, _cust_amount),
        ("SendPayment", 10.0, _payment),
    ),
    paper=PaperRow(
        txns=6, tables_before=3, tables_after=5,
        ec=24, at=8, cc=21, rr=20, time_s=68.7,
    ),
)

# The three application-level invariants of Appendix A.2, as predicates
# over a materialised state (table -> key -> fields).


def invariant_nonnegative(tables) -> bool:
    """Invariant 1: no checking or savings balance is negative."""
    for table in ("SAVINGS", "CHECKING"):
        fieldname = "s_bal" if table == "SAVINGS" else "c_bal"
        for fields in tables.get(table, {}).values():
            bal = fields.get(fieldname)
            if bal is not None and bal < 0:
                return False
    return True


def invariant_total_conserved(tables, expected_total: int) -> bool:
    """Invariant 2: the sum over all balances matches the deposit history
    (no money created or destroyed by concurrency)."""
    total = 0
    for table, fieldname in (("SAVINGS", "s_bal"), ("CHECKING", "c_bal")):
        for fields in tables.get(table, {}).values():
            bal = fields.get(fieldname)
            if bal is not None:
                total += bal
    return total == expected_total


def invariant_consistent_view(savings_read, checking_read, tables, custid) -> bool:
    """Invariant 3: a client observing both balances of one customer sees
    a state some serial execution could produce; used by the dynamic
    experiment which compares joint reads against reachable serial states."""
    return (savings_read, checking_read) is not None  # refined in repro.exp
