"""Closed-loop workload simulation.

``simulate`` drives N closed-loop clients against a replicated cluster
for a fixed simulated duration and reports throughput and latency --
one point of the Figure 12-15 curves.

Protocol model (see DESIGN.md for the substitution argument):

- **EC transactions**: every operation goes to the client's local
  replica (half-RTT there and back is sub-millisecond within a region);
  writes are replicated asynchronously, which consumes capacity on the
  other replicas but does not delay the client.
- **SC (serializable) transactions**: every operation is routed to the
  leader region (paying the client-leader RTT), costs more service time
  (replication bookkeeping), and the transaction ends with a
  majority-acknowledged commit round (leader to nearest peer RTT).

The per-transaction choice comes from the transaction's ``serializable``
flag, so the same machinery runs all four configurations of the paper:
EC (nothing flagged), SC (everything flagged), AT-EC (refactored,
nothing flagged), AT-SC (refactored, residual transactions flagged).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.store.network import ClusterSpec
from repro.store.profile import OpProfile, WRITE_OP
from repro.store.replica import Replica, make_replicas
from repro.store.sim import EventLoop


@dataclass(frozen=True)
class PerfConfig:
    """Tunables of the capacity/latency model (defaults calibrated so the
    US-cluster SmallBank curves land in the paper's ballpark)."""

    ec_service_ms: float = 1.0
    sc_service_ms: float = 1.6
    local_half_rtt_ms: float = 0.3
    replication_service_ms: float = 0.4
    duration_ms: float = 10_000.0
    warmup_ms: float = 1_000.0
    seed: int = 1


@dataclass
class PerfResult:
    """One simulated point: (clients, mode) -> throughput & latency."""

    clients: int
    committed: int
    duration_s: float
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Committed transactions per second."""
        return self.committed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def avg_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    def percentile_latency_ms(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        data = sorted(self.latencies_ms)
        idx = min(int(q * len(data)), len(data) - 1)
        return data[idx]


class _Client:
    """One closed-loop client: issue, wait, repeat."""

    def __init__(
        self,
        cid: int,
        region: int,
        pick_profile,
        cluster: ClusterSpec,
        replicas: List[Replica],
        config: PerfConfig,
        result: PerfResult,
        loop: EventLoop,
        serialize_all: bool,
    ):
        self.cid = cid
        self.region = region
        self.pick_profile = pick_profile
        self.cluster = cluster
        self.replicas = replicas
        self.config = config
        self.result = result
        self.loop = loop
        self.serialize_all = serialize_all

    def start(self, when: float) -> None:
        self.loop.schedule(when, self._begin_txn)

    # -- one transaction ---------------------------------------------------

    def _begin_txn(self, now: float) -> None:
        profile: OpProfile = self.pick_profile()
        strong = self.serialize_all or profile.serializable
        state = {"start": now, "ops": list(profile.ops), "strong": strong}
        self._next_op(now, state)

    def _next_op(self, now: float, state: Dict) -> None:
        if not state["ops"]:
            self._commit(now, state)
            return
        kind, _table = state["ops"].pop(0)
        cfg = self.config
        if state["strong"]:
            target = self.replicas[self.cluster.leader]
            half = self.cluster.rtt(self.region, self.cluster.leader) / 2.0
            half = max(half, cfg.local_half_rtt_ms)
            service = cfg.sc_service_ms
        else:
            target = self.replicas[self.region]
            half = cfg.local_half_rtt_ms
            service = cfg.ec_service_ms

        arrival = now + half

        def arrive(_t: float, kind=kind, target=target, half=half, service=service):
            finish = target.serve(arrival, service)
            if kind == WRITE_OP:
                self._replicate(finish, target.region)
            self.loop.schedule(
                finish + half, lambda t2: self._next_op(t2, state)
            )

        self.loop.schedule(arrival, arrive)

    def _replicate(self, when: float, origin: int) -> None:
        """Asynchronous write propagation: background load on peers."""
        for replica in self.replicas:
            if replica.region == origin:
                continue
            delay = self.cluster.rtt(origin, replica.region) / 2.0
            self.loop.schedule(
                when + delay,
                lambda t, r=replica: r.serve(t, self.config.replication_service_ms),
            )

    def _commit(self, now: float, state: Dict) -> None:
        cfg = self.config
        if state["strong"]:
            commit_wait = self.cluster.majority_commit_ms()
            half = max(
                self.cluster.rtt(self.region, self.cluster.leader) / 2.0,
                cfg.local_half_rtt_ms,
            )
            done = now + commit_wait + half
        else:
            done = now
        self.loop.schedule(done, lambda t: self._finish(t, state))

    def _finish(self, now: float, state: Dict) -> None:
        if now >= self.config.warmup_ms:
            self.result.committed += 1
            self.result.latencies_ms.append(now - state["start"])
        self._begin_txn(now)


def simulate(
    profiles: Dict[str, OpProfile],
    mix: Sequence[Tuple[str, float]],
    cluster: ClusterSpec,
    clients: int,
    config: Optional[PerfConfig] = None,
    serialize_all: bool = False,
) -> PerfResult:
    """Run one closed-loop simulation point.

    Args:
        profiles: per-transaction operation profiles (from
            :func:`repro.store.profile.profile_program`).
        mix: transaction mix as ``(txn name, weight)``.
        cluster: topology preset.
        clients: number of closed-loop clients (spread over regions).
        config: model tunables.
        serialize_all: route *every* transaction through the strong path
            (the SC configuration); otherwise per-transaction flags rule.
    """
    config = config or PerfConfig()
    if clients <= 0:
        raise SimulationError("need at least one client")
    for name, _ in mix:
        if name not in profiles:
            raise SimulationError(f"mix names unknown transaction {name}")
    rng = random.Random(config.seed)
    loop = EventLoop()
    replicas = make_replicas(cluster.size)
    measured = (config.duration_ms - config.warmup_ms) / 1000.0
    result = PerfResult(clients=clients, committed=0, duration_s=measured)

    total_weight = sum(w for _, w in mix)

    def pick_profile() -> OpProfile:
        target = rng.random() * total_weight
        acc = 0.0
        for name, weight in mix:
            acc += weight
            if target <= acc:
                return profiles[name]
        return profiles[mix[-1][0]]

    for cid in range(clients):
        client = _Client(
            cid=cid,
            region=cid % cluster.size,
            pick_profile=pick_profile,
            cluster=cluster,
            replicas=replicas,
            config=config,
            result=result,
            loop=loop,
            serialize_all=serialize_all,
        )
        client.start(rng.random())  # tiny stagger to avoid lockstep
    loop.run_until(config.duration_ms)
    return result
