"""Closed-loop workload simulation.

``simulate`` drives N closed-loop clients against a replicated cluster
for a fixed simulated duration and reports throughput and latency --
one point of the Figure 12-15 curves.

Protocol model (see DESIGN.md for the substitution argument):

- **EC transactions**: every operation goes to the client's local
  replica (half-RTT there and back is sub-millisecond within a region);
  writes are replicated asynchronously, which consumes capacity on the
  other replicas but does not delay the client.
- **SC (serializable) transactions**: every operation is routed to the
  leader region (paying the client-leader RTT), costs more service time
  (replication bookkeeping), and the transaction ends with a
  majority-acknowledged commit round (leader to nearest peer RTT).

The per-transaction choice comes from the transaction's ``serializable``
flag, so the same machinery runs all four configurations of the paper:
EC (nothing flagged), SC (everything flagged), AT-EC (refactored,
nothing flagged), AT-SC (refactored, residual transactions flagged).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.store.network import ClusterSpec
from repro.store.profile import OpProfile, WRITE_OP
from repro.store.replica import Replica, make_replicas
from repro.store.sim import EventLoop


@dataclass(frozen=True)
class PerfConfig:
    """Tunables of the capacity/latency model (defaults calibrated so the
    US-cluster SmallBank curves land in the paper's ballpark)."""

    ec_service_ms: float = 1.0
    sc_service_ms: float = 1.6
    local_half_rtt_ms: float = 0.3
    replication_service_ms: float = 0.4
    duration_ms: float = 10_000.0
    warmup_ms: float = 1_000.0
    seed: int = 1


@dataclass
class PerfResult:
    """One simulated point: (clients, mode) -> throughput & latency."""

    clients: int
    committed: int
    duration_s: float
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Committed transactions per second."""
        return self.committed / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def avg_latency_ms(self) -> float:
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    def percentile_latency_ms(self, q: float) -> float:
        """Nearest-rank percentile: smallest sample with at least a
        ``q`` fraction of the data at or below it (``q=0`` is the
        minimum, ``q=1`` the maximum; a singleton sample answers every
        quantile with its one value)."""
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"percentile must be in [0, 1], got {q}")
        if not self.latencies_ms:
            return 0.0
        data = sorted(self.latencies_ms)
        idx = max(math.ceil(q * len(data)) - 1, 0)
        return data[idx]


class OpRewriter:
    """Hook rewriting a transaction's operation stream at begin time.

    ``rewrite`` maps a profile to ``(ops, commit_extra_ms)``: the
    operations actually issued -- ``(kind, table)`` pairs or
    ``(kind, table, extra_ms)`` triples whose third component is added
    to that operation's service time -- plus a flat surcharge added to
    the commit point.  :mod:`repro.live` installs its rule-enforcement
    cost model through this hook; the default simulation passes no
    rewriter and issues profiles verbatim.
    """

    def rewrite(self, profile: OpProfile) -> Tuple[Sequence[Tuple], float]:
        raise NotImplementedError


class _Client:
    """One closed-loop client: issue, wait, repeat."""

    def __init__(
        self,
        cid: int,
        region: int,
        pick_profile,
        cluster: ClusterSpec,
        replicas: List[Replica],
        config: PerfConfig,
        result: PerfResult,
        loop: EventLoop,
        serialize_all: bool,
        rewriter: Optional["OpRewriter"] = None,
    ):
        self.cid = cid
        self.region = region
        self.pick_profile = pick_profile
        self.cluster = cluster
        self.replicas = replicas
        self.config = config
        self.result = result
        self.loop = loop
        self.serialize_all = serialize_all
        self.rewriter = rewriter

    def start(self, when: float) -> None:
        self.loop.schedule(when, self._begin_txn)

    # -- one transaction ---------------------------------------------------

    def _begin_txn(self, now: float) -> None:
        profile: OpProfile = self.pick_profile()
        strong = self.serialize_all or profile.serializable
        commit_extra = 0.0
        if self.rewriter is not None:
            ops, commit_extra = self.rewriter.rewrite(profile)
            ops = list(ops)
        else:
            ops = list(profile.ops)
        state = {
            "start": now,
            "ops": ops,
            "strong": strong,
            "commit_extra": commit_extra,
        }
        self._next_op(now, state)

    def _next_op(self, now: float, state: Dict) -> None:
        if not state["ops"]:
            self._commit(now, state)
            return
        # Ops are (kind, table) pairs; a rewriter may extend them to
        # (kind, table, extra_ms) triples charging per-op surcharges.
        op = state["ops"].pop(0)
        kind = op[0]
        extra_ms = op[2] if len(op) > 2 else 0.0
        cfg = self.config
        if state["strong"]:
            target = self.replicas[self.cluster.leader]
            half = self.cluster.rtt(self.region, self.cluster.leader) / 2.0
            half = max(half, cfg.local_half_rtt_ms)
            service = cfg.sc_service_ms + extra_ms
        else:
            target = self.replicas[self.region]
            half = cfg.local_half_rtt_ms
            service = cfg.ec_service_ms + extra_ms

        arrival = now + half

        def arrive(_t: float, kind=kind, target=target, half=half, service=service):
            finish = target.serve(arrival, service)
            if kind == WRITE_OP:
                self._replicate(finish, target.region)
            self.loop.schedule(
                finish + half, lambda t2: self._next_op(t2, state)
            )

        self.loop.schedule(arrival, arrive)

    def _replicate(self, when: float, origin: int) -> None:
        """Asynchronous write propagation: background load on peers."""
        for replica in self.replicas:
            if replica.region == origin:
                continue
            delay = self.cluster.rtt(origin, replica.region) / 2.0
            self.loop.schedule(
                when + delay,
                lambda t, r=replica: r.serve(t, self.config.replication_service_ms),
            )

    def _commit(self, now: float, state: Dict) -> None:
        cfg = self.config
        if state["strong"]:
            commit_wait = self.cluster.majority_commit_ms()
            half = max(
                self.cluster.rtt(self.region, self.cluster.leader) / 2.0,
                cfg.local_half_rtt_ms,
            )
            done = now + commit_wait + half
        else:
            done = now
        done += state.get("commit_extra", 0.0)
        self.loop.schedule(done, lambda t: self._finish(t, state))

    def _finish(self, now: float, state: Dict) -> None:
        if now >= self.config.warmup_ms:
            self.result.committed += 1
            self.result.latencies_ms.append(now - state["start"])
        self._begin_txn(now)


def simulate(
    profiles: Dict[str, OpProfile],
    mix: Sequence[Tuple[str, float]],
    cluster: ClusterSpec,
    clients: int,
    config: Optional[PerfConfig] = None,
    serialize_all: bool = False,
    rewriter: Optional[OpRewriter] = None,
) -> PerfResult:
    """Run one closed-loop simulation point.

    Args:
        profiles: per-transaction operation profiles (from
            :func:`repro.store.profile.profile_program`).
        mix: transaction mix as ``(txn name, weight)``.
        cluster: topology preset.
        clients: number of closed-loop clients (spread over regions).
        config: model tunables.
        serialize_all: route *every* transaction through the strong path
            (the SC configuration); otherwise per-transaction flags rule.
        rewriter: optional :class:`OpRewriter` rewriting each
            transaction's operation stream (and charging overhead) at
            begin time.
    """
    config = config or PerfConfig()
    if clients <= 0:
        raise SimulationError("need at least one client")
    for name, _ in mix:
        if name not in profiles:
            raise SimulationError(f"mix names unknown transaction {name}")
    rng = random.Random(config.seed)
    loop = EventLoop()
    replicas = make_replicas(cluster.size)
    measured = (config.duration_ms - config.warmup_ms) / 1000.0
    result = PerfResult(clients=clients, committed=0, duration_s=measured)

    total_weight = sum(w for _, w in mix)

    def pick_profile() -> OpProfile:
        target = rng.random() * total_weight
        acc = 0.0
        for name, weight in mix:
            acc += weight
            if target <= acc:
                return profiles[name]
        return profiles[mix[-1][0]]

    for cid in range(clients):
        client = _Client(
            cid=cid,
            region=cid % cluster.size,
            pick_profile=pick_profile,
            cluster=cluster,
            replicas=replicas,
            config=config,
            result=result,
            loop=loop,
            serialize_all=serialize_all,
            rewriter=rewriter,
        )
        client.start(rng.random())  # tiny stagger to avoid lockstep
    loop.run_until(config.duration_ms)
    return result
