"""Discrete-event simulator of a geo-replicated document store.

The paper's performance study (Section 7.2, Figures 12-15) runs MongoDB
on three-node AWS clusters.  This package substitutes a discrete-event
model that reproduces the mechanisms those numbers come from:

- a 3-region cluster with a configurable inter-region RTT matrix
  (:mod:`repro.store.network` ships the VA / US / Global presets);
- replicas with finite service capacity (FIFO queues, per-operation
  service time) -- :mod:`repro.store.replica`;
- two execution protocols: **EC** (reads/writes served by the client's
  local replica, asynchronous replication) and **SC** (operations routed
  to a leader, plus a majority-acknowledged commit round per
  transaction) -- :mod:`repro.store.protocol`;
- closed-loop clients driving a benchmark transaction mix
  (:mod:`repro.store.client`), with per-transaction consistency choice so
  the AT-SC configuration (only residually-anomalous transactions
  serialized) is expressible;
- transaction *operation profiles* extracted by dry-running the DSL
  interpreter (:mod:`repro.store.profile`), so refactored programs
  automatically cost fewer or different operations than originals.

Absolute numbers are not meant to match AWS; the relative shapes (EC >>
SC, AT-EC ~ EC, AT-SC in between, saturation with client count) are.
"""

from repro.store.network import ClusterSpec, CLUSTERS, VA_CLUSTER, US_CLUSTER, GLOBAL_CLUSTER
from repro.store.profile import OpProfile, profile_program
from repro.store.runner import PerfConfig, PerfResult, simulate

__all__ = [
    "ClusterSpec",
    "CLUSTERS",
    "VA_CLUSTER",
    "US_CLUSTER",
    "GLOBAL_CLUSTER",
    "OpProfile",
    "profile_program",
    "PerfConfig",
    "PerfResult",
    "simulate",
]
