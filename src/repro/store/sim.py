"""A minimal discrete-event loop (heapq-based)."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple


class EventLoop:
    """Time-ordered callback scheduler.

    Events fire in (time, insertion order); callbacks receive the current
    simulation time and may schedule further events.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[float], None]]] = []
        self._seq = itertools.count()
        self.now = 0.0

    def schedule(self, when: float, fn: Callable[[float], None]) -> None:
        if when < self.now:
            when = self.now
        heapq.heappush(self._heap, (when, next(self._seq), fn))

    def run_until(self, deadline: float) -> None:
        """Process events up to (and including) ``deadline``."""
        while self._heap and self._heap[0][0] <= deadline:
            when, _, fn = heapq.heappop(self._heap)
            self.now = when
            fn(when)
        self.now = deadline

    def __len__(self) -> int:
        return len(self._heap)
