"""Cluster topologies: regions and inter-region round-trip times.

The three presets correspond to the paper's experimental clusters:

- **VA**: three nodes in one data centre (N. Virginia);
- **US**: N. Virginia, Ohio, Oregon;
- **Global**: N. Virginia, London, Tokyo.

RTT values are representative public inter-region latencies (ms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class ClusterSpec:
    """A replica cluster: region names and a symmetric RTT matrix (ms)."""

    name: str
    regions: Tuple[str, ...]
    rtt_ms: Tuple[Tuple[float, ...], ...]
    leader: int = 0

    def __post_init__(self) -> None:
        n = len(self.regions)
        if len(self.rtt_ms) != n or any(len(row) != n for row in self.rtt_ms):
            raise SimulationError(f"cluster {self.name}: RTT matrix shape mismatch")
        for i in range(n):
            for j in range(n):
                if abs(self.rtt_ms[i][j] - self.rtt_ms[j][i]) > 1e-9:
                    raise SimulationError(
                        f"cluster {self.name}: RTT matrix must be symmetric"
                    )

    @property
    def size(self) -> int:
        return len(self.regions)

    def rtt(self, a: int, b: int) -> float:
        return self.rtt_ms[a][b]

    def majority_commit_ms(self) -> float:
        """Round trip from the leader to the nearest majority.

        With three replicas, a majority needs one remote acknowledgement;
        the commit wait is the smallest leader-to-peer RTT.
        """
        peers = [
            self.rtt(self.leader, r)
            for r in range(self.size)
            if r != self.leader
        ]
        peers.sort()
        needed = (self.size // 2 + 1) - 1  # acks beyond the leader itself
        if needed <= 0:
            return 0.0
        return peers[needed - 1]


VA_CLUSTER = ClusterSpec(
    name="VA",
    regions=("va-a", "va-b", "va-c"),
    rtt_ms=(
        (0.0, 0.6, 0.6),
        (0.6, 0.0, 0.6),
        (0.6, 0.6, 0.0),
    ),
)

US_CLUSTER = ClusterSpec(
    name="US",
    regions=("n-virginia", "ohio", "oregon"),
    rtt_ms=(
        (0.0, 12.0, 72.0),
        (12.0, 0.0, 60.0),
        (72.0, 60.0, 0.0),
    ),
)

GLOBAL_CLUSTER = ClusterSpec(
    name="Global",
    regions=("n-virginia", "london", "tokyo"),
    rtt_ms=(
        (0.0, 76.0, 160.0),
        (76.0, 0.0, 220.0),
        (160.0, 220.0, 0.0),
    ),
)

CLUSTERS: Dict[str, ClusterSpec] = {
    c.name: c for c in (VA_CLUSTER, US_CLUSTER, GLOBAL_CLUSTER)
}
