"""Transaction operation profiles.

The simulator does not re-interpret the DSL for every simulated
transaction (millions per sweep); instead each transaction type is
dry-run once on the benchmark's populated database and summarised as the
sequence of store operations it issues.  Refactored programs therefore
automatically exhibit their changed costs: merged commands issue fewer
operations, logging schemas turn read-modify-writes into blind inserts,
and log reads scan more records.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import SemanticsError
from repro.lang import ast
from repro.semantics.interp import TxnCall
from repro.semantics.scheduler import run_serial
from repro.semantics.state import Database

READ_OP = "r"
WRITE_OP = "w"


@dataclass(frozen=True)
class OpProfile:
    """Operation sequence of one transaction type.

    ``ops`` is a tuple of ``(kind, table)`` with kind ``"r"`` or ``"w"``;
    ``serializable`` mirrors the transaction's annotation (AT-SC runs
    route these through the strong path).
    """

    txn: str
    ops: Tuple[Tuple[str, str], ...]
    serializable: bool

    @property
    def reads(self) -> int:
        return sum(1 for kind, _ in self.ops if kind == READ_OP)

    @property
    def writes(self) -> int:
        return sum(1 for kind, _ in self.ops if kind == WRITE_OP)


def profile_program(
    program: ast.Program,
    db: Database,
    sample_calls: Dict[str, TxnCall],
) -> Dict[str, OpProfile]:
    """Profile every transaction by serial dry-run on ``db``.

    ``sample_calls`` provides representative arguments per transaction
    name (from the benchmark's workload generator).
    """
    profiles: Dict[str, OpProfile] = {}
    for txn in program.transactions:
        call = sample_calls.get(txn.name)
        if call is None:
            raise SemanticsError(f"no sample call for transaction {txn.name}")
        history = run_serial(program, db, [call])
        ops: List[Tuple[str, str]] = []
        for step in history.steps:
            events = step.events
            kind = WRITE_OP if any(e.is_write for e in events) else READ_OP
            table = events[0].table if events else "?"
            ops.append((kind, table))
        profiles[txn.name] = OpProfile(
            txn=txn.name,
            ops=tuple(ops),
            serializable=txn.serializable,
        )
    return profiles


def sample_calls_for(benchmark, rng: random.Random, scale: int) -> Dict[str, TxnCall]:
    """One representative call per transaction in the benchmark's mix."""
    out: Dict[str, TxnCall] = {}
    for name, _, gen in benchmark.mix:
        out[name] = TxnCall(name, gen(rng, scale))
    return out
