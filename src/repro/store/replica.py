"""Replica capacity model: a single-server FIFO queue per node.

Each replica serves one operation at a time; an operation arriving at a
busy replica waits for the queue to drain.  This is the saturation
mechanism behind the throughput plateaus of Figures 12-15.
"""

from __future__ import annotations

from typing import List


class Replica:
    """One storage node with deterministic per-op service times."""

    def __init__(self, region: int):
        self.region = region
        self._busy_until = 0.0
        self.ops_served = 0

    def serve(self, arrival: float, service_ms: float) -> float:
        """Enqueue an op arriving at ``arrival``; returns completion time."""
        start = max(arrival, self._busy_until)
        finish = start + service_ms
        self._busy_until = finish
        self.ops_served += 1
        return finish

    @property
    def busy_until(self) -> float:
        return self._busy_until


def make_replicas(count: int) -> List[Replica]:
    return [Replica(region=i) for i in range(count)]
