"""Tokenizer for the database-program DSL.

A small hand-written scanner: it keeps line/column information for error
reporting and understands ``//`` line comments (the comment style the
paper's listings use) as well as ``#`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ParseError

KEYWORDS = frozenset(
    {
        "schema",
        "key",
        "field",
        "ref",
        "txn",
        "return",
        "select",
        "from",
        "where",
        "update",
        "set",
        "insert",
        "into",
        "values",
        "if",
        "iterate",
        "skip",
        "and",
        "or",
        "not",
        "true",
        "false",
        "this",
        "iter",
        "sum",
        "min",
        "max",
        "count",
        "any",
        "at",
        "uuid",
        "serializable",
    }
)

# Multi-character operators must precede their prefixes.
SYMBOLS = (
    ":=",
    "<=",
    ">=",
    "!=",
    "==",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    ".",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``kind`` is one of ``"ident"``, ``"keyword"``, ``"int"``, ``"string"``,
    ``"symbol"``, or ``"eof"``; ``value`` is the lexeme (for ints, the
    decimal text).
    """

    kind: str
    value: str
    line: int
    column: int

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == "symbol" and self.value in symbols

    def is_keyword(self, *keywords: str) -> bool:
        return self.kind == "keyword" and self.value in keywords


def tokenize(source: str) -> List[Token]:
    """Scan ``source`` into a token list ending with an ``eof`` token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        # Whitespace.
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        # Comments: // ... and # ...
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        # String literals.
        if ch in ("'", '"'):
            quote = ch
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise ParseError("unterminated string literal", line, col)
                buf.append(source[j])
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal", line, col)
            yield Token("string", "".join(buf), line, col)
            width = j + 1 - i
            i = j + 1
            col += width
            continue
        # Numbers.
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            yield Token("int", source[i:j], line, col)
            col += j - i
            i = j
            continue
        # Identifiers / keywords.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            yield Token(kind, word, line, col)
            col += j - i
            i = j
            continue
        # Symbols.
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                yield Token("symbol", sym, line, col)
                i += len(sym)
                col += len(sym)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col)
    yield Token("eof", "", line, col)
