"""Generic traversal and rewriting helpers over DSL ASTs.

The refactoring engine (Section 4) is expressed as structural rewrites on
expressions, where clauses, and commands; this module centralises the
boilerplate so rule implementations only say what changes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lang import ast

ExprFn = Callable[[ast.Expr], Optional[ast.Expr]]
CmdFn = Callable[[ast.Command], Optional[Sequence[ast.Command]]]


# ---------------------------------------------------------------------------
# Expression traversal
# ---------------------------------------------------------------------------


def iter_subexpressions(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Yield ``expr`` and all its descendants, preorder."""
    yield expr
    if isinstance(expr, (ast.BinOp, ast.Cmp, ast.BoolOp)):
        yield from iter_subexpressions(expr.left)
        yield from iter_subexpressions(expr.right)
    elif isinstance(expr, ast.Not):
        yield from iter_subexpressions(expr.operand)
    elif isinstance(expr, ast.At):
        yield from iter_subexpressions(expr.index)


def rewrite_expression(expr: ast.Expr, fn: ExprFn) -> ast.Expr:
    """Bottom-up rewrite: ``fn`` may return a replacement or ``None``."""
    if isinstance(expr, (ast.BinOp, ast.Cmp, ast.BoolOp)):
        expr = replace(
            expr,
            left=rewrite_expression(expr.left, fn),
            right=rewrite_expression(expr.right, fn),
        )
    elif isinstance(expr, ast.Not):
        expr = replace(expr, operand=rewrite_expression(expr.operand, fn))
    elif isinstance(expr, ast.At):
        expr = replace(expr, index=rewrite_expression(expr.index, fn))
    replacement = fn(expr)
    return expr if replacement is None else replacement


def expression_vars(expr: ast.Expr) -> Set[str]:
    """Local variables (``x`` of ``x.f`` / ``agg(x.f)``) referenced."""
    out: Set[str] = set()
    for sub in iter_subexpressions(expr):
        if isinstance(sub, (ast.At, ast.Agg)):
            out.add(sub.var)
    return out


def expression_field_accesses(expr: ast.Expr) -> Set[Tuple[str, str]]:
    """All ``(var, field)`` accesses appearing in the expression."""
    out: Set[Tuple[str, str]] = set()
    for sub in iter_subexpressions(expr):
        if isinstance(sub, (ast.At, ast.Agg)):
            out.add((sub.var, sub.field))
    return out


# ---------------------------------------------------------------------------
# Where-clause traversal
# ---------------------------------------------------------------------------


def rewrite_where(where: ast.Where, fn: ExprFn) -> ast.Where:
    """Apply an expression rewrite inside every condition of ``where``."""
    if isinstance(where, ast.WhereTrue):
        return where
    if isinstance(where, ast.WhereCond):
        return replace(where, expr=rewrite_expression(where.expr, fn))
    if isinstance(where, ast.WhereBool):
        return replace(
            where,
            left=rewrite_where(where.left, fn),
            right=rewrite_where(where.right, fn),
        )
    raise TypeError(f"not a where clause: {where!r}")


def where_expressions(where: ast.Where) -> Iterator[ast.Expr]:
    if isinstance(where, ast.WhereCond):
        yield where.expr
    elif isinstance(where, ast.WhereBool):
        yield from where_expressions(where.left)
        yield from where_expressions(where.right)


def where_vars(where: ast.Where) -> Set[str]:
    out: Set[str] = set()
    for expr in where_expressions(where):
        out |= expression_vars(expr)
    return out


# ---------------------------------------------------------------------------
# Command traversal
# ---------------------------------------------------------------------------


def rewrite_commands(
    body: Sequence[ast.Command], fn: CmdFn
) -> Tuple[ast.Command, ...]:
    """Rewrite a command sequence.

    ``fn`` is applied to each database command (selects/updates/inserts);
    it may return ``None`` (keep), an empty sequence (delete), or one or
    more replacement commands (split/merge sites use this).  Control
    commands recurse into their bodies.
    """
    out: List[ast.Command] = []
    for cmd in body:
        if isinstance(cmd, ast.If):
            out.append(replace(cmd, body=rewrite_commands(cmd.body, fn)))
        elif isinstance(cmd, ast.Iterate):
            out.append(replace(cmd, body=rewrite_commands(cmd.body, fn)))
        elif isinstance(cmd, (ast.Select, ast.Update, ast.Insert)):
            result = fn(cmd)
            if result is None:
                out.append(cmd)
            else:
                out.extend(result)
        else:
            out.append(cmd)
    return tuple(out)


def rewrite_transaction_commands(txn: ast.Transaction, fn: CmdFn) -> ast.Transaction:
    return replace(txn, body=rewrite_commands(txn.body, fn))


def rewrite_program_commands(program: ast.Program, fn: CmdFn) -> ast.Program:
    return replace(
        program,
        transactions=tuple(
            rewrite_transaction_commands(t, fn) for t in program.transactions
        ),
    )


def rewrite_program_expressions(program: ast.Program, fn: ExprFn) -> ast.Program:
    """Apply an expression rewrite everywhere expressions occur."""

    def on_command(cmd: ast.Command) -> Optional[Sequence[ast.Command]]:
        if isinstance(cmd, ast.Select):
            return (replace(cmd, where=rewrite_where(cmd.where, fn)),)
        if isinstance(cmd, ast.Update):
            assignments = tuple(
                (f, rewrite_expression(e, fn)) for f, e in cmd.assignments
            )
            return (
                replace(
                    cmd, assignments=assignments, where=rewrite_where(cmd.where, fn)
                ),
            )
        if isinstance(cmd, ast.Insert):
            assignments = tuple(
                (f, rewrite_expression(e, fn)) for f, e in cmd.assignments
            )
            return (replace(cmd, assignments=assignments),)
        return None

    def on_txn(txn: ast.Transaction) -> ast.Transaction:
        txn = rewrite_transaction_commands(txn, on_command)
        # Conditions and iteration counts also hold expressions.
        txn = replace(txn, body=_rewrite_control_exprs(txn.body, fn))
        if txn.ret is not None:
            txn = replace(txn, ret=rewrite_expression(txn.ret, fn))
        return txn

    return replace(
        program, transactions=tuple(on_txn(t) for t in program.transactions)
    )


def _rewrite_control_exprs(
    body: Sequence[ast.Command], fn: ExprFn
) -> Tuple[ast.Command, ...]:
    out: List[ast.Command] = []
    for cmd in body:
        if isinstance(cmd, ast.If):
            out.append(
                replace(
                    cmd,
                    cond=rewrite_expression(cmd.cond, fn),
                    body=_rewrite_control_exprs(cmd.body, fn),
                )
            )
        elif isinstance(cmd, ast.Iterate):
            out.append(
                replace(
                    cmd,
                    count=rewrite_expression(cmd.count, fn),
                    body=_rewrite_control_exprs(cmd.body, fn),
                )
            )
        else:
            out.append(cmd)
    return tuple(out)


# ---------------------------------------------------------------------------
# Dataflow helpers
# ---------------------------------------------------------------------------


def used_vars(txn: ast.Transaction) -> Set[str]:
    """Variables read anywhere in the transaction (not counting bindings)."""
    out: Set[str] = set()

    def collect_expr(expr: ast.Expr) -> None:
        out.update(expression_vars(expr))

    def walk(body: Sequence[ast.Command]) -> None:
        for cmd in body:
            if isinstance(cmd, ast.Select):
                out.update(where_vars(cmd.where))
            elif isinstance(cmd, ast.Update):
                for _, e in cmd.assignments:
                    collect_expr(e)
                out.update(where_vars(cmd.where))
            elif isinstance(cmd, ast.Insert):
                for _, e in cmd.assignments:
                    collect_expr(e)
            elif isinstance(cmd, (ast.If, ast.Iterate)):
                cond = cmd.cond if isinstance(cmd, ast.If) else cmd.count
                collect_expr(cond)
                walk(cmd.body)

    walk(txn.body)
    if txn.ret is not None:
        collect_expr(txn.ret)
    return out


def accessed_tables(txn: ast.Transaction) -> Set[str]:
    """Tables touched by any database command of the transaction."""
    return {
        cmd.table
        for cmd in ast.iter_db_commands(txn)
        if isinstance(cmd, (ast.Select, ast.Update, ast.Insert))
    }
