"""Static well-formedness checking for DSL programs.

Checks performed (each violation raises
:class:`~repro.errors.ValidationError`):

- schema names, transaction names, and command labels are unique;
- every command references a declared table;
- selected / updated / where-clause fields belong to the table's schema;
- ``ref`` annotations point at declared key fields of declared tables;
- inserts assign the full primary key of their table;
- expressions only reference transaction parameters or variables bound by
  an earlier select (no use-before-bind), and field accesses ``x.f`` use
  fields actually retrievable from ``x``'s select;
- updates do not assign primary-key fields (key mutation would break the
  record-identity model of Section 3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.errors import ValidationError
from repro.lang import ast
from repro.lang.traverse import iter_subexpressions, where_expressions


def validate_program(program: ast.Program) -> None:
    """Validate ``program``; raises :class:`ValidationError` on failure."""
    _check_schemas(program)
    seen_txns: Set[str] = set()
    for txn in program.transactions:
        if txn.name in seen_txns:
            raise ValidationError(f"duplicate transaction name {txn.name}")
        seen_txns.add(txn.name)
        _check_transaction(program, txn)


def _check_schemas(program: ast.Program) -> None:
    names: Set[str] = set()
    for schema in program.schemas:
        if schema.name in names:
            raise ValidationError(f"duplicate schema name {schema.name}")
        names.add(schema.name)
    for schema in program.schemas:
        for fname, (rtable, rfield) in schema.ref_map.items():
            if not program.has_schema(rtable):
                raise ValidationError(
                    f"{schema.name}.{fname} references unknown table {rtable}"
                )
            target = program.schema(rtable)
            if rfield not in target.fields:
                raise ValidationError(
                    f"{schema.name}.{fname} references unknown field "
                    f"{rtable}.{rfield}"
                )


class _Scope:
    """Tracks variable bindings (var -> retrievable fields) along a path."""

    def __init__(self, params: Sequence[str]):
        self.params: Set[str] = set(params)
        self.vars: Dict[str, Tuple[str, Tuple[str, ...]]] = {}

    def bind(self, var: str, table: str, fields: Tuple[str, ...]) -> None:
        self.vars[var] = (table, fields)


def _check_transaction(program: ast.Program, txn: ast.Transaction) -> None:
    if len(set(txn.params)) != len(txn.params):
        raise ValidationError(f"{txn.name}: duplicate parameter name")
    labels: Set[str] = set()
    for cmd in ast.iter_db_commands(txn):
        label = getattr(cmd, "label", "")
        if label:
            if label in labels:
                raise ValidationError(f"{txn.name}: duplicate command label {label}")
            labels.add(label)
    scope = _Scope(txn.params)
    _check_body(program, txn, txn.body, scope, in_loop=False)
    if txn.ret is not None:
        _check_expression(program, txn, txn.ret, scope, in_loop=False)


def _check_body(
    program: ast.Program,
    txn: ast.Transaction,
    body: Sequence[ast.Command],
    scope: _Scope,
    in_loop: bool,
) -> None:
    for cmd in body:
        if isinstance(cmd, ast.Select):
            _check_select(program, txn, cmd, scope, in_loop)
        elif isinstance(cmd, ast.Update):
            _check_update(program, txn, cmd, scope, in_loop)
        elif isinstance(cmd, ast.Insert):
            _check_insert(program, txn, cmd, scope, in_loop)
        elif isinstance(cmd, ast.If):
            _check_expression(program, txn, cmd.cond, scope, in_loop)
            _check_body(program, txn, cmd.body, scope, in_loop)
        elif isinstance(cmd, ast.Iterate):
            _check_expression(program, txn, cmd.count, scope, in_loop)
            _check_body(program, txn, cmd.body, scope, in_loop=True)
        elif isinstance(cmd, ast.Skip):
            continue
        else:
            raise ValidationError(f"{txn.name}: unknown command {cmd!r}")


def _schema_of(program: ast.Program, txn: ast.Transaction, table: str) -> ast.Schema:
    if not program.has_schema(table):
        raise ValidationError(f"{txn.name}: unknown table {table}")
    return program.schema(table)


def _check_select(
    program: ast.Program,
    txn: ast.Transaction,
    cmd: ast.Select,
    scope: _Scope,
    in_loop: bool,
) -> None:
    schema = _schema_of(program, txn, cmd.table)
    fields = cmd.selected_fields(schema)
    for f in fields:
        if f not in schema.fields:
            raise ValidationError(
                f"{txn.name}/{cmd.label}: select of unknown field "
                f"{cmd.table}.{f}"
            )
    _check_where(program, txn, cmd, schema, cmd.where, scope, in_loop)
    scope.bind(cmd.var, cmd.table, fields)


def _check_update(
    program: ast.Program,
    txn: ast.Transaction,
    cmd: ast.Update,
    scope: _Scope,
    in_loop: bool,
) -> None:
    schema = _schema_of(program, txn, cmd.table)
    if not cmd.assignments:
        raise ValidationError(f"{txn.name}/{cmd.label}: update with no assignments")
    seen: Set[str] = set()
    for f, expr in cmd.assignments:
        if f not in schema.fields:
            raise ValidationError(
                f"{txn.name}/{cmd.label}: update of unknown field {cmd.table}.{f}"
            )
        if f in schema.key:
            raise ValidationError(
                f"{txn.name}/{cmd.label}: update must not assign key field "
                f"{cmd.table}.{f}"
            )
        if f in seen:
            raise ValidationError(
                f"{txn.name}/{cmd.label}: duplicate assignment to {f}"
            )
        seen.add(f)
        _check_expression(program, txn, expr, scope, in_loop)
    _check_where(program, txn, cmd, schema, cmd.where, scope, in_loop)


def _check_insert(
    program: ast.Program,
    txn: ast.Transaction,
    cmd: ast.Insert,
    scope: _Scope,
    in_loop: bool,
) -> None:
    schema = _schema_of(program, txn, cmd.table)
    assigned = {f for f, _ in cmd.assignments}
    for f, expr in cmd.assignments:
        if f not in schema.fields:
            raise ValidationError(
                f"{txn.name}/{cmd.label}: insert of unknown field {cmd.table}.{f}"
            )
        _check_expression(program, txn, expr, scope, in_loop)
    missing = [k for k in schema.key if k not in assigned]
    if missing:
        raise ValidationError(
            f"{txn.name}/{cmd.label}: insert must assign the full primary key "
            f"of {cmd.table} (missing {', '.join(missing)})"
        )


def _check_where(
    program: ast.Program,
    txn: ast.Transaction,
    cmd: ast.Command,
    schema: ast.Schema,
    where: ast.Where,
    scope: _Scope,
    in_loop: bool,
) -> None:
    label = getattr(cmd, "label", "?")
    for field in ast.where_fields(where):
        if field not in schema.fields:
            raise ValidationError(
                f"{txn.name}/{label}: where clause uses unknown field "
                f"{schema.name}.{field}"
            )
    for expr in where_expressions(where):
        _check_expression(program, txn, expr, scope, in_loop)


def _check_expression(
    program: ast.Program,
    txn: ast.Transaction,
    expr: ast.Expr,
    scope: _Scope,
    in_loop: bool,
) -> None:
    for sub in iter_subexpressions(expr):
        if isinstance(sub, ast.Arg):
            if sub.name not in scope.params:
                raise ValidationError(
                    f"{txn.name}: reference to unknown argument {sub.name!r} "
                    "(local records must be accessed as x.field)"
                )
        elif isinstance(sub, (ast.At, ast.Agg)):
            binding = scope.vars.get(sub.var)
            if binding is None:
                raise ValidationError(
                    f"{txn.name}: variable {sub.var!r} used before being bound "
                    "by a select"
                )
            table, fields = binding
            if sub.field not in fields:
                raise ValidationError(
                    f"{txn.name}: field {sub.field!r} was not retrieved into "
                    f"{sub.var!r} (select on {table} got {', '.join(fields)})"
                )
        elif isinstance(sub, ast.IterVar) and not in_loop:
            raise ValidationError(
                f"{txn.name}: 'iter' used outside an iterate body"
            )


def well_formed_where(
    schema: ast.Schema, where: ast.Where
) -> Optional[Dict[str, ast.Expr]]:
    """Section 4.2.1 well-formedness: conjunctions of equalities covering
    the full primary key.

    Returns the map ``key field -> phi[f]_exp`` when well-formed, else
    ``None``.  This is the applicability condition of the redirect rule:
    only commands that address a single record through its primary key can
    be redirected.
    """
    conjuncts = ast.where_conjuncts(where)
    if conjuncts is None:
        return None
    key_exprs: Dict[str, ast.Expr] = {}
    for cond in conjuncts:
        if cond.op != "=":
            return None
        if cond.field in key_exprs:
            return None
        key_exprs[cond.field] = cond.expr
    if set(key_exprs) != set(schema.key):
        return None
    return key_exprs
