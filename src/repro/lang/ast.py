"""AST node definitions for the database-program DSL (paper Figure 5).

The grammar implemented here is the paper's language extended with the two
constructs its refactored programs rely on:

- ``INSERT`` commands (the paper models inserts through the ``alive``
  field; the refactored programs of Section 2 use explicit inserts into
  logging tables, so we make them first-class), and
- the ``uuid()`` expression used to generate fresh primary keys for
  logging-table inserts.

All nodes are immutable (frozen dataclasses); rewriting produces new trees
via :mod:`repro.lang.traverse`.  Commands carry an optional ``label``
(``"S1"``, ``"U4.2"``, ...) used by the anomaly detector and repair engine
to report access pairs exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Optional, Sequence, Tuple, Union

# Sentinel used as the field list of ``SELECT * FROM ...``.
STAR = "*"

ARITH_OPS = ("+", "-", "*", "/")
CMP_OPS = ("<", "<=", "=", "!=", ">", ">=")
BOOL_OPS = ("and", "or")
AGG_FUNCS = ("sum", "min", "max", "count", "any")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expressions (``e`` in Figure 5)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant: integer, boolean, or string."""

    value: Union[int, bool, str]

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Arg(Expr):
    """A reference to a transaction parameter."""

    name: str


@dataclass(frozen=True)
class IterVar(Expr):
    """The current iteration counter inside an ``iterate`` body (``iter``)."""


@dataclass(frozen=True)
class Uuid(Expr):
    """``uuid()`` -- a value guaranteed fresh per evaluation.

    Used by the logger refactoring to mint unique ``log_id`` keys so every
    transaction instance inserts a distinct record.
    """


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic operation ``e1 (+|-|*|/) e2``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison ``e1 (<|<=|=|!=|>|>=) e2``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class BoolOp(Expr):
    """Boolean connective ``e1 (and|or) e2``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BOOL_OPS:
            raise ValueError(f"unknown boolean operator {self.op!r}")


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation.

    Not part of Figure 5's minimal grammar but standard in the benchmark
    programs; desugars to nothing special.
    """

    operand: Expr


@dataclass(frozen=True)
class At(Expr):
    """``at_e(x.f)`` -- the field ``f`` of the ``e``-th record held in ``x``.

    Indexing is 1-based, matching the paper's ``at1`` notation.  The
    surface syntax ``x.f`` is sugar for ``at_1(x.f)``.
    """

    index: Expr
    var: str
    field: str


@dataclass(frozen=True)
class Agg(Expr):
    """``agg(x.f)`` -- aggregate field ``f`` over all records held in ``x``.

    ``func`` is one of ``sum``, ``min``, ``max``, ``count``, ``any``; the
    paper's core grammar lists sum/min/max, ``count`` appears in benchmark
    programs and ``any`` is the nondeterministic-choice aggregator used by
    value correspondences.
    """

    func: str
    var: str
    field: str

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise ValueError(f"unknown aggregator {self.func!r}")


# ---------------------------------------------------------------------------
# Where clauses
# ---------------------------------------------------------------------------


class Where:
    """Base class for where clauses (``phi`` in Figure 5)."""

    __slots__ = ()


@dataclass(frozen=True)
class WhereTrue(Where):
    """The trivially true clause (full-table scan)."""


@dataclass(frozen=True)
class WhereCond(Where):
    """``this.f (op) e`` -- constrain field ``f`` of the scanned record."""

    field: str
    op: str
    expr: Expr

    def __post_init__(self) -> None:
        if self.op not in CMP_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class WhereBool(Where):
    """``phi1 (and|or) phi2``."""

    op: str
    left: Where
    right: Where

    def __post_init__(self) -> None:
        if self.op not in BOOL_OPS:
            raise ValueError(f"unknown boolean operator {self.op!r}")


def where_fields(phi: Where) -> Tuple[str, ...]:
    """The ordered set of fields mentioned by a where clause (``phi_fld``)."""
    out: list[str] = []

    def walk(w: Where) -> None:
        if isinstance(w, WhereCond):
            if w.field not in out:
                out.append(w.field)
        elif isinstance(w, WhereBool):
            walk(w.left)
            walk(w.right)

    walk(phi)
    return tuple(out)


def where_conjuncts(phi: Where) -> Optional[Tuple[WhereCond, ...]]:
    """Flatten ``phi`` into a conjunction of atomic conditions.

    Returns ``None`` if the clause contains a disjunction, in which case it
    cannot be treated as a simple conjunction (used by the well-formedness
    check of Section 4.2.1).
    """
    out: list[WhereCond] = []

    def walk(w: Where) -> bool:
        if isinstance(w, WhereTrue):
            return True
        if isinstance(w, WhereCond):
            out.append(w)
            return True
        if isinstance(w, WhereBool):
            if w.op != "and":
                return False
            return walk(w.left) and walk(w.right)
        raise TypeError(f"not a where clause: {w!r}")

    if not walk(phi):
        return None
    return tuple(out)


def make_conjunction(conds: Sequence[Where]) -> Where:
    """Build ``c1 and c2 and ...``; empty input yields :class:`WhereTrue`."""
    conds = [c for c in conds if not isinstance(c, WhereTrue)]
    if not conds:
        return WhereTrue()
    result: Where = conds[0]
    for cond in conds[1:]:
        result = WhereBool("and", result, cond)
    return result


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


class Command:
    """Base class for commands (``c`` in Figure 5)."""

    __slots__ = ()


@dataclass(frozen=True)
class Select(Command):
    """``x := SELECT f1, f2 FROM R WHERE phi``.

    ``fields`` is either the tuple of selected field names or the
    :data:`STAR` sentinel for ``SELECT *``.
    """

    var: str
    fields: Union[str, Tuple[str, ...]]
    table: str
    where: Where
    label: str = ""

    def selected_fields(self, schema: "Schema") -> Tuple[str, ...]:
        """Resolve the accessed fields against ``schema`` (expands ``*``)."""
        if self.fields == STAR:
            return schema.fields
        return tuple(self.fields)


@dataclass(frozen=True)
class Update(Command):
    """``UPDATE R SET f1 = e1, f2 = e2 WHERE phi``."""

    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Where
    label: str = ""

    @property
    def written_fields(self) -> Tuple[str, ...]:
        return tuple(f for f, _ in self.assignments)


@dataclass(frozen=True)
class Insert(Command):
    """``INSERT INTO R VALUES (f1 = e1, ...)``.

    Semantically sugar for materialising a fresh record (the paper models
    this by flipping the implicit ``alive`` field); the assignments must
    cover the schema's full primary key.
    """

    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    label: str = ""

    @property
    def written_fields(self) -> Tuple[str, ...]:
        return tuple(f for f, _ in self.assignments)


@dataclass(frozen=True)
class If(Command):
    """``if (e) { c }``."""

    cond: Expr
    body: Tuple[Command, ...]


@dataclass(frozen=True)
class Iterate(Command):
    """``iterate (e) { c }`` -- run the body ``e`` times."""

    count: Expr
    body: Tuple[Command, ...]


@dataclass(frozen=True)
class Skip(Command):
    """``skip`` -- the no-op command."""


# ---------------------------------------------------------------------------
# Schemas, transactions, programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Schema:
    """A database schema: name, fields, primary-key subset, references.

    ``refs`` maps a (non-key) field to the ``(table, field)`` it references
    -- the DSL's ``ref`` annotation.  References are how benchmark programs
    declare the foreign-key-like relationships the redirect refactoring
    exploits to construct record correspondences (the lifted theta-hat of
    Section 4.2.1).
    """

    name: str
    fields: Tuple[str, ...]
    key: Tuple[str, ...]
    refs: Tuple[Tuple[str, Tuple[str, str]], ...] = ()

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError(f"schema {self.name} must have a primary key")
        seen = set()
        for f in self.fields:
            if f in seen:
                raise ValueError(f"schema {self.name}: duplicate field {f}")
            seen.add(f)
        for k in self.key:
            if k not in self.fields:
                raise ValueError(f"schema {self.name}: key field {k} not declared")

    @property
    def non_key_fields(self) -> Tuple[str, ...]:
        return tuple(f for f in self.fields if f not in self.key)

    @property
    def ref_map(self) -> Mapping[str, Tuple[str, str]]:
        return dict(self.refs)

    def with_field(self, fname: str, ref: Optional[Tuple[str, str]] = None) -> "Schema":
        """Return a copy with one extra non-key field (rule ``intro rho.f``)."""
        if fname in self.fields:
            raise ValueError(f"schema {self.name}: field {fname} already exists")
        refs = self.refs + ((fname, ref),) if ref else self.refs
        return replace(self, fields=self.fields + (fname,), refs=refs)


@dataclass(frozen=True)
class Transaction:
    """A named transaction: parameters, body, and return expression.

    ``serializable`` marks the transaction as requiring serializable
    execution from the store; the repair pipeline sets it on transactions
    whose anomalies could not be refactored away (the AT-SC configuration
    of Section 7.2).
    """

    name: str
    params: Tuple[str, ...]
    body: Tuple[Command, ...]
    ret: Optional[Expr] = None
    serializable: bool = False


@dataclass(frozen=True)
class Program:
    """A database program ``P = (R-bar, T-bar)``."""

    schemas: Tuple[Schema, ...]
    transactions: Tuple[Transaction, ...]

    def schema(self, name: str) -> Schema:
        for s in self.schemas:
            if s.name == name:
                return s
        raise KeyError(f"no schema named {name}")

    def has_schema(self, name: str) -> bool:
        return any(s.name == name for s in self.schemas)

    def transaction(self, name: str) -> Transaction:
        for t in self.transactions:
            if t.name == name:
                return t
        raise KeyError(f"no transaction named {name}")

    @property
    def schema_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.schemas)

    def with_schema(self, schema: Schema) -> "Program":
        """Add a new schema (rule ``intro rho``)."""
        if self.has_schema(schema.name):
            raise ValueError(f"schema {schema.name} already exists")
        return replace(self, schemas=self.schemas + (schema,))

    def replace_schema(self, schema: Schema) -> "Program":
        return replace(
            self,
            schemas=tuple(schema if s.name == schema.name else s for s in self.schemas),
        )

    def without_schema(self, name: str) -> "Program":
        return replace(self, schemas=tuple(s for s in self.schemas if s.name != name))

    def replace_transaction(self, txn: Transaction) -> "Program":
        return replace(
            self,
            transactions=tuple(
                txn if t.name == txn.name else t for t in self.transactions
            ),
        )


# ---------------------------------------------------------------------------
# Convenience iteration
# ---------------------------------------------------------------------------


def iter_commands(body: Sequence[Command]) -> Iterator[Command]:
    """Yield every database command in ``body``, descending into control."""
    for cmd in body:
        if isinstance(cmd, (If, Iterate)):
            yield from iter_commands(cmd.body)
        elif isinstance(cmd, (Select, Update, Insert)):
            yield cmd


def iter_db_commands(txn: Transaction) -> Iterator[Command]:
    """Yield the database commands of a transaction in program order."""
    return iter_commands(txn.body)


def command_by_label(program: Program, label: str) -> Command:
    """Find a database command anywhere in ``program`` by its label."""
    for txn in program.transactions:
        for cmd in iter_db_commands(txn):
            if getattr(cmd, "label", "") == label:
                return cmd
    raise KeyError(f"no command labelled {label}")


def transaction_of_label(program: Program, label: str) -> Transaction:
    """Find the transaction containing the command labelled ``label``."""
    for txn in program.transactions:
        for cmd in iter_db_commands(txn):
            if getattr(cmd, "label", "") == label:
                return txn
    raise KeyError(f"no command labelled {label}")
