"""The database-program DSL of the paper (Figure 5).

This package provides:

- :mod:`repro.lang.ast` -- immutable AST node types for schemas,
  expressions, where clauses, commands, transactions, and programs;
- :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` -- a hand-written
  tokenizer and recursive-descent parser for the textual DSL;
- :mod:`repro.lang.printer` -- a round-trippable pretty printer;
- :mod:`repro.lang.validate` -- static well-formedness checking;
- :mod:`repro.lang.traverse` -- generic traversal and rewriting helpers.

The convenience function :func:`parse_program` turns DSL source text into
a validated :class:`repro.lang.ast.Program`.
"""

from repro.lang.ast import (
    Agg,
    Arg,
    At,
    BinOp,
    BoolOp,
    Cmp,
    Command,
    Const,
    Expr,
    If,
    Insert,
    Iterate,
    IterVar,
    Not,
    Program,
    Schema,
    Select,
    Skip,
    Transaction,
    Update,
    Uuid,
    Where,
    WhereBool,
    WhereCond,
    WhereTrue,
    STAR,
)
from repro.lang.parser import parse_program, parse_expression, parse_where
from repro.lang.printer import (
    print_program,
    print_transaction,
    print_command,
    print_expression,
    print_where,
)
from repro.lang.validate import validate_program

__all__ = [
    "Agg",
    "Arg",
    "At",
    "BinOp",
    "BoolOp",
    "Cmp",
    "Command",
    "Const",
    "Expr",
    "If",
    "Insert",
    "Iterate",
    "IterVar",
    "Not",
    "Program",
    "Schema",
    "Select",
    "Skip",
    "Transaction",
    "Update",
    "Uuid",
    "Where",
    "WhereBool",
    "WhereCond",
    "WhereTrue",
    "STAR",
    "parse_program",
    "parse_expression",
    "parse_where",
    "print_program",
    "print_transaction",
    "print_command",
    "print_expression",
    "print_where",
    "validate_program",
]
