"""Pretty printer for the DSL.

``parse_program(print_program(p))`` is structurally equal to ``p`` up to
command labels (which are regenerated deterministically by the parser);
the round-trip property is exercised by the test suite.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast

_INDENT = "  "


def print_expression(expr: ast.Expr) -> str:
    """Render an expression in surface syntax."""
    return _expr(expr, 0)


# Binding strengths for parenthesisation: higher binds tighter.
_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "cmp": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
}


def _expr(expr: ast.Expr, parent_prec: int) -> str:
    if isinstance(expr, ast.Const):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        return str(expr.value)
    if isinstance(expr, ast.Arg):
        return expr.name
    if isinstance(expr, ast.IterVar):
        return "iter"
    if isinstance(expr, ast.Uuid):
        return "uuid()"
    if isinstance(expr, ast.At):
        if expr.index == ast.Const(1):
            return f"{expr.var}.{expr.field}"
        return f"at({_expr(expr.index, 0)}, {expr.var}.{expr.field})"
    if isinstance(expr, ast.Agg):
        return f"{expr.func}({expr.var}.{expr.field})"
    if isinstance(expr, ast.Not):
        # `not` binds between `and` and comparisons; parenthesise when the
        # context binds tighter.
        text = f"not {_expr(expr.operand, 3)}"
        return f"({text})" if parent_prec > 2 else text
    if isinstance(expr, ast.BinOp):
        prec = _PRECEDENCE[expr.op]
        text = f"{_expr(expr.left, prec)} {expr.op} {_expr(expr.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.Cmp):
        prec = _PRECEDENCE["cmp"]
        text = f"{_expr(expr.left, prec + 1)} {expr.op} {_expr(expr.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    if isinstance(expr, ast.BoolOp):
        prec = _PRECEDENCE[expr.op]
        text = f"{_expr(expr.left, prec)} {expr.op} {_expr(expr.right, prec + 1)}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"not an expression: {expr!r}")


def print_where(where: ast.Where) -> str:
    """Render a where clause in surface syntax."""
    if isinstance(where, ast.WhereTrue):
        return "true"
    if isinstance(where, ast.WhereCond):
        return f"{where.field} {where.op} {_expr(where.expr, 0)}"
    if isinstance(where, ast.WhereBool):
        left = print_where(where.left)
        right = print_where(where.right)
        if where.op == "and":
            if isinstance(where.left, ast.WhereBool) and where.left.op == "or":
                left = f"({left})"
            if isinstance(where.right, ast.WhereBool) and where.right.op == "or":
                right = f"({right})"
        return f"{left} {where.op} {right}"
    raise TypeError(f"not a where clause: {where!r}")


def print_command(cmd: ast.Command, indent: int = 0, labels: bool = True) -> str:
    """Render a command; nested bodies are indented."""
    pad = _INDENT * indent
    note = ""
    if labels and getattr(cmd, "label", ""):
        note = f"  // {cmd.label}"
    if isinstance(cmd, ast.Select):
        fields = "*" if cmd.fields == ast.STAR else ", ".join(cmd.fields)
        return (
            f"{pad}{cmd.var} := select {fields} from {cmd.table} "
            f"where {print_where(cmd.where)};{note}"
        )
    if isinstance(cmd, ast.Update):
        sets = ", ".join(f"{f} = {_expr(e, 0)}" for f, e in cmd.assignments)
        return (
            f"{pad}update {cmd.table} set {sets} "
            f"where {print_where(cmd.where)};{note}"
        )
    if isinstance(cmd, ast.Insert):
        sets = ", ".join(f"{f} = {_expr(e, 0)}" for f, e in cmd.assignments)
        return f"{pad}insert into {cmd.table} values ({sets});{note}"
    if isinstance(cmd, ast.If):
        lines = [f"{pad}if ({_expr(cmd.cond, 0)}) {{"]
        lines += [print_command(c, indent + 1, labels) for c in cmd.body]
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(cmd, ast.Iterate):
        lines = [f"{pad}iterate ({_expr(cmd.count, 0)}) {{"]
        lines += [print_command(c, indent + 1, labels) for c in cmd.body]
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    if isinstance(cmd, ast.Skip):
        return f"{pad}skip;"
    raise TypeError(f"not a command: {cmd!r}")


def print_schema(schema: ast.Schema) -> str:
    lines = [f"schema {schema.name} {{"]
    refs = schema.ref_map
    for f in schema.fields:
        kind = "key" if f in schema.key else "field"
        suffix = ""
        if f in refs:
            rtable, rfield = refs[f]
            suffix = f" ref {rtable}.{rfield}"
        lines.append(f"{_INDENT}{kind} {f}{suffix};")
    lines.append("}")
    return "\n".join(lines)


def print_transaction(txn: ast.Transaction, labels: bool = True) -> str:
    prefix = "serializable " if txn.serializable else ""
    lines = [f"{prefix}txn {txn.name}({', '.join(txn.params)}) {{"]
    lines += [print_command(c, 1, labels) for c in txn.body]
    if txn.ret is not None:
        lines.append(f"{_INDENT}return {_expr(txn.ret, 0)};")
    lines.append("}")
    return "\n".join(lines)


def print_program(program: ast.Program, labels: bool = True) -> str:
    """Render a whole program (schemas first, then transactions)."""
    parts: List[str] = [print_schema(s) for s in program.schemas]
    parts += [print_transaction(t, labels) for t in program.transactions]
    return "\n\n".join(parts) + "\n"
