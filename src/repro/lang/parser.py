"""Recursive-descent parser for the database-program DSL.

Surface syntax (mirrors the paper's listings)::

    schema STUDENT {
      key st_id;
      field st_name;
      field st_em_id ref EMAIL.em_id;
      field st_co_id ref COURSE.co_id;
      field st_reg;
    }

    txn getSt(id) {
      x := select * from STUDENT where st_id = id;
      y := select em_addr from EMAIL where em_id = x.st_em_id;
      z := select co_avail from COURSE where co_id = x.st_co_id;
      return y.em_addr;
    }

Notes:

- ``x.f`` in an expression is sugar for ``at(1, x.f)``;
- bare identifiers in expressions denote transaction arguments;
- where clauses accept both ``st_id = id`` and ``this.st_id = id``;
- database commands are automatically labelled ``S1, S2, ...`` (selects),
  ``U1, ...`` (updates), ``I1, ...`` (inserts) in program order within each
  transaction, matching the paper's figure conventions.  Explicit labels
  can be given with a leading ``@name:`` marker -- not needed in practice.
- a transaction may be prefixed with ``serializable`` to pin it to
  serializable execution (used for AT-SC program variants).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import Token, tokenize


def parse_program(source: str, validate: bool = True) -> ast.Program:
    """Parse DSL source text into a :class:`~repro.lang.ast.Program`.

    When ``validate`` is true (the default) the program is also checked by
    :func:`repro.lang.validate.validate_program`.
    """
    program = _Parser(tokenize(source)).parse_program()
    if validate:
        # Imported lazily to avoid an import cycle at module load.
        from repro.lang.validate import validate_program

        validate_program(program)
    return program


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (mainly for tests and the REPL)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expr()
    parser.expect_eof()
    return expr


def parse_where(source: str) -> ast.Where:
    """Parse a standalone where clause."""
    parser = _Parser(tokenize(source))
    where = parser.parse_where_clause()
    parser.expect_eof()
    return where


class _Parser:
    """Stateful cursor over the token stream."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        tok = self.current
        return ParseError(f"{message} (found {tok.kind} {tok.value!r})", tok.line, tok.column)

    def expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_keyword(self, keyword: str) -> Token:
        if not self.current.is_keyword(keyword):
            raise self.error(f"expected keyword {keyword!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise self.error("expected identifier")
        return self.advance().value

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise self.error("expected end of input")

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self.advance()
            return True
        return False

    def accept_keyword(self, keyword: str) -> bool:
        if self.current.is_keyword(keyword):
            self.advance()
            return True
        return False

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        schemas: List[ast.Schema] = []
        txns: List[ast.Transaction] = []
        while self.current.kind != "eof":
            if self.current.is_keyword("schema"):
                schemas.append(self.parse_schema())
            elif self.current.is_keyword("txn", "serializable"):
                txns.append(self.parse_transaction())
            else:
                raise self.error("expected 'schema' or 'txn'")
        return ast.Program(schemas=tuple(schemas), transactions=tuple(txns))

    def parse_schema(self) -> ast.Schema:
        self.expect_keyword("schema")
        name = self.expect_ident()
        self.expect_symbol("{")
        fields: List[str] = []
        key: List[str] = []
        refs: List[Tuple[str, Tuple[str, str]]] = []
        while not self.accept_symbol("}"):
            if self.accept_keyword("key"):
                fname = self.expect_ident()
                fields.append(fname)
                key.append(fname)
                if self.accept_keyword("ref"):
                    rtable = self.expect_ident()
                    self.expect_symbol(".")
                    rfield = self.expect_ident()
                    refs.append((fname, (rtable, rfield)))
            elif self.accept_keyword("field"):
                fname = self.expect_ident()
                fields.append(fname)
                if self.accept_keyword("ref"):
                    rtable = self.expect_ident()
                    self.expect_symbol(".")
                    rfield = self.expect_ident()
                    refs.append((fname, (rtable, rfield)))
            else:
                raise self.error("expected 'key' or 'field' declaration")
            self.expect_symbol(";")
        return ast.Schema(name=name, fields=tuple(fields), key=tuple(key), refs=tuple(refs))

    def parse_transaction(self) -> ast.Transaction:
        serializable = self.accept_keyword("serializable")
        self.expect_keyword("txn")
        name = self.expect_ident()
        self.expect_symbol("(")
        params: List[str] = []
        if not self.current.is_symbol(")"):
            params.append(self.expect_ident())
            while self.accept_symbol(","):
                params.append(self.expect_ident())
        self.expect_symbol(")")
        self.expect_symbol("{")
        labeler = _Labeler()
        body, ret = self.parse_block_body(labeler, allow_return=True)
        return ast.Transaction(
            name=name,
            params=tuple(params),
            body=tuple(body),
            ret=ret,
            serializable=serializable,
        )

    def parse_block_body(
        self, labeler: "_Labeler", allow_return: bool
    ) -> Tuple[List[ast.Command], Optional[ast.Expr]]:
        """Parse statements until the closing ``}``; returns (body, ret)."""
        body: List[ast.Command] = []
        ret: Optional[ast.Expr] = None
        while not self.accept_symbol("}"):
            if self.current.is_keyword("return"):
                if not allow_return:
                    raise self.error("'return' only allowed at transaction top level")
                self.advance()
                ret = self.parse_expr()
                self.expect_symbol(";")
                self.expect_symbol("}")
                break
            body.append(self.parse_statement(labeler))
        return body, ret

    def parse_statement(self, labeler: "_Labeler") -> ast.Command:
        tok = self.current
        if tok.is_keyword("update"):
            return self.parse_update(labeler)
        if tok.is_keyword("insert"):
            return self.parse_insert(labeler)
        if tok.is_keyword("if"):
            return self.parse_if(labeler)
        if tok.is_keyword("iterate"):
            return self.parse_iterate(labeler)
        if tok.is_keyword("skip"):
            self.advance()
            self.expect_symbol(";")
            return ast.Skip()
        if tok.kind == "ident":
            return self.parse_select(labeler)
        raise self.error("expected a statement")

    def parse_select(self, labeler: "_Labeler") -> ast.Select:
        var = self.expect_ident()
        self.expect_symbol(":=")
        self.expect_keyword("select")
        if self.accept_symbol("*"):
            fields: object = ast.STAR
        else:
            names = [self.expect_ident()]
            while self.accept_symbol(","):
                names.append(self.expect_ident())
            fields = tuple(names)
        self.expect_keyword("from")
        table = self.expect_ident()
        self.expect_keyword("where")
        where = self.parse_where_clause()
        self.expect_symbol(";")
        return ast.Select(
            var=var, fields=fields, table=table, where=where, label=labeler.select()
        )

    def parse_update(self, labeler: "_Labeler") -> ast.Update:
        self.expect_keyword("update")
        table = self.expect_ident()
        self.expect_keyword("set")
        assignments = [self.parse_assignment()]
        while self.accept_symbol(","):
            assignments.append(self.parse_assignment())
        self.expect_keyword("where")
        where = self.parse_where_clause()
        self.expect_symbol(";")
        return ast.Update(
            table=table,
            assignments=tuple(assignments),
            where=where,
            label=labeler.update(),
        )

    def parse_insert(self, labeler: "_Labeler") -> ast.Insert:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident()
        self.expect_keyword("values")
        self.expect_symbol("(")
        assignments = [self.parse_assignment()]
        while self.accept_symbol(","):
            assignments.append(self.parse_assignment())
        self.expect_symbol(")")
        self.expect_symbol(";")
        return ast.Insert(
            table=table, assignments=tuple(assignments), label=labeler.insert()
        )

    def parse_assignment(self) -> Tuple[str, ast.Expr]:
        field = self.expect_ident()
        self.expect_symbol("=")
        return field, self.parse_expr()

    def parse_if(self, labeler: "_Labeler") -> ast.If:
        self.expect_keyword("if")
        self.expect_symbol("(")
        cond = self.parse_expr()
        self.expect_symbol(")")
        self.expect_symbol("{")
        body, _ = self.parse_block_body(labeler, allow_return=False)
        return ast.If(cond=cond, body=tuple(body))

    def parse_iterate(self, labeler: "_Labeler") -> ast.Iterate:
        self.expect_keyword("iterate")
        self.expect_symbol("(")
        count = self.parse_expr()
        self.expect_symbol(")")
        self.expect_symbol("{")
        body, _ = self.parse_block_body(labeler, allow_return=False)
        return ast.Iterate(count=count, body=tuple(body))

    # -- where clauses -------------------------------------------------------

    def parse_where_clause(self) -> ast.Where:
        return self.parse_where_or()

    def parse_where_or(self) -> ast.Where:
        left = self.parse_where_and()
        while self.accept_keyword("or"):
            right = self.parse_where_and()
            left = ast.WhereBool("or", left, right)
        return left

    def parse_where_and(self) -> ast.Where:
        left = self.parse_where_atom()
        while self.accept_keyword("and"):
            right = self.parse_where_atom()
            left = ast.WhereBool("and", left, right)
        return left

    def parse_where_atom(self) -> ast.Where:
        if self.accept_keyword("true"):
            return ast.WhereTrue()
        if self.accept_symbol("("):
            inner = self.parse_where_or()
            self.expect_symbol(")")
            return inner
        if self.accept_keyword("this"):
            self.expect_symbol(".")
        field = self.expect_ident()
        op = self.parse_cmp_op()
        # The condition's right-hand side stops at the arithmetic level so
        # that `and`/`or` bind as clause connectives, not expression ones.
        expr = self.parse_add()
        return ast.WhereCond(field=field, op=op, expr=expr)

    def parse_cmp_op(self) -> str:
        tok = self.current
        if tok.is_symbol("=", "==", "<", "<=", ">", ">=", "!="):
            self.advance()
            return "=" if tok.value == "==" else tok.value
        raise self.error("expected comparison operator")

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = ast.BoolOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = ast.BoolOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept_keyword("not"):
            return ast.Not(self.parse_not())
        return self.parse_cmp()

    def parse_cmp(self) -> ast.Expr:
        left = self.parse_add()
        tok = self.current
        if tok.is_symbol("=", "==", "<", "<=", ">", ">=", "!="):
            self.advance()
            op = "=" if tok.value == "==" else tok.value
            return ast.Cmp(op, left, self.parse_add())
        return left

    def parse_add(self) -> ast.Expr:
        left = self.parse_mul()
        while self.current.is_symbol("+", "-"):
            op = self.advance().value
            left = ast.BinOp(op, left, self.parse_mul())
        return left

    def parse_mul(self) -> ast.Expr:
        left = self.parse_unary()
        while self.current.is_symbol("*", "/"):
            op = self.advance().value
            left = ast.BinOp(op, left, self.parse_unary())
        return left

    def parse_unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            return ast.BinOp("-", ast.Const(0), self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.Const(int(tok.value))
        if tok.kind == "string":
            self.advance()
            return ast.Const(tok.value)
        if tok.is_keyword("true"):
            self.advance()
            return ast.Const(True)
        if tok.is_keyword("false"):
            self.advance()
            return ast.Const(False)
        if tok.is_keyword("iter"):
            self.advance()
            return ast.IterVar()
        if tok.is_keyword("uuid"):
            self.advance()
            self.expect_symbol("(")
            self.expect_symbol(")")
            return ast.Uuid()
        if tok.is_keyword("sum", "min", "max", "count", "any"):
            func = self.advance().value
            self.expect_symbol("(")
            var = self.expect_ident()
            self.expect_symbol(".")
            field = self.expect_ident()
            self.expect_symbol(")")
            return ast.Agg(func, var, field)
        if tok.is_keyword("at"):
            self.advance()
            self.expect_symbol("(")
            index = self.parse_expr()
            self.expect_symbol(",")
            var = self.expect_ident()
            self.expect_symbol(".")
            field = self.expect_ident()
            self.expect_symbol(")")
            return ast.At(index, var, field)
        if tok.is_symbol("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_symbol(")")
            return inner
        if tok.kind == "ident":
            name = self.advance().value
            if self.accept_symbol("."):
                field = self.expect_ident()
                return ast.At(ast.Const(1), name, field)
            return ast.Arg(name)
        raise self.error("expected an expression")


class _Labeler:
    """Assigns the paper-style S/U/I labels within one transaction."""

    def __init__(self) -> None:
        self.selects = 0
        self.updates = 0
        self.inserts = 0

    def select(self) -> str:
        self.selects += 1
        return f"S{self.selects}"

    def update(self) -> str:
        self.updates += 1
        return f"U{self.updates}"

    def insert(self) -> str:
        self.inserts += 1
        return f"I{self.inserts}"
