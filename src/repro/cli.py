"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Three subcommands mirror the workflows the library is used for:

- ``repro table1`` -- regenerate the paper's Table 1 (optionally a
  subset of benchmarks), with ``--plans`` provenance and ``--json``
  machine output;
- ``repro repair`` -- repair one benchmark or a DSL file; ``--plan-out``
  saves the rewrite plan as JSON, ``--plan-in`` *replays* a saved plan
  instead of searching (no oracle work);
- ``repro bench`` -- time the repair search per benchmark under the
  serial and incremental oracle strategies.

Every subcommand exits non-zero on failure and prints plain text
(``repro.exp.reporting``) so output diffs cleanly in CI logs.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.errors import ReproError

STRATEGIES = ("serial", "cached", "parallel", "incremental", "auto")
SEARCHES = ("greedy", "beam", "random")


def _pick_benchmarks(names: Sequence[str]) -> List:
    if not names:
        return list(ALL_BENCHMARKS)
    picked = []
    for name in names:
        if name not in BY_NAME:
            known = ", ".join(sorted(BY_NAME))
            raise SystemExit(f"unknown benchmark {name!r} (known: {known})")
        picked.append(BY_NAME[name])
    return picked


def _load_program(args) -> "tuple":
    """(label, program) from --benchmark or --file."""
    from repro.lang import parse_program

    if args.benchmark:
        bench = _pick_benchmarks([args.benchmark])[0]
        return bench.name, bench.program()
    with open(args.file) as fh:
        return args.file, parse_program(fh.read())


# ---------------------------------------------------------------------------
# table1
# ---------------------------------------------------------------------------


def cmd_table1(args) -> int:
    from repro.exp import format_plan, format_table, run_table1

    benches = _pick_benchmarks(args.benchmark)
    rows = run_table1(benches, strategy=args.strategy, search=args.search)
    headers = ["Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time"]
    print(format_table(headers, [row.columns() for row in rows]))
    if args.plans:
        print()
        for row in rows:
            print(format_plan(f"{row.name} plan", row.plan))
    if args.json:
        payload = {
            "strategy": args.strategy,
            "search": args.search,
            "rows": [
                {
                    "name": row.name,
                    "txns": row.txns,
                    "tables_before": row.tables_before,
                    "tables_after": row.tables_after,
                    "ec": row.ec,
                    "at": row.at,
                    "cc": row.cc,
                    "rr": row.rr,
                    "time_s": round(row.time_s, 4),
                    "repair_seconds": round(row.repair_seconds, 4),
                    "provenance": row.plan_provenance(),
                }
                for row in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------


def cmd_repair(args) -> int:
    from repro.exp import format_plan
    from repro.lang import print_program
    from repro.repair import RewritePlan, repair, replay_plan

    label, program = _load_program(args)
    if args.plan_in:
        with open(args.plan_in) as fh:
            plan = RewritePlan.loads(fh.read())
        report = replay_plan(program, plan)
        print(f"replayed {len(plan)}-step plan from {args.plan_in} on {label}")
    else:
        report = repair(program, strategy=args.strategy, search=args.search)
        print(report.summary())
    print(format_plan("plan", report.plan))
    if args.plan_out:
        with open(args.plan_out, "w") as fh:
            fh.write(report.plan.dumps())
            fh.write("\n")
        print(f"wrote plan to {args.plan_out}")
    if args.print_program:
        print()
        print(print_program(report.repaired_program))
    return 0


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------


def cmd_bench(args) -> int:
    from repro.exp import format_table, run_table1_row

    benches = _pick_benchmarks(args.benchmark)
    if args.corpus == "small":
        small = {"TPC-C", "SmallBank", "Courseware"}
        benches = [b for b in benches if b.name in small]
    rows = []
    for bench in benches:
        serial_row = run_table1_row(bench, search=args.search)
        incremental_row = run_table1_row(
            bench, strategy="incremental", search=args.search
        )
        rows.append((bench.name, serial_row, incremental_row))

    def fmt(name, serial_row, incremental_row):
        speedup = (
            serial_row.repair_seconds / incremental_row.repair_seconds
            if incremental_row.repair_seconds
            else 0.0
        )
        return [
            name,
            f"{serial_row.repair_seconds:.3f}",
            f"{incremental_row.repair_seconds:.3f}",
            f"{speedup:.2f}x",
            str(len(incremental_row.plan)),
        ]

    headers = [
        "Benchmark",
        "repair_s (serial)",
        "repair_s (incremental)",
        "speedup",
        "plan steps",
    ]
    print(format_table(headers, [fmt(*row) for row in rows]))
    if args.json:
        payload = {
            "search": args.search,
            "rows": [
                {
                    "name": name,
                    "repair_seconds_serial": round(s.repair_seconds, 4),
                    "repair_seconds_incremental": round(i.repair_seconds, 4),
                    "plan_steps": len(i.plan),
                }
                for name, s, i in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atropos (PLDI 2021) reproduction: anomaly detection, "
        "plan-based repair, and experiment drivers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    t1.add_argument(
        "--benchmark",
        action="append",
        default=[],
        help="restrict to one benchmark (repeatable; default: all)",
    )
    t1.add_argument("--strategy", choices=STRATEGIES, default="serial")
    t1.add_argument("--search", choices=SEARCHES, default="greedy")
    t1.add_argument(
        "--plans", action="store_true", help="print per-row plan provenance"
    )
    t1.add_argument("--json", metavar="FILE", help="also write rows+plans JSON")
    t1.set_defaults(func=cmd_table1)

    rp = sub.add_parser("repair", help="repair one benchmark or DSL file")
    source = rp.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark", help="corpus benchmark name")
    source.add_argument("--file", help="path to a DSL program")
    rp.add_argument("--strategy", choices=STRATEGIES, default="serial")
    rp.add_argument("--search", choices=SEARCHES, default="greedy")
    rp.add_argument(
        "--plan-out", metavar="FILE", help="write the rewrite plan as JSON"
    )
    rp.add_argument(
        "--plan-in",
        metavar="FILE",
        help="replay a saved plan instead of searching (no oracle work)",
    )
    rp.add_argument(
        "--print-program",
        action="store_true",
        help="print the repaired program",
    )
    rp.set_defaults(func=cmd_repair)

    be = sub.add_parser(
        "bench", help="time the repair search per benchmark (serial vs incremental)"
    )
    be.add_argument(
        "--benchmark",
        action="append",
        default=[],
        help="restrict to one benchmark (repeatable; default: all)",
    )
    be.add_argument(
        "--corpus",
        choices=("small", "full"),
        default="full",
        help="'small' = the CI smoke subset",
    )
    be.add_argument("--search", choices=SEARCHES, default="greedy")
    be.add_argument("--json", metavar="FILE", help="write timings as JSON")
    be.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
