"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

Three subcommands mirror the workflows the library is used for:

- ``repro table1`` -- regenerate the paper's Table 1 (optionally a
  subset of benchmarks), with ``--plans`` provenance and ``--json``
  machine output;
- ``repro repair`` -- repair one benchmark or a DSL file; ``--plan-out``
  saves the rewrite plan as JSON, ``--plan-in`` *replays* a saved plan
  instead of searching (no oracle work);
- ``repro bench`` -- time the repair search per benchmark: the serial
  seed oracle against a warm strategy (incremental by default,
  ``--strategy parallel-incremental`` for the sharded worker pool).

``--cache-dir DIR`` (on every subcommand that runs the oracle) backs
the memo cache with a persistent sqlite store, so repeated invocations
-- separate processes included -- warm-start from earlier outcomes; the
store self-invalidates when the encoding's source changes.

Every subcommand exits non-zero on failure and prints plain text
(``repro.exp.reporting``) so output diffs cleanly in CI logs.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import List, Optional, Sequence

from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.errors import ReproError

STRATEGIES = (
    "serial",
    "cached",
    "parallel",
    "incremental",
    "parallel-incremental",
    "auto",
)
SEARCHES = ("greedy", "beam", "random")
BENCH_STRATEGIES = ("incremental", "parallel-incremental", "auto")


def _pick_benchmarks(names: Sequence[str]) -> List:
    if not names:
        return list(ALL_BENCHMARKS)
    picked = []
    for name in names:
        if name not in BY_NAME:
            known = ", ".join(sorted(BY_NAME))
            raise SystemExit(f"unknown benchmark {name!r} (known: {known})")
        picked.append(BY_NAME[name])
    return picked


def _load_program(args) -> "tuple":
    """(label, program) from --benchmark or --file."""
    from repro.lang import parse_program

    if args.benchmark:
        bench = _pick_benchmarks([args.benchmark])[0]
        return bench.name, bench.program()
    with open(args.file) as fh:
        return args.file, parse_program(fh.read())


# ---------------------------------------------------------------------------
# table1
# ---------------------------------------------------------------------------


@contextmanager
def _open_cache(cache_dir: Optional[str]):
    """Yield a persistent query cache for ``cache_dir`` (None without
    one), closing it on exit -- the one cache lifecycle every
    subcommand shares."""
    if not cache_dir:
        yield None
        return
    from repro.analysis.pipeline import make_query_cache

    cache = make_query_cache(cache_dir)
    try:
        yield cache
    finally:
        cache.close()


def _caching_strategy(args) -> str:
    """The oracle strategy honouring ``--cache-dir``/``--workers``: the
    seed serial loop has no cache and no pool, so either flag silently
    doing nothing under the *default* strategy would betray its
    contract -- upgrade to "auto" and say so.  An explicit
    ``--strategy serial`` (the argparse default is None, so the two are
    distinguishable) is respected; the flags are then genuinely unused
    and say so too."""
    pipeline_flags = [
        flag
        for flag, value in (
            ("--cache-dir", args.cache_dir),
            ("--workers", args.workers),
        )
        if value
    ]
    if pipeline_flags:
        flags = "/".join(pipeline_flags)
        if args.strategy is None:
            print(
                f"note: {flags} needs a caching strategy; "
                "using --strategy auto (pass --strategy to override)"
            )
            return "auto"
        if args.strategy == "serial":
            print(
                "note: --strategy serial runs the uncached, single-"
                f"threaded seed loop; {flags} ignored"
            )
    return args.strategy or "serial"


def _cache_summary(cache) -> str:
    return (
        f"cache: {cache.hits} hits / {cache.misses} misses "
        f"(hit rate {cache.hit_rate:.1%}, "
        f"{getattr(cache, 'persistent_hits', 0)} from disk, "
        f"{len(cache)} entries)"
    )


def cmd_table1(args) -> int:
    from repro.exp import format_plan, format_table, run_table1

    benches = _pick_benchmarks(args.benchmark)
    strategy = _caching_strategy(args)
    strategy_name = strategy
    if args.workers and strategy != "serial":
        from repro.analysis.pipeline import resolve_strategy

        strategy = resolve_strategy(strategy, max_workers=args.workers)
        strategy_name = strategy.name
    with _open_cache(args.cache_dir) as cache:
        rows = run_table1(
            benches, strategy=strategy, search=args.search, cache=cache
        )
        headers = [
            "Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time",
        ]
        print(format_table(headers, [row.columns() for row in rows]))
        if cache is not None:
            print(_cache_summary(cache))
    if args.plans:
        print()
        for row in rows:
            print(format_plan(f"{row.name} plan", row.plan))
    if args.json:
        payload = {
            "strategy": strategy_name,
            "search": args.search,
            "rows": [
                {
                    "name": row.name,
                    "txns": row.txns,
                    "tables_before": row.tables_before,
                    "tables_after": row.tables_after,
                    "ec": row.ec,
                    "at": row.at,
                    "cc": row.cc,
                    "rr": row.rr,
                    "time_s": round(row.time_s, 4),
                    "repair_seconds": round(row.repair_seconds, 4),
                    "provenance": row.plan_provenance(),
                }
                for row in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------


def cmd_repair(args) -> int:
    from repro.exp import format_plan
    from repro.lang import print_program
    from repro.repair import RewritePlan, repair, replay_plan

    label, program = _load_program(args)
    if args.plan_in:
        with open(args.plan_in) as fh:
            plan = RewritePlan.loads(fh.read())
        report = replay_plan(program, plan)
        print(f"replayed {len(plan)}-step plan from {args.plan_in} on {label}")
    else:
        with _open_cache(args.cache_dir) as cache:
            report = repair(
                program,
                strategy=_caching_strategy(args),
                search=args.search,
                cache=cache,
                max_workers=args.workers,
            )
            print(report.summary())
            if cache is not None:
                print(_cache_summary(cache))
    print(format_plan("plan", report.plan))
    if args.plan_out:
        with open(args.plan_out, "w") as fh:
            fh.write(report.plan.dumps())
            fh.write("\n")
        print(f"wrote plan to {args.plan_out}")
    if args.print_program:
        print()
        print(print_program(report.repaired_program))
    return 0


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------


def cmd_bench(args) -> int:
    from repro.analysis.pipeline import make_query_cache, resolve_strategy
    from repro.exp import run_table1_row

    benches = _pick_benchmarks(args.benchmark)
    if args.corpus == "small":
        small = {"TPC-C", "SmallBank", "Courseware"}
        benches = [b for b in benches if b.name in small]
    cache = make_query_cache(args.cache_dir)
    runner = resolve_strategy(args.strategy, max_workers=args.workers)
    rows = []
    try:
        for bench in benches:
            serial_row = run_table1_row(bench, search=args.search)
            warm_row = run_table1_row(
                bench, strategy=runner, cache=cache, search=args.search
            )
            rows.append((bench.name, serial_row, warm_row))
        return _report_bench(args, runner, cache, rows)
    finally:
        runner.close()
        cache.close()


def _report_bench(args, runner, cache, rows) -> int:
    from repro.exp import format_table

    def fmt(name, serial_row, warm_row):
        speedup = (
            serial_row.repair_seconds / warm_row.repair_seconds
            if warm_row.repair_seconds
            else 0.0
        )
        return [
            name,
            f"{serial_row.repair_seconds:.3f}",
            f"{warm_row.repair_seconds:.3f}",
            f"{speedup:.2f}x",
            str(len(warm_row.plan)),
        ]

    headers = [
        "Benchmark",
        "repair_s (serial)",
        f"repair_s ({runner.name})",
        "speedup",
        "plan steps",
    ]
    print(format_table(headers, [fmt(*row) for row in rows]))
    print(_cache_summary(cache))
    if args.json:
        payload = {
            "search": args.search,
            "strategy": runner.name,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
                "persistent_hits": getattr(cache, "persistent_hits", 0),
                "entries": len(cache),
            },
            "rows": [
                {
                    "name": name,
                    # Counts come from the *warm* (cached-strategy) row,
                    # so cold-vs-warm row comparisons actually exercise
                    # the cached path rather than the serial control.
                    "ec": w.ec,
                    "at": w.at,
                    "repair_seconds_serial": round(s.repair_seconds, 4),
                    "repair_seconds_warm": round(w.repair_seconds, 4),
                    "plan_steps": len(w.plan),
                }
                for name, s, w in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atropos (PLDI 2021) reproduction: anomaly detection, "
        "plan-based repair, and experiment drivers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    t1.add_argument(
        "--benchmark",
        action="append",
        default=[],
        help="restrict to one benchmark (repeatable; default: all)",
    )
    t1.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default=None,  # None = "serial", unless --cache-dir upgrades to "auto"
    )
    t1.add_argument("--search", choices=SEARCHES, default="greedy")
    t1.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist oracle query outcomes under DIR (warm-starts reruns)",
    )
    t1.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker processes for the pool strategies (default: cpu count)",
    )
    t1.add_argument(
        "--plans", action="store_true", help="print per-row plan provenance"
    )
    t1.add_argument("--json", metavar="FILE", help="also write rows+plans JSON")
    t1.set_defaults(func=cmd_table1)

    rp = sub.add_parser("repair", help="repair one benchmark or DSL file")
    source = rp.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark", help="corpus benchmark name")
    source.add_argument("--file", help="path to a DSL program")
    rp.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default=None,  # None = "serial", unless --cache-dir upgrades to "auto"
    )
    rp.add_argument("--search", choices=SEARCHES, default="greedy")
    rp.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist oracle query outcomes under DIR (warm-starts reruns)",
    )
    rp.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker processes for the pool strategies (default: cpu count)",
    )
    rp.add_argument(
        "--plan-out", metavar="FILE", help="write the rewrite plan as JSON"
    )
    rp.add_argument(
        "--plan-in",
        metavar="FILE",
        help="replay a saved plan instead of searching (no oracle work)",
    )
    rp.add_argument(
        "--print-program",
        action="store_true",
        help="print the repaired program",
    )
    rp.set_defaults(func=cmd_repair)

    be = sub.add_parser(
        "bench",
        help="time the repair search per benchmark (serial vs a warm strategy)",
    )
    be.add_argument(
        "--benchmark",
        action="append",
        default=[],
        help="restrict to one benchmark (repeatable; default: all)",
    )
    be.add_argument(
        "--corpus",
        choices=("small", "full"),
        default="full",
        help="'small' = the CI smoke subset",
    )
    be.add_argument(
        "--strategy",
        choices=BENCH_STRATEGIES,
        default="incremental",
        help="the warm oracle strategy timed against the serial seed",
    )
    be.add_argument("--search", choices=SEARCHES, default="greedy")
    be.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist oracle query outcomes under DIR; a second run "
        "warm-starts and reports a higher cache hit rate",
    )
    be.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker processes for the pool strategies (default: cpu count)",
    )
    be.add_argument("--json", metavar="FILE", help="write timings as JSON")
    be.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
