"""Command-line interface: ``python -m repro`` (or the ``repro`` script).

A thin client of :mod:`repro.api` -- every subcommand builds one
:class:`~repro.api.Workspace` from its flags and goes through the
façade, so the CLI, the HTTP service, and direct library calls are the
same code path by construction:

- ``repro table1`` -- regenerate the paper's Table 1 (optionally a
  subset of benchmarks), with ``--plans`` provenance and ``--json``
  machine output;
- ``repro repair`` -- repair one benchmark or a DSL file; ``--plan-out``
  saves the rewrite plan as JSON, ``--plan-in`` *replays* a saved plan
  instead of searching (no oracle work);
- ``repro bench`` -- time the repair search per benchmark: the serial
  seed oracle against a warm strategy (incremental by default,
  ``--strategy parallel-incremental`` for the sharded worker pool);
- ``repro serve`` -- run the JSON-over-HTTP service
  (:mod:`repro.service`): a durable sqlite job queue (``--job-db``)
  drained by ``--workers`` N worker processes, with admission control
  (``--max-queue-depth``, ``--rate-limit``) and graceful SIGTERM drain;
- ``repro chaos`` -- one seeded fault-injection experiment against an
  in-process service (``repro.service.chaos``): inject faults, check
  the no-lost-jobs / all-terminal / results-unchanged gates;
- ``repro schemas`` -- dump (or ``--check``) the versioned wire schemas
  against the committed ``schemas/`` goldens.

``--strategy`` contract (see :func:`repro.api.requested_strategy`): the
default is the serial seed loop; passing ``--cache-dir``/``--workers``
without a strategy upgrades to ``auto`` with a note, and an *explicit*
``--strategy serial`` is respected -- the flags are then genuinely
unused: no cache is opened, no pool is built, and no cache summary is
printed.

Every subcommand exits non-zero on failure and prints plain text
(``repro.exp.reporting``) so output diffs cleanly in CI logs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.api import SEARCHES, STRATEGIES
from repro.corpus import ALL_BENCHMARKS, BY_NAME
from repro.errors import ReproError

BENCH_STRATEGIES = ("incremental", "parallel-incremental", "auto")


def _pick_benchmarks(names: Sequence[str]) -> List:
    if not names:
        return list(ALL_BENCHMARKS)
    picked = []
    for name in names:
        if name not in BY_NAME:
            known = ", ".join(sorted(BY_NAME))
            raise SystemExit(f"unknown benchmark {name!r} (known: {known})")
        picked.append(BY_NAME[name])
    return picked


def _resolved_strategy(args) -> str:
    """Apply the documented --strategy/--cache-dir/--workers contract,
    printing the note when a flag changed or lost its meaning."""
    from repro.api import requested_strategy

    strategy, note = requested_strategy(
        args.strategy, args.cache_dir, args.workers
    )
    if note:
        print(note)
    return strategy


def _workspace(args, strategy: str):
    """One workspace per invocation, honouring the strategy contract:
    under an (explicit) serial strategy no cache is opened and no pool
    is built -- the flags were already declared unused."""
    from repro.api import Workspace

    return Workspace(
        strategy=strategy,
        cache_dir=args.cache_dir if strategy != "serial" else None,
        max_workers=args.workers,
        search=getattr(args, "search", "greedy"),
    )


def _cache_summary(cache) -> str:
    return (
        f"cache: {cache.hits} hits / {cache.misses} misses "
        f"(hit rate {cache.hit_rate:.1%}, "
        f"{getattr(cache, 'persistent_hits', 0)} from disk, "
        f"{len(cache)} entries)"
    )


def _maybe_cache_summary(args, workspace) -> None:
    if args.cache_dir and workspace.cache is not None:
        print(_cache_summary(workspace.cache))


# ---------------------------------------------------------------------------
# table1
# ---------------------------------------------------------------------------


def cmd_table1(args) -> int:
    from repro.exp import format_plan, format_table, run_table1

    benches = _pick_benchmarks(args.benchmark)
    strategy = _resolved_strategy(args)
    with _workspace(args, strategy) as ws:
        rows = run_table1(benches, search=args.search, workspace=ws)
        headers = [
            "Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time",
        ]
        print(format_table(headers, [row.columns() for row in rows]))
        _maybe_cache_summary(args, ws)
        strategy_name = ws.strategy_name
    if args.plans:
        print()
        for row in rows:
            print(format_plan(f"{row.name} plan", row.plan))
    if args.json:
        payload = {
            "strategy": strategy_name,
            "search": args.search,
            "rows": [
                {
                    "name": row.name,
                    "txns": row.txns,
                    "tables_before": row.tables_before,
                    "tables_after": row.tables_after,
                    "ec": row.ec,
                    "at": row.at,
                    "cc": row.cc,
                    "rr": row.rr,
                    "time_s": round(row.time_s, 4),
                    "repair_seconds": round(row.repair_seconds, 4),
                    "provenance": row.plan_provenance(),
                }
                for row in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------


def _repair_request(args, plan: Optional[dict]):
    """(label, RepairRequest) from --benchmark or --file."""
    from repro.api import RepairRequest

    if args.benchmark:
        bench = _pick_benchmarks([args.benchmark])[0]
        return bench.name, RepairRequest(
            benchmark=bench.name, search=args.search, plan=plan
        )
    with open(args.file) as fh:
        return args.file, RepairRequest(
            source=fh.read(), search=args.search, plan=plan
        )


def _repair_summary(result) -> str:
    """Plain-text summary of a wire :class:`~repro.api.RepairResult`
    (mirrors :meth:`repro.repair.engine.RepairReport.summary`)."""
    initial = len(result.initial_pairs)
    residual = len(result.residual_pairs)
    ratio = (initial - residual) / initial if initial else 1.0
    lines = [
        f"anomalous pairs: {initial} -> {residual} ({ratio:.0%} repaired)",
        f"tables: {result.tables_before} -> {result.tables_after}",
        f"time: {result.elapsed_seconds:.2f}s",
    ]
    for outcome in result.outcomes:
        lines.append(f"  [{outcome.action}] {outcome.pair.describe()}")
    return "\n".join(lines)


def cmd_repair(args) -> int:
    from repro.exp import format_plan
    from repro.repair import RewritePlan

    plan_doc = None
    if args.plan_in:
        with open(args.plan_in) as fh:
            plan_doc = json.load(fh)
        ignored = [
            flag
            for flag, value in (
                ("--strategy", args.strategy),
                ("--cache-dir", args.cache_dir),
                ("--workers", args.workers),
            )
            if value
        ]
        if ignored:
            print(
                "note: --plan-in replays the saved plan without oracle "
                f"work; {'/'.join(ignored)} ignored"
            )
    label, request = _repair_request(args, plan_doc)
    strategy = "serial" if args.plan_in else _resolved_strategy(args)
    with _workspace(args, strategy) as ws:
        result = ws.repair(request)
        if args.plan_in:
            steps = len(result.plan.get("steps", []))
            print(f"replayed {steps}-step plan from {args.plan_in} on {label}")
        else:
            print(_repair_summary(result))
            _maybe_cache_summary(args, ws)
    print(format_plan("plan", RewritePlan.from_json(result.plan)))
    if args.plan_out:
        with open(args.plan_out, "w") as fh:
            json.dump(result.plan, fh, indent=2)
            fh.write("\n")
        print(f"wrote plan to {args.plan_out}")
    if args.print_program:
        print()
        print(result.repaired_program)
    return 0


# ---------------------------------------------------------------------------
# protect (live repair)
# ---------------------------------------------------------------------------


def cmd_protect(args) -> int:
    from repro.api import LiveProtectRequest, Workspace

    plan_doc = None
    if args.plan_in:
        with open(args.plan_in) as fh:
            plan_doc = json.load(fh)
    request = LiveProtectRequest(
        benchmark=args.benchmark,
        plan=plan_doc,
        samples=args.samples,
        seed=args.seed,
        scale=args.scale,
        measure=args.measure,
        clients=args.clients,
    )
    with Workspace(strategy="serial") as ws:
        result = ws.protect(request)
    source = f"plan from {args.plan_in}" if args.plan_in else "own repair plan"
    print(
        f"{result.benchmark} ({source}): {result.rules} rule(s), "
        f"{result.identity_rules} identity, "
        f"{result.unsupported} unsupported step(s)"
    )
    for step in result.unsupported_steps:
        kind = step.get("step", {}).get("step", "?")
        print(f"  [unsupported] {kind}: {step.get('reason', '')}")
    counts = result.anomalies
    print(
        "serial fidelity vs static repair: "
        + ("match" if result.serial_match else "MISMATCH")
    )
    print(
        f"anomalies over {result.samples} weak replays: "
        f"original {counts['original']['anomalies']}, "
        f"static {counts['static']['anomalies']}, "
        f"target {counts['target']['anomalies']}, "
        f"live {counts['live']['anomalies']} -> verdict "
        + ("agrees" if result.verdict_match else "DISAGREES")
    )
    if result.overhead is not None:
        o = result.overhead
        print(
            f"overhead: predicted {o['predicted_throughput']:.1f} txn/s, "
            f"live {o['live_throughput']:.1f} txn/s "
            f"(ratio {o['overhead_ratio']:.3f})"
        )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote report to {args.report}")
    if result.passed:
        print("live protection: PASS")
        return 0
    print("live protection: FAIL", file=sys.stderr)
    return 1


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------


def cmd_bench(args) -> int:
    from repro.api import Workspace
    from repro.exp import run_table1_row

    benches = _pick_benchmarks(args.benchmark)
    if args.corpus == "small":
        small = {"TPC-C", "SmallBank", "Courseware"}
        benches = [b for b in benches if b.name in small]
    rows = []
    with Workspace(strategy="serial") as serial_ws, Workspace(
        strategy=args.strategy,
        cache_dir=args.cache_dir,
        max_workers=args.workers,
    ) as warm_ws:
        for bench in benches:
            serial_row = run_table1_row(
                bench, search=args.search, workspace=serial_ws
            )
            warm_row = run_table1_row(
                bench, search=args.search, workspace=warm_ws
            )
            rows.append((bench.name, serial_row, warm_row))
        return _report_bench(args, warm_ws, rows)


def _report_bench(args, warm_ws, rows) -> int:
    from repro.exp import format_table

    cache = warm_ws.cache

    def fmt(name, serial_row, warm_row):
        speedup = (
            serial_row.repair_seconds / warm_row.repair_seconds
            if warm_row.repair_seconds
            else 0.0
        )
        return [
            name,
            f"{serial_row.repair_seconds:.3f}",
            f"{warm_row.repair_seconds:.3f}",
            f"{speedup:.2f}x",
            str(len(warm_row.plan)),
        ]

    headers = [
        "Benchmark",
        "repair_s (serial)",
        f"repair_s ({warm_ws.strategy_name})",
        "speedup",
        "plan steps",
    ]
    print(format_table(headers, [fmt(*row) for row in rows]))
    print(_cache_summary(cache))
    if args.json:
        payload = {
            "search": args.search,
            "strategy": warm_ws.strategy_name,
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 4),
                "persistent_hits": getattr(cache, "persistent_hits", 0),
                "entries": len(cache),
            },
            "rows": [
                {
                    "name": name,
                    # Counts come from the *warm* (cached-strategy) row,
                    # so cold-vs-warm row comparisons actually exercise
                    # the cached path rather than the serial control.
                    "ec": w.ec,
                    "at": w.at,
                    "repair_seconds_serial": round(s.repair_seconds, 4),
                    "repair_seconds_warm": round(w.repair_seconds, 4),
                    "plan_steps": len(w.plan),
                }
                for name, s, w in rows
            ],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------


def cmd_serve(args) -> int:
    from repro.api import Workspace, WorkspaceConfig, requested_strategy
    from repro.service import serve

    if args.fail:
        from repro import faults

        spec = args.fail
        if os.path.exists(spec):
            with open(spec) as fh:
                spec = fh.read()
        plan = faults.FaultPlan.from_spec(spec)
        # Active in this process (inline runner, store, event streams)
        # and exported so spawned worker processes re-arm it -- crash
        # actions included -- at worker_main boot.
        faults.activate(plan)
        os.environ[faults.ENV_VAR] = plan.to_spec()
        print(
            f"fault plan active: seed {plan.seed}, "
            f"{len(plan.rules)} rule(s)"
        )

    # A server exists to stay warm: the implicit default is the fast
    # auto strategy (no upgrade note needed -- the flags are honoured).
    # An explicit --strategy (serial included) goes through the same
    # contract as every other subcommand, notes included.
    if args.strategy is None:
        strategy = "auto"
    else:
        strategy, note = requested_strategy(
            args.strategy, args.cache_dir, args.strategy_workers
        )
        if note:
            print(note)
    cache_dir = args.cache_dir if strategy != "serial" else None
    # Worker processes get the same recipe the server workspace uses
    # (WorkspaceConfig.for_worker gives each its own cache subdir).
    worker_config = WorkspaceConfig(
        strategy=strategy,
        cache_dir=cache_dir,
        max_workers=args.strategy_workers,
    )
    tenant_weights = {}
    for spec in args.tenant_weight or []:
        name, sep, weight = spec.partition("=")
        if not sep or not name:
            print(
                f"--tenant-weight wants NAME=W, got {spec!r}",
                file=sys.stderr,
            )
            return 2
        try:
            tenant_weights[name] = float(weight)
        except ValueError:
            print(
                f"--tenant-weight {name}: {weight!r} is not a number",
                file=sys.stderr,
            )
            return 2
    with Workspace(
        strategy=strategy,
        cache_dir=cache_dir,
        max_workers=args.strategy_workers,
    ) as ws:
        serve(
            ws,
            host=args.host,
            port=args.port,
            quiet=args.quiet,
            workers=args.workers,
            worker_config=worker_config,
            job_db=args.job_db,
            max_queue_depth=args.max_queue_depth,
            rate_limit=args.rate_limit,
            max_request_bytes=args.max_request_bytes,
            drain_timeout=args.drain_timeout,
            tenant_weights=tenant_weights,
            max_queued_per_tenant=args.max_queued_per_tenant,
            max_running_per_tenant=args.max_running_per_tenant,
        )
    return 0


# ---------------------------------------------------------------------------
# chaos
# ---------------------------------------------------------------------------


def cmd_chaos(args) -> int:
    from repro.service import run_scenario

    if args.scenario == "tenant-isolation":
        report = run_scenario(
            args.scenario,
            seed=args.seed,
            aggressor_jobs=args.aggressor_jobs,
            victim_jobs=args.victim_jobs,
            workers=args.workers,
        )
        print(
            f"tenant isolation seed {report['seed']}: "
            f"{report['aggressor_jobs']} aggressor + "
            f"{report['victim_jobs']} victim jobs, victim p99 "
            f"{report['contended_p99_s']}s vs solo {report['solo_p99_s']}s "
            f"(threshold {report['threshold_s']}s)"
        )
    else:
        report = run_scenario(
            args.scenario,
            seed=args.seed,
            jobs=args.jobs,
            workers=args.workers,
            log_path=args.log,
        )
        fired = report["faults_fired"]
        print(
            f"chaos seed {report['seed']}: {report['jobs_submitted']} jobs, "
            f"{fired} fault(s) fired, "
            f"{report['cache_quarantined']} cache quarantine(s), "
            f"cancel probe -> {report['cancel_status']}"
        )
    for violation in report["violations"]:
        print(f"GATE VIOLATION: {violation}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if report["ok"]:
        print("all gates passed")
        return 0
    return 1


# ---------------------------------------------------------------------------
# schemas
# ---------------------------------------------------------------------------


def cmd_schemas(args) -> int:
    from repro.api import check_schemas, dump_schemas

    if args.check:
        problems = check_schemas(args.out)
        if problems:
            for problem in problems:
                print(f"schema drift: {problem}", file=sys.stderr)
            return 1
        print(f"schemas under {args.out} match the live wire types")
        return 0
    written = dump_schemas(args.out)
    print(f"wrote {len(written)} schema documents to {args.out}")
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def _oracle_flags(parser, strategies=STRATEGIES, default=None) -> None:
    parser.add_argument(
        "--strategy",
        choices=strategies,
        # None = "serial", unless --cache-dir/--workers upgrade to "auto"
        # (see repro.api.requested_strategy).
        default=default,
    )
    parser.add_argument("--search", choices=SEARCHES, default="greedy")
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist oracle query outcomes under DIR (warm-starts reruns)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="worker processes for the pool strategies (default: cpu count)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Atropos (PLDI 2021) reproduction: anomaly detection, "
        "plan-based repair, experiment drivers, and the HTTP service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    t1.add_argument(
        "--benchmark",
        action="append",
        default=[],
        help="restrict to one benchmark (repeatable; default: all)",
    )
    _oracle_flags(t1)
    t1.add_argument(
        "--plans", action="store_true", help="print per-row plan provenance"
    )
    t1.add_argument("--json", metavar="FILE", help="also write rows+plans JSON")
    t1.set_defaults(func=cmd_table1)

    rp = sub.add_parser("repair", help="repair one benchmark or DSL file")
    source = rp.add_mutually_exclusive_group(required=True)
    source.add_argument("--benchmark", help="corpus benchmark name")
    source.add_argument("--file", help="path to a DSL program")
    _oracle_flags(rp)
    rp.add_argument(
        "--plan-out", metavar="FILE", help="write the rewrite plan as JSON"
    )
    rp.add_argument(
        "--plan-in",
        metavar="FILE",
        help="replay a saved plan instead of searching (no oracle work)",
    )
    rp.add_argument(
        "--print-program",
        action="store_true",
        help="print the repaired program",
    )
    rp.set_defaults(func=cmd_repair)

    pr = sub.add_parser(
        "protect",
        help="compile a repair plan into live mutation-rewrite rules and "
        "validate them against the static repair (see repro.live)",
    )
    pr.add_argument("--benchmark", required=True, help="corpus benchmark name")
    pr.add_argument(
        "--plan-in",
        metavar="FILE",
        help="compile a saved rewrite plan (default: repair from scratch)",
    )
    pr.add_argument(
        "--samples",
        type=int,
        default=120,
        help="weak-replay schedules per anomaly probe (default: 120)",
    )
    pr.add_argument("--seed", type=int, default=11, help="validation seed")
    pr.add_argument(
        "--scale", type=int, default=2, help="corpus-mix repetitions per txn"
    )
    pr.add_argument(
        "--measure",
        action="store_true",
        help="also measure rewrite overhead on the simulated store",
    )
    pr.add_argument(
        "--clients",
        type=int,
        default=16,
        help="simulated clients for --measure (default: 16)",
    )
    pr.add_argument(
        "--report", metavar="FILE", help="write the full verdict as JSON"
    )
    pr.set_defaults(func=cmd_protect)

    be = sub.add_parser(
        "bench",
        help="time the repair search per benchmark (serial vs a warm strategy)",
    )
    be.add_argument(
        "--benchmark",
        action="append",
        default=[],
        help="restrict to one benchmark (repeatable; default: all)",
    )
    be.add_argument(
        "--corpus",
        choices=("small", "full"),
        default="full",
        help="'small' = the CI smoke subset",
    )
    _oracle_flags(be, strategies=BENCH_STRATEGIES, default="incremental")
    be.add_argument("--json", metavar="FILE", help="write timings as JSON")
    be.set_defaults(func=cmd_bench)

    sv = sub.add_parser(
        "serve",
        help="run the JSON-over-HTTP service (POST /v1/analyze, /v1/repair, "
        "/v1/jobs; GET /v1/health, /v1/stats)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8472)
    sv.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default=None,  # None = "auto": a server exists to stay warm
    )
    sv.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist oracle query outcomes under DIR across restarts",
    )
    sv.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="service worker processes draining the job queue (default: 0 "
        "= run jobs on an in-process thread)",
    )
    sv.add_argument(
        "--strategy-workers",
        type=int,
        metavar="N",
        help="threads per workspace for the pool strategies "
        "(default: cpu count)",
    )
    sv.add_argument(
        "--job-db",
        metavar="FILE",
        help="sqlite job queue path; jobs in it survive restarts "
        "(default: a private temp file)",
    )
    sv.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        metavar="N",
        help="queued jobs admitted before POST /v1/jobs answers 429 "
        "queue-full (default: 64)",
    )
    sv.add_argument(
        "--rate-limit",
        type=float,
        metavar="R",
        help="per-tenant POST requests/second (burst 2R); default: off",
    )
    sv.add_argument(
        "--tenant-weight",
        action="append",
        default=None,
        metavar="NAME=W",
        help="claim-scheduling weight for tenant NAME (repeatable; "
        "unlisted tenants weigh 1.0)",
    )
    sv.add_argument(
        "--max-queued-per-tenant",
        type=int,
        default=None,
        metavar="N",
        help="queued jobs one tenant may hold before its submissions "
        "answer 429 tenant-queue-full (default: off)",
    )
    sv.add_argument(
        "--max-running-per-tenant",
        type=int,
        default=None,
        metavar="N",
        help="jobs one tenant may have running at once across the "
        "worker fleet (default: off)",
    )
    sv.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        metavar="N",
        help="request bodies over N bytes answer 413 (default: 1 MiB)",
    )
    sv.add_argument(
        "--drain-timeout",
        type=float,
        default=60.0,
        metavar="S",
        help="seconds SIGTERM waits for in-flight jobs before forcing "
        "shutdown (default: 60)",
    )
    sv.add_argument(
        "--fail",
        metavar="SPEC",
        help="activate a fault-injection plan: a JSON plan spec (inline "
        "or a file path; see repro.faults) -- testing only",
    )
    sv.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    sv.set_defaults(func=cmd_serve)

    ch = sub.add_parser(
        "chaos",
        help="run one seeded fault-injection experiment against an "
        "in-process service and check the durability gates",
    )
    ch.add_argument(
        "--seed", type=int, default=0,
        help="fault-plan seed (same seed = same schedule; default: 0)",
    )
    ch.add_argument(
        "--jobs", type=int, default=6,
        help="analyze jobs in the mix, plus one cancel probe (default: 6)",
    )
    ch.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = inline runner; default: 0)",
    )
    # Choices and help both derive from the scenario registry, so a new
    # scenario registered in repro.service.chaos shows up here for free.
    from repro.service.chaos import SCENARIOS, scenario_help

    ch.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="faults",
        help=f"{scenario_help()} (default: faults)",
    )
    ch.add_argument(
        "--aggressor-jobs", type=int, default=50,
        help="flood size for --scenario tenant-isolation (default: 50)",
    )
    ch.add_argument(
        "--victim-jobs", type=int, default=5,
        help="trickle size for --scenario tenant-isolation (default: 5)",
    )
    ch.add_argument(
        "--log", metavar="FILE",
        help="append every fired fault to FILE as NDJSON (survives "
        "worker crashes)",
    )
    ch.add_argument(
        "--json", metavar="FILE", help="also write the report as JSON"
    )
    ch.set_defaults(func=cmd_chaos)

    sc = sub.add_parser(
        "schemas",
        help="dump (or --check) the versioned wire schemas against the "
        "committed schemas/ goldens",
    )
    sc.add_argument(
        "--out", metavar="DIR", default="schemas",
        help="golden directory (default: schemas)",
    )
    sc.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if the committed goldens drifted from the code",
    )
    sc.set_defaults(func=cmd_schemas)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
