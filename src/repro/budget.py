"""Wall-clock deadlines and solver-work budgets, threaded end to end.

A :class:`Budget` is a tiny immutable record carried from the API
request (``deadline_ms`` / ``budget``) down to the CDCL solver's main
loop.  Two independent limits:

- ``deadline`` -- an *absolute* ``time.monotonic()`` instant.  On
  Linux the monotonic clock is system-wide, so a budget built in the
  server process means the same instant inside a spawned worker;
- ``max_conflicts`` -- a per-solve conflict cap, the classic SAT
  effort budget (deterministic, unlike wall clock).

The solver checks cheaply and *cooperatively* (a countdown in the main
loop, ~one check per few hundred iterations) and reports exhaustion as
an ``unknown`` result rather than raising mid-search, so warm
incremental sessions stay reusable.  The layers above turn ``unknown``
into :class:`~repro.errors.BudgetExhaustedError` and ultimately into
the structured :class:`~repro.errors.DeadlineExceededError` carrying
partial per-pair results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ValidationError


@dataclass(frozen=True)
class Budget:
    """An absolute deadline and/or a conflict budget.  Picklable, so it
    crosses the service's process boundaries intact."""

    deadline: Optional[float] = None      # absolute time.monotonic()
    max_conflicts: Optional[int] = None   # per-solve conflict cap

    @classmethod
    def start(
        cls,
        deadline_ms: Optional[int] = None,
        budget: Optional[dict] = None,
    ) -> Optional["Budget"]:
        """Build a budget from the wire-level request fields; ``None``
        when neither field is present (the overwhelmingly common case,
        so callers can skip every downstream check)."""
        max_conflicts = None
        if budget is not None:
            extras = set(budget) - {"max_conflicts"}
            if extras:
                raise ValidationError(
                    f"unknown budget keys: {sorted(extras)}"
                )
            max_conflicts = budget.get("max_conflicts")
            if max_conflicts is not None and (
                isinstance(max_conflicts, bool)
                or not isinstance(max_conflicts, int)
                or max_conflicts < 1
            ):
                raise ValidationError(
                    "budget.max_conflicts must be a positive integer"
                )
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, int)
            or deadline_ms < 1
        ):
            raise ValidationError("deadline_ms must be a positive integer")
        if deadline_ms is None and max_conflicts is None:
            return None
        deadline = (
            time.monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        return cls(deadline=deadline, max_conflicts=max_conflicts)

    def expired(self) -> Optional[str]:
        """The exhaustion reason (``"deadline"``) or ``None``.  Checks
        only the clock; conflict accounting is the solver's."""
        if self.deadline is not None and time.monotonic() >= self.deadline:
            return "deadline"
        return None

    def exhausted(self, conflicts_used: int) -> Optional[str]:
        """Full check: conflict cap first (deterministic), then clock."""
        if (
            self.max_conflicts is not None
            and conflicts_used >= self.max_conflicts
        ):
            return "conflicts"
        return self.expired()

    def remaining_ms(self) -> Optional[int]:
        if self.deadline is None:
            return None
        return max(0, int((self.deadline - time.monotonic()) * 1000))
