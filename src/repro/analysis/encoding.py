"""SAT encoding of anomaly queries.

For a transaction ``A``, an ordered command pair ``(c1, c2)`` of ``A``,
and an interfering transaction ``B`` (two *instances*, so ``B`` may be
``A`` itself), the encoder builds a propositional formula that is
satisfiable iff the consistency level admits an execution in which the
pair witnesses a serializability anomaly.

Variables:

- ``V[b, a]`` -- the effects of ``B``'s write command ``b`` are in the
  local view of ``A``'s command ``a`` (the paper's ``vis`` restricted to
  the bounded instance);
- ``W[a, b]`` -- symmetric direction, ``A``'s write visible to ``B``;
- ``alias[x, y]`` -- commands ``x`` and ``y`` address the same record
  (free where the static analysis says *maybe*, constant otherwise),
  with transitivity enforced per table.

Violation patterns (each a disjunction over statically collected
conflict candidates):

- **fractured read** (reader side): some ``B`` writes ``w1, w2`` with
  ``c1`` witnessing ``w1`` but ``c2`` missing ``w2`` (or the mirrored
  gain direction).  Covers non-repeatable reads, dirty reads, and
  non-atomic multi-table observations;
- **fractured write** (writer side): ``c1, c2`` both write and some
  ``B`` readers observe them inconsistently;
- **read-write race** (both directions): ``c1`` reads what ``B`` writes
  while ``c2`` writes what ``B`` reads, and neither instance sees the
  other -- the lost-update / write-skew shape.

Consistency levels contribute axiom sets over ``V``/``W``:

- EC: none (record-level atomicity is inherent in the per-command
  granularity of the variables);
- RR (frozen sessions): ``V[b, c1] <-> V[b, c2]`` -- a transaction's
  view never changes mid-flight;
- CC (causal): session-prefix closure plus monotone view growth;
- SC: a single order boolean decides which instance commits first and
  fixes every visibility variable, rendering all patterns UNSAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.accesses import CommandInfo, TransactionSummary
from repro.analysis.aliasing import Alias, alias_commands
from repro.analysis.consistency import ConsistencyLevel
from repro.smt.formula import (
    And,
    BoolVar,
    FALSE,
    Formula,
    FormulaBuilder,
    Iff,
    Not,
    Or,
    TRUE,
    big_or,
    evaluate,
)


@dataclass(frozen=True)
class Disjunct:
    """One candidate anomaly witness: the formula plus the fields of the
    pair's two commands that it implicates."""

    formula: Formula
    pattern: str
    fields1: FrozenSet[str]
    fields2: FrozenSet[str]
    partner1: str
    partner2: str


@dataclass
class PairWitness:
    """A confirmed anomaly for a pair against one interferer."""

    interferer: str
    pattern: str
    fields1: FrozenSet[str]
    fields2: FrozenSet[str]


class PairEncoder:
    """Builds and solves the anomaly query for one (A, c1, c2, B) tuple.

    ``summary_a`` may be None when the caller owns witness naming (the
    analysis pipeline): the encoding itself only reads the focus pair
    and the interferer.  ``fold_constants`` selects the simplifying
    Tseitin pass of :class:`FormulaBuilder`.
    """

    def __init__(
        self,
        summary_a: Optional[TransactionSummary],
        c1: CommandInfo,
        c2: CommandInfo,
        summary_b: TransactionSummary,
        level: ConsistencyLevel,
        distinct_args: bool = True,
        fold_constants: bool = False,
    ):
        self.a = summary_a
        self.b = summary_b
        self.c1 = c1
        self.c2 = c2
        self.level = level
        self.distinct_args = distinct_args
        self.builder = FormulaBuilder(fold_constants=fold_constants)
        self.same_txn = summary_a is not None and summary_a.name == summary_b.name
        self._alias_cache: Dict[Tuple[str, str], Formula] = {}

    # -- variable constructors ------------------------------------------

    def vis_b_to_a(self, b: CommandInfo, a: CommandInfo) -> BoolVar:
        return self.builder.var(f"V[{b.label}->{a.label}]")

    def vis_a_to_b(self, a: CommandInfo, b: CommandInfo) -> BoolVar:
        return self.builder.var(f"W[{a.label}->{b.label}]")

    def alias(self, x: CommandInfo, x_side: str, y: CommandInfo, y_side: str) -> Formula:
        """Alias formula between a node of side ``x_side`` ('A'/'B') and
        one of ``y_side``; sides matter because two instances of the same
        transaction have independent arguments."""
        key = self._node_key(x, x_side), self._node_key(y, y_side)
        canon = tuple(sorted(key))
        if canon in self._alias_cache:
            return self._alias_cache[canon]
        same_instance = x_side == y_side
        verdict = alias_commands(
            x, y, same_instance=same_instance, distinct_args=self.distinct_args
        )
        if verdict is Alias.ALWAYS:
            out: Formula = TRUE
        elif verdict is Alias.NEVER:
            out = FALSE
        else:
            out = self.builder.var(f"alias[{canon[0]}|{canon[1]}]")
        self._alias_cache[canon] = out
        return out

    @staticmethod
    def _node_key(cmd: CommandInfo, side: str) -> str:
        return f"{side}:{cmd.label}"

    # -- axiom construction ------------------------------------------------

    def assert_axioms(self) -> None:
        self._assert_alias_transitivity()
        if self.level.total_order:
            self._assert_serializable()
        if self.level.session_frozen:
            self._assert_frozen()
        if self.level.causal:
            self._assert_causal()

    def _nodes(self) -> List[Tuple[CommandInfo, str]]:
        out = [(self.c1, "A"), (self.c2, "A")]
        out += [(cmd, "B") for cmd in self.b.commands]
        return out

    def _assert_alias_transitivity(self) -> None:
        nodes = self._nodes()
        by_table: Dict[str, List[Tuple[CommandInfo, str]]] = {}
        for node in nodes:
            by_table.setdefault(node[0].table, []).append(node)
        for group in by_table.values():
            n = len(group)
            for i in range(n):
                for j in range(i + 1, n):
                    for k in range(j + 1, n):
                        x, y, z = group[i], group[j], group[k]
                        axy = self.alias(x[0], x[1], y[0], y[1])
                        ayz = self.alias(y[0], y[1], z[0], z[1])
                        axz = self.alias(x[0], x[1], z[0], z[1])
                        self.builder.assert_implication((axy, ayz), axz)
                        self.builder.assert_implication((axy, axz), ayz)
                        self.builder.assert_implication((ayz, axz), axy)

    def _assert_serializable(self) -> None:
        # `ab` true: the A instance commits first.
        ab = self.builder.var("order[A<B]")
        for b in self.b.writes():
            for a in (self.c1, self.c2):
                self.builder.add(Iff(self.vis_b_to_a(b, a), Not(ab)))
        for a in (self.c1, self.c2):
            if not a.is_write:
                continue
            for b in self.b.commands:
                self.builder.add(Iff(self.vis_a_to_b(a, b), ab))

    def _assert_frozen(self) -> None:
        # A transaction's view is fixed for its whole execution.
        for b in self.b.writes():
            self.builder.add(
                Iff(self.vis_b_to_a(b, self.c1), self.vis_b_to_a(b, self.c2))
            )
        a_writes = [c for c in (self.c1, self.c2) if c.is_write]
        b_cmds = self.b.commands
        for a in a_writes:
            for i in range(len(b_cmds)):
                for j in range(i + 1, len(b_cmds)):
                    self.builder.add(
                        Iff(
                            self.vis_a_to_b(a, b_cmds[i]),
                            self.vis_a_to_b(a, b_cmds[j]),
                        )
                    )

    def _assert_causal(self) -> None:
        # Session-prefix closure: seeing a later write of a session
        # implies seeing its earlier writes.
        b_writes = list(self.b.writes())
        for i in range(len(b_writes)):
            for j in range(i + 1, len(b_writes)):
                earlier, later = b_writes[i], b_writes[j]
                for a in (self.c1, self.c2):
                    self.builder.assert_implication(
                        (self.vis_b_to_a(later, a),), self.vis_b_to_a(earlier, a)
                    )
        # Monotone growth: views never shrink within a session.
        for b in b_writes:
            self.builder.assert_implication(
                (self.vis_b_to_a(b, self.c1),), self.vis_b_to_a(b, self.c2)
            )
        if self.c1.is_write and self.c2.is_write:
            for b in self.b.commands:
                self.builder.assert_implication(
                    (self.vis_a_to_b(self.c2, b),), self.vis_a_to_b(self.c1, b)
                )
        a_writes = [c for c in (self.c1, self.c2) if c.is_write]
        b_cmds = self.b.commands
        for a in a_writes:
            for i in range(len(b_cmds)):
                for j in range(i + 1, len(b_cmds)):
                    self.builder.assert_implication(
                        (self.vis_a_to_b(a, b_cmds[i]),),
                        self.vis_a_to_b(a, b_cmds[j]),
                    )

    # -- violation patterns ---------------------------------------------------

    def collect_disjuncts(self) -> List[Disjunct]:
        out: List[Disjunct] = []
        out += self._fractured_read()
        out += self._fractured_write()
        out += self._read_write_race(self.c1, self.c2, forward=True)
        out += self._read_write_race(self.c2, self.c1, forward=False)
        return out

    def _read_conflicts(self, cmd: CommandInfo) -> List[Tuple[CommandInfo, FrozenSet[str]]]:
        """B writes conflicting with ``cmd``'s reads."""
        out = []
        for w in self.b.writes():
            if w.table != cmd.table:
                continue
            fields = frozenset(w.write_fields) & frozenset(cmd.read_fields)
            if fields and alias_commands(
                w, cmd, same_instance=False, distinct_args=self.distinct_args
            ) is not Alias.NEVER:
                out.append((w, fields))
        return out

    def _write_conflicts(self, cmd: CommandInfo) -> List[Tuple[CommandInfo, FrozenSet[str]]]:
        """B reads conflicting with ``cmd``'s writes."""
        out = []
        for r in self.b.commands:
            if r.table != cmd.table:
                continue
            fields = frozenset(cmd.write_fields) & frozenset(r.read_fields)
            if fields and alias_commands(
                cmd, r, same_instance=False, distinct_args=self.distinct_args
            ) is not Alias.NEVER:
                out.append((r, fields))
        return out

    def _fractured_read(self) -> List[Disjunct]:
        cands1 = self._read_conflicts(self.c1)
        cands2 = self._read_conflicts(self.c2)
        out: List[Disjunct] = []
        for w1, f1 in cands1:
            for w2, f2 in cands2:
                if w1.label == w2.label and f1 == f2 and self.c1.table != self.c2.table:
                    pass  # still a valid witness; no special casing needed
                a1 = self.alias(w1, "B", self.c1, "A")
                a2 = self.alias(w2, "B", self.c2, "A")
                v1 = self.vis_b_to_a(w1, self.c1)
                v2 = self.vis_b_to_a(w2, self.c2)
                fracture = Or(And(v1, Not(v2)), And(Not(v1), v2))
                out.append(
                    Disjunct(
                        formula=And(a1, a2, fracture),
                        pattern="fractured-read",
                        fields1=f1,
                        fields2=f2,
                        partner1=w1.label,
                        partner2=w2.label,
                    )
                )
        return out

    def _fractured_write(self) -> List[Disjunct]:
        if not (self.c1.is_write and self.c2.is_write):
            return []
        cands1 = self._write_conflicts(self.c1)
        cands2 = self._write_conflicts(self.c2)
        out: List[Disjunct] = []
        for r1, f1 in cands1:
            for r2, f2 in cands2:
                a1 = self.alias(self.c1, "A", r1, "B")
                a2 = self.alias(self.c2, "A", r2, "B")
                v1 = self.vis_a_to_b(self.c1, r1)
                v2 = self.vis_a_to_b(self.c2, r2)
                fracture = Or(And(v1, Not(v2)), And(Not(v1), v2))
                out.append(
                    Disjunct(
                        formula=And(a1, a2, fracture),
                        pattern="fractured-write",
                        fields1=f1,
                        fields2=f2,
                        partner1=r1.label,
                        partner2=r2.label,
                    )
                )
        return out

    def _read_write_race(
        self, reader: CommandInfo, writer: CommandInfo, forward: bool
    ) -> List[Disjunct]:
        """``reader`` reads what B writes; ``writer`` writes what B reads;
        neither instance observes the other (lost update / write skew)."""
        if not writer.is_write or not reader.read_fields:
            return []
        # Freshly-keyed inserts are functional updates: they never
        # overwrite, so they cannot lose (or be lost to) a concurrent
        # update -- the commutativity the logger refactoring exploits.
        if writer.uuid_key:
            return []
        w_cands = [
            (w, f) for w, f in self._read_conflicts(reader) if not w.uuid_key
        ]
        r_cands = self._write_conflicts(writer)
        out: List[Disjunct] = []
        for w_b, f_r in w_cands:
            for r_b, f_w in r_cands:
                a1 = self.alias(w_b, "B", reader, "A")
                a2 = self.alias(writer, "A", r_b, "B")
                miss_b = Not(self.vis_b_to_a(w_b, reader))
                miss_a = Not(self.vis_a_to_b(writer, r_b))
                fields = (f_r, f_w) if forward else (f_w, f_r)
                out.append(
                    Disjunct(
                        formula=And(a1, a2, miss_b, miss_a),
                        pattern="rw-race",
                        fields1=fields[0],
                        fields2=fields[1],
                        partner1=w_b.label if forward else r_b.label,
                        partner2=r_b.label if forward else w_b.label,
                    )
                )
        return out

    # -- top level ---------------------------------------------------------

    def solve(self) -> Optional[PairWitness]:
        """Check the pair against this interferer; None when safe."""
        disjuncts = self.collect_disjuncts()
        if not disjuncts:
            return None
        self.assert_axioms()
        self.builder.add(big_or([d.formula for d in disjuncts]))
        model = self.builder.check()
        if model is None:
            return None
        fields1: FrozenSet[str] = frozenset()
        fields2: FrozenSet[str] = frozenset()
        pattern = ""
        for d in disjuncts:
            if evaluate(d.formula, model):
                fields1 |= d.fields1
                fields2 |= d.fields2
                pattern = pattern or d.pattern
        return PairWitness(
            interferer=self.b.name,
            pattern=pattern or disjuncts[0].pattern,
            fields1=fields1,
            fields2=fields2,
        )
