"""SAT encoding of anomaly queries.

For a transaction ``A``, an ordered command pair ``(c1, c2)`` of ``A``,
and an interfering transaction ``B`` (two *instances*, so ``B`` may be
``A`` itself), the encoder builds a propositional formula that is
satisfiable iff the consistency level admits an execution in which the
pair witnesses a serializability anomaly.

Variables:

- ``V[b, a]`` -- the effects of ``B``'s write command ``b`` are in the
  local view of ``A``'s command ``a`` (the paper's ``vis`` restricted to
  the bounded instance);
- ``W[a, b]`` -- symmetric direction, ``A``'s write visible to ``B``;
- ``alias[x, y]`` -- commands ``x`` and ``y`` address the same record
  (free where the static analysis says *maybe*, constant otherwise),
  with transitivity enforced per table.

Violation patterns (each a disjunction over statically collected
conflict candidates):

- **fractured read** (reader side): some ``B`` writes ``w1, w2`` with
  ``c1`` witnessing ``w1`` but ``c2`` missing ``w2`` (or the mirrored
  gain direction).  Covers non-repeatable reads, dirty reads, and
  non-atomic multi-table observations;
- **fractured write** (writer side): ``c1, c2`` both write and some
  ``B`` readers observe them inconsistently;
- **read-write race** (both directions): ``c1`` reads what ``B`` writes
  while ``c2`` writes what ``B`` reads, and neither instance sees the
  other -- the lost-update / write-skew shape.

Consistency levels contribute axiom sets over ``V``/``W``:

- EC: none (record-level atomicity is inherent in the per-command
  granularity of the variables);
- RR (frozen sessions): ``V[b, c1] <-> V[b, c2]`` -- a transaction's
  view never changes mid-flight;
- CC (causal): session-prefix closure plus monotone view growth;
- SC: a single order boolean decides which instance commits first and
  fixes every visibility variable, rendering all patterns UNSAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.accesses import CommandInfo, TransactionSummary
from repro.analysis.aliasing import Alias, alias_commands
from repro.analysis.consistency import EC, ConsistencyLevel
from repro.smt.solver import neg as sat_neg, stats_delta
from repro.smt.formula import (
    And,
    BoolVar,
    FALSE,
    Formula,
    FormulaBuilder,
    Iff,
    Not,
    Or,
    TRUE,
    big_or,
    evaluate,
)


@dataclass(frozen=True)
class Disjunct:
    """One candidate anomaly witness: the formula plus the fields of the
    pair's two commands that it implicates."""

    formula: Formula
    pattern: str
    fields1: FrozenSet[str]
    fields2: FrozenSet[str]
    partner1: str
    partner2: str


@dataclass
class PairWitness:
    """A confirmed anomaly for a pair against one interferer."""

    interferer: str
    pattern: str
    fields1: FrozenSet[str]
    fields2: FrozenSet[str]


class PairEncoder:
    """Builds and solves the anomaly query for one (A, c1, c2, B) tuple.

    ``summary_a`` may be None when the caller owns witness naming (the
    analysis pipeline): the encoding itself only reads the focus pair
    and the interferer.  ``fold_constants`` selects the simplifying
    Tseitin pass of :class:`FormulaBuilder`.
    """

    def __init__(
        self,
        summary_a: Optional[TransactionSummary],
        c1: CommandInfo,
        c2: CommandInfo,
        summary_b: TransactionSummary,
        level: ConsistencyLevel,
        distinct_args: bool = True,
        fold_constants: bool = False,
    ):
        self.a = summary_a
        self.b = summary_b
        self.c1 = c1
        self.c2 = c2
        self.level = level
        self.distinct_args = distinct_args
        self.builder = FormulaBuilder(fold_constants=fold_constants)
        self.same_txn = summary_a is not None and summary_a.name == summary_b.name
        self._alias_cache: Dict[Tuple[str, str], Formula] = {}
        # Visibility variables are requested repeatedly by the disjunct
        # builders, every axiom generator, and model evaluation; memoise
        # them to skip the name formatting and interning lookups.
        self._vis_cache: Dict[Tuple[str, str, str], BoolVar] = {}
        # Materialised once on first use: the alias triangle list (shared
        # by assertion and model screening) and the per-feature variable
        # *name* lists that model_satisfies walks per candidate model.
        self._triangles: Optional[List[Tuple[Formula, Formula, Formula]]] = None
        self._tri_screen: Optional[List[Tuple[object, object, object]]] = None
        self._serial_links: Optional[List[Tuple[BoolVar, bool]]] = None
        self._frozen_links: Optional[List[Tuple[BoolVar, BoolVar]]] = None
        self._causal_links: Optional[List[Tuple[BoolVar, BoolVar]]] = None
        self._frozen_names: Optional[List[Tuple[str, str]]] = None
        self._causal_names: Optional[List[Tuple[str, str]]] = None
        self._serial_names: Optional[List[Tuple[str, bool]]] = None

    # -- variable constructors ------------------------------------------

    def vis_b_to_a(self, b: CommandInfo, a: CommandInfo) -> BoolVar:
        key = ("V", b.label, a.label)
        var = self._vis_cache.get(key)
        if var is None:
            var = self.builder.var(f"V[{b.label}->{a.label}]")
            self._vis_cache[key] = var
        return var

    def vis_a_to_b(self, a: CommandInfo, b: CommandInfo) -> BoolVar:
        key = ("W", a.label, b.label)
        var = self._vis_cache.get(key)
        if var is None:
            var = self.builder.var(f"W[{a.label}->{b.label}]")
            self._vis_cache[key] = var
        return var

    def alias(self, x: CommandInfo, x_side: str, y: CommandInfo, y_side: str) -> Formula:
        """Alias formula between a node of side ``x_side`` ('A'/'B') and
        one of ``y_side``; sides matter because two instances of the same
        transaction have independent arguments."""
        # Tuple-keyed memo: (side, label) tuples order exactly like the
        # historical "side:label" strings (labels contain no colons), so
        # the canonical orientation -- and hence variable naming and
        # allocation order -- is unchanged, minus the per-call string
        # formatting.
        kx = (x_side, x.label)
        ky = (y_side, y.label)
        canon = (kx, ky) if kx <= ky else (ky, kx)
        cached = self._alias_cache.get(canon)
        if cached is not None:
            return cached
        same_instance = x_side == y_side
        verdict = alias_commands(
            x, y, same_instance=same_instance, distinct_args=self.distinct_args
        )
        if verdict is Alias.ALWAYS:
            out: Formula = TRUE
        elif verdict is Alias.NEVER:
            out = FALSE
        else:
            (s0, l0), (s1, l1) = canon
            out = self.builder.var(f"alias[{s0}:{l0}|{s1}:{l1}]")
        self._alias_cache[canon] = out
        return out

    @staticmethod
    def _node_key(cmd: CommandInfo, side: str) -> str:
        return f"{side}:{cmd.label}"

    def resolve_literal(self, var: BoolVar) -> int:
        """The solver literal for a (possibly new) named variable."""
        return self.builder.literal(var)

    # -- axiom construction ------------------------------------------------

    def assert_axioms(self) -> None:
        self._assert_alias_transitivity()
        if self.level.total_order:
            self._assert_serializable()
        if self.level.session_frozen:
            self._assert_frozen()
        if self.level.causal:
            self._assert_causal()

    # The per-feature axiom sets are produced by constraint generators
    # shared between clause assertion (below) and model evaluation
    # (:meth:`model_satisfies`), so the warm-session shortcut that checks
    # a cached model against a level's axioms can never drift from what
    # the solver would enforce.

    def _nodes(self) -> List[Tuple[CommandInfo, str]]:
        out = [(self.c1, "A"), (self.c2, "A")]
        out += [(cmd, "B") for cmd in self.b.commands]
        return out

    def _alias_triangles(self) -> List[Tuple[Formula, Formula, Formula]]:
        """Per-table alias triangles ``(axy, ayz, axz)``; each is
        transitively closed in all three directions.  Materialised once:
        both assertion and per-candidate model screening walk the same
        list, and the alias variables intern on the first build."""
        if self._triangles is not None:
            return self._triangles
        nodes = self._nodes()
        by_table: Dict[str, List[Tuple[CommandInfo, str]]] = {}
        for node in nodes:
            by_table.setdefault(node[0].table, []).append(node)
        triangles: List[Tuple[Formula, Formula, Formula]] = []
        for group in by_table.values():
            n = len(group)
            if n < 3:
                continue
            # Index-keyed pair memo: self.alias() pays string formatting
            # and a sorted-tuple cache key per call, which the O(n^3)
            # triangle loop repeats ~n times per pair.  First-call order
            # per pair is exactly the inline loop's, so alias-variable
            # allocation order (and hence models) is unchanged.
            pair: Dict[Tuple[int, int], Formula] = {}

            def side(i: int, j: int) -> Formula:
                f = pair.get((i, j))
                if f is None:
                    x, y = group[i], group[j]
                    f = self.alias(x[0], x[1], y[0], y[1])
                    pair[(i, j)] = f
                return f

            for i in range(n):
                for j in range(i + 1, n):
                    for k in range(j + 1, n):
                        triangles.append((side(i, j), side(j, k), side(i, k)))
        self._triangles = triangles
        return triangles

    def _assert_alias_transitivity(self) -> None:
        builder = self.builder
        if not builder.fold_constants:
            for axy, ayz, axz in self._alias_triangles():
                builder.assert_implication((axy, ayz), axz)
                builder.assert_implication((axy, axz), ayz)
                builder.assert_implication((ayz, axz), axy)
            return
        # Folding fast path: resolve each triangle side to its literal
        # once (the generic path re-encodes each side per implication)
        # and emit the three clauses at the literal level.  Emission
        # order and variable allocation order match assert_implication
        # exactly, so models -- and hence witnesses -- are unchanged.
        fold = builder.fold_literal
        emit = builder.assert_implication_lits
        emit_raw = builder._emit
        # Each alias formula appears in up to n-2 triangles; resolve it
        # to its literal once (id-keyed: formulas are interned per
        # encoder, and the triangle list keeps them alive).  First-fold
        # order matches the inline loop's, so variable allocation order
        # -- and hence models and witnesses -- is unchanged.
        lits: Dict[int, object] = {}
        true_lit = false_lit = None

        def _raw_installer():
            # Direct arena installation for the screened fast-path
            # clauses.  Sound only while add_clause_unchecked's passes
            # would all no-op: no active group (no guard literal to
            # append), arena backend (the install below IS the arena
            # layout), root level with nothing but the pinned constant
            # assigned (no simplification possible: fast-path clauses
            # never contain the constant), and the solver still
            # consistent.  Returns None when any condition fails.
            solver = builder.solver
            if (
                builder._group is not None
                or solver.clause_db != "arena"
                or not solver._ok
                or solver.trail_lim
                or any((t >> 1) != const_var for t in solver.trail)
            ):
                return None
            c_off = solver._c_off
            c_len = solver._c_len
            c_act = solver._c_act
            c_learned = solver._c_learned
            arena = solver._lits
            watches = solver.watches
            clauses = solver.clauses

            def raw(cl):
                cid = len(c_off)
                c_off.append(len(arena))
                c_len.append(len(cl))
                c_act.append(0.0)
                c_learned.append(False)
                arena.extend(cl)
                watches[cl[0] ^ 1].append(cid)
                watches[cl[1] ^ 1].append(cid)
                clauses.append(cid)

            return raw

        for triangle in self._alias_triangles():
            sides = []
            for f in triangle:
                l = lits.get(id(f))
                if l is None:
                    l = fold(f)
                    lits[id(f)] = l
                sides.append(l)
            if true_lit is None:
                # Pin the shared constant exactly where the historical
                # first assert_implication_lits call did, keeping the
                # constant's variable index and root unit unchanged.
                true_lit = builder._const_lit(True)
                false_lit = sat_neg(true_lit)
                const_var = true_lit >> 1
                emit_raw = _raw_installer() or emit_raw
            lxy, lyz, lxz = sides
            kxy = lxy >> 1 == const_var
            kyz = lyz >> 1 == const_var
            kxz = lxz >> 1 == const_var
            if not (kxy or kyz or kxz):
                # All-free fast path: triangle sides are three *distinct*
                # positive alias-variable literals (each unordered node
                # pair interns its own variable), admitting no folding,
                # deduplication, or tautology -- emit exactly the clauses
                # assert_implication_lits would, minus its screening.
                nxy, nyz, nxz = sat_neg(lxy), sat_neg(lyz), sat_neg(lxz)
                emit_raw([nxy, nyz, lxz])
                emit_raw([nxy, nxz, lyz])
                emit_raw([nyz, nxz, lxy])
            elif kxy + kyz + kxz == 1:
                # One constant side (an ALWAYS/NEVER alias verdict), two
                # free ones: the three implications fold to the clause
                # lists below -- hand-evaluated from the
                # assert_implication_lits rules, emission order preserved.
                if kxz:
                    if lxz == false_lit:
                        emit_raw([sat_neg(lxy), sat_neg(lyz)])
                    else:
                        emit_raw([sat_neg(lxy), lyz])
                        emit_raw([sat_neg(lyz), lxy])
                elif kyz:
                    if lyz == false_lit:
                        emit_raw([sat_neg(lxy), sat_neg(lxz)])
                    else:
                        emit_raw([sat_neg(lxy), lxz])
                        emit_raw([sat_neg(lxz), lxy])
                else:
                    if lxy == false_lit:
                        emit_raw([sat_neg(lyz), sat_neg(lxz)])
                    else:
                        emit_raw([sat_neg(lyz), lxz])
                        emit_raw([sat_neg(lxz), lyz])
            else:
                emit((lxy, lyz), lxz)
                emit((lxy, lxz), lyz)
                emit((lyz, lxz), lxy)
                # The generic path can enqueue root units (folded
                # multi-constant triangles) or flip the solver
                # inconsistent; re-validate the raw installer before
                # the next fast-path use.
                emit_raw = _raw_installer() or builder._emit

    def transitivity_holds(self, model: Dict[str, bool]) -> bool:
        """Whether a candidate assignment respects alias transitivity."""
        screen = self._tri_screen
        if screen is None:
            # Triangle sides are alias() results -- TRUE/FALSE or a
            # BoolVar -- so flatten each to a bool or a variable name
            # once; the screen then runs per candidate model on plain
            # dict lookups instead of recursive formula evaluation.
            screen = [
                tuple(
                    f.value if f is TRUE or f is FALSE else f.name
                    for f in triangle
                )
                for triangle in self._alias_triangles()
            ]
            self._tri_screen = screen
        get = model.get
        for sa, sb, sc in screen:
            a = sa if sa.__class__ is bool else get(sa, False)
            b = sb if sb.__class__ is bool else get(sb, False)
            c = sc if sc.__class__ is bool else get(sc, False)
            if (a and b and not c) or (a and c and not b) or (b and c and not a):
                return False
        return True

    # The three per-feature link lists below were generators; every
    # axiom-group build and model screen re-ran them from scratch, and
    # generator resumption dominated the profile.  They are now built
    # once per encoder (the constituent variables are interned, so the
    # lists stay valid) in exactly the historical yield order, which
    # pins variable allocation order and hence models and witnesses.

    def _serializable_links(self):
        """``(vis, flipped)`` pairs: each visibility variable is
        equivalent to the commit-order boolean (``order[A<B]`` true means
        the A instance commits first), negated when ``flipped``."""
        links = self._serial_links
        if links is None:
            links = []
            app = links.append
            vis_b = self.vis_b_to_a
            vis_a = self.vis_a_to_b
            c1, c2 = self.c1, self.c2
            for b in self.b.writes():
                app((vis_b(b, c1), True))
                app((vis_b(b, c2), True))
            for a in (c1, c2):
                if not a.is_write:
                    continue
                for b in self.b.commands:
                    app((vis_a(a, b), False))
            self._serial_links = links
        return links

    def _assert_serializable(self) -> None:
        # `ab` true: the A instance commits first.
        ab = self.builder.var("order[A<B]")
        for vis, flipped in self._serializable_links():
            self.builder.add(Iff(vis, Not(ab) if flipped else ab))

    def _frozen_pairs(self):
        """Variable pairs constrained to be equivalent: a transaction's
        view is fixed for its whole execution."""
        pairs = self._frozen_links
        if pairs is None:
            pairs = []
            app = pairs.append
            vis_b = self.vis_b_to_a
            vis_a = self.vis_a_to_b
            c1, c2 = self.c1, self.c2
            for b in self.b.writes():
                app((vis_b(b, c1), vis_b(b, c2)))
            a_writes = [c for c in (c1, c2) if c.is_write]
            b_cmds = self.b.commands
            for a in a_writes:
                for i in range(len(b_cmds)):
                    for j in range(i + 1, len(b_cmds)):
                        app((vis_a(a, b_cmds[i]), vis_a(a, b_cmds[j])))
            self._frozen_links = pairs
        return pairs

    def _assert_frozen(self) -> None:
        for v1, v2 in self._frozen_pairs():
            self.builder.add(Iff(v1, v2))

    def _causal_implications(self):
        """``(antecedent, consequent)`` visibility implications."""
        impls = self._causal_links
        if impls is None:
            impls = []
            app = impls.append
            vis_b = self.vis_b_to_a
            vis_a = self.vis_a_to_b
            c1, c2 = self.c1, self.c2
            # Session-prefix closure: seeing a later write of a session
            # implies seeing its earlier writes.
            b_writes = self.b.writes()
            for i in range(len(b_writes)):
                for j in range(i + 1, len(b_writes)):
                    earlier, later = b_writes[i], b_writes[j]
                    app((vis_b(later, c1), vis_b(earlier, c1)))
                    app((vis_b(later, c2), vis_b(earlier, c2)))
            # Monotone growth: views never shrink within a session.
            for b in b_writes:
                app((vis_b(b, c1), vis_b(b, c2)))
            if c1.is_write and c2.is_write:
                for b in self.b.commands:
                    app((vis_a(c2, b), vis_a(c1, b)))
            a_writes = [c for c in (c1, c2) if c.is_write]
            b_cmds = self.b.commands
            for a in a_writes:
                for i in range(len(b_cmds)):
                    for j in range(i + 1, len(b_cmds)):
                        app((vis_a(a, b_cmds[i]), vis_a(a, b_cmds[j])))
            self._causal_links = impls
        return impls

    def _assert_causal(self) -> None:
        for antecedent, consequent in self._causal_implications():
            self.builder.assert_implication((antecedent,), consequent)

    def model_satisfies(self, level: ConsistencyLevel, model: Dict[str, bool]) -> bool:
        """Whether a (skeleton) model already satisfies ``level``'s
        axioms -- the warm-session shortcut that turns a repeat query
        into a pure model evaluation.  Walks per-feature variable-name
        lists materialised once from the same constraint generators the
        assertion methods use, so the screen can never drift from what
        the solver would enforce."""
        get = model.get
        if level.session_frozen:
            if self._frozen_names is None:
                self._frozen_names = [
                    (v1.name, v2.name) for v1, v2 in self._frozen_pairs()
                ]
            for n1, n2 in self._frozen_names:
                if get(n1, False) != get(n2, False):
                    return False
        if level.causal:
            if self._causal_names is None:
                self._causal_names = [
                    (a.name, c.name) for a, c in self._causal_implications()
                ]
            for antecedent, consequent in self._causal_names:
                if get(antecedent, False) and not get(consequent, False):
                    return False
        if level.total_order:
            if self._serial_names is None:
                self._serial_names = [
                    (vis.name, flipped)
                    for vis, flipped in self._serializable_links()
                ]
            links = self._serial_names
            for order_ab in (False, True):
                if all(
                    get(name, False) == (not order_ab if flipped else order_ab)
                    for name, flipped in links
                ):
                    break
            else:
                return False
        return True

    # -- violation patterns ---------------------------------------------------

    def collect_disjuncts(self) -> List[Disjunct]:
        out: List[Disjunct] = []
        out += self._fractured_read()
        out += self._fractured_write()
        out += self._read_write_race(self.c1, self.c2, forward=True)
        out += self._read_write_race(self.c2, self.c1, forward=False)
        return out

    def _read_conflicts(self, cmd: CommandInfo):
        """B writes conflicting with ``cmd``'s reads."""
        return _read_conflict_list(cmd, self.b.commands, self.distinct_args)

    def _write_conflicts(self, cmd: CommandInfo):
        """B reads conflicting with ``cmd``'s writes."""
        return _write_conflict_list(cmd, self.b.commands, self.distinct_args)

    def _fractured_read(self) -> List[Disjunct]:
        cands1 = self._read_conflicts(self.c1)
        cands2 = self._read_conflicts(self.c2)
        out: List[Disjunct] = []
        for w1, f1 in cands1:
            for w2, f2 in cands2:
                if w1.label == w2.label and f1 == f2 and self.c1.table != self.c2.table:
                    pass  # still a valid witness; no special casing needed
                a1 = self.alias(w1, "B", self.c1, "A")
                a2 = self.alias(w2, "B", self.c2, "A")
                v1 = self.vis_b_to_a(w1, self.c1)
                v2 = self.vis_b_to_a(w2, self.c2)
                fracture = Or(And(v1, Not(v2)), And(Not(v1), v2))
                out.append(
                    Disjunct(
                        formula=And(a1, a2, fracture),
                        pattern="fractured-read",
                        fields1=f1,
                        fields2=f2,
                        partner1=w1.label,
                        partner2=w2.label,
                    )
                )
        return out

    def _fractured_write(self) -> List[Disjunct]:
        if not (self.c1.is_write and self.c2.is_write):
            return []
        cands1 = self._write_conflicts(self.c1)
        cands2 = self._write_conflicts(self.c2)
        out: List[Disjunct] = []
        for r1, f1 in cands1:
            for r2, f2 in cands2:
                a1 = self.alias(self.c1, "A", r1, "B")
                a2 = self.alias(self.c2, "A", r2, "B")
                v1 = self.vis_a_to_b(self.c1, r1)
                v2 = self.vis_a_to_b(self.c2, r2)
                fracture = Or(And(v1, Not(v2)), And(Not(v1), v2))
                out.append(
                    Disjunct(
                        formula=And(a1, a2, fracture),
                        pattern="fractured-write",
                        fields1=f1,
                        fields2=f2,
                        partner1=r1.label,
                        partner2=r2.label,
                    )
                )
        return out

    def _read_write_race(
        self, reader: CommandInfo, writer: CommandInfo, forward: bool
    ) -> List[Disjunct]:
        """``reader`` reads what B writes; ``writer`` writes what B reads;
        neither instance observes the other (lost update / write skew)."""
        if not writer.is_write or not reader.read_fields:
            return []
        # Freshly-keyed inserts are functional updates: they never
        # overwrite, so they cannot lose (or be lost to) a concurrent
        # update -- the commutativity the logger refactoring exploits.
        if writer.uuid_key:
            return []
        w_cands = [
            (w, f) for w, f in self._read_conflicts(reader) if not w.uuid_key
        ]
        r_cands = self._write_conflicts(writer)
        out: List[Disjunct] = []
        for w_b, f_r in w_cands:
            for r_b, f_w in r_cands:
                a1 = self.alias(w_b, "B", reader, "A")
                a2 = self.alias(writer, "A", r_b, "B")
                miss_b = Not(self.vis_b_to_a(w_b, reader))
                miss_a = Not(self.vis_a_to_b(writer, r_b))
                fields = (f_r, f_w) if forward else (f_w, f_r)
                out.append(
                    Disjunct(
                        formula=And(a1, a2, miss_b, miss_a),
                        pattern="rw-race",
                        fields1=fields[0],
                        fields2=fields[1],
                        partner1=w_b.label if forward else r_b.label,
                        partner2=r_b.label if forward else w_b.label,
                    )
                )
        return out

    # -- top level ---------------------------------------------------------

    def solve(self, budget=None) -> Optional[PairWitness]:
        """Check the pair against this interferer; None when safe."""
        disjuncts = self.collect_disjuncts()
        if not disjuncts:
            return None
        self.assert_axioms()
        self.builder.add(big_or([d.formula for d in disjuncts]))
        model = self.builder.check(budget=budget)
        if model is None:
            return None
        fields1: FrozenSet[str] = frozenset()
        fields2: FrozenSet[str] = frozenset()
        pattern = ""
        for d in disjuncts:
            if evaluate(d.formula, model):
                fields1 |= d.fields1
                fields2 |= d.fields2
                pattern = pattern or d.pattern
        return PairWitness(
            interferer=self.b.name,
            pattern=pattern or disjuncts[0].pattern,
            fields1=fields1,
            fields2=fields2,
        )


@lru_cache(maxsize=16384)
def _field_set(fields: Tuple[str, ...]) -> FrozenSet[str]:
    """Interned frozenset view of a field tuple: the conflict scans
    intersect the same few field tuples across thousands of sessions."""
    return frozenset(fields)


@lru_cache(maxsize=65536)
def _read_conflict_list(
    cmd: CommandInfo,
    b_commands: Tuple[CommandInfo, ...],
    distinct_args: bool,
) -> Tuple[Tuple[CommandInfo, FrozenSet[str]], ...]:
    """Interferer writes conflicting with ``cmd``'s reads.

    A pure function of the (frozen) command summaries, memoised
    globally: the repair search re-derives the same ``(command,
    interferer)`` conflict scans across thousands of candidate
    programs whose focus *triples* are fresh but whose components
    repeat.  Entry order matches the historical inline scan (command
    order filtered to writes), so disjunct order -- and hence models
    and witnesses -- is unchanged.
    """
    out = []
    for w in b_commands:
        if not w.is_write or w.table != cmd.table:
            continue
        fields = _field_set(w.write_fields) & _field_set(cmd.read_fields)
        if fields and alias_commands(
            w, cmd, same_instance=False, distinct_args=distinct_args
        ) is not Alias.NEVER:
            out.append((w, fields))
    return tuple(out)


@lru_cache(maxsize=65536)
def _write_conflict_list(
    cmd: CommandInfo,
    b_commands: Tuple[CommandInfo, ...],
    distinct_args: bool,
) -> Tuple[Tuple[CommandInfo, FrozenSet[str]], ...]:
    """Interferer reads conflicting with ``cmd``'s writes (see
    :func:`_read_conflict_list` for the memoisation rationale)."""
    out = []
    for r in b_commands:
        if r.table != cmd.table:
            continue
        fields = _field_set(cmd.write_fields) & _field_set(r.read_fields)
        if fields and alias_commands(
            cmd, r, same_instance=False, distinct_args=distinct_args
        ) is not Alias.NEVER:
            out.append((r, fields))
    return tuple(out)


def has_disjuncts(
    c1: CommandInfo,
    c2: CommandInfo,
    b_commands: Tuple[CommandInfo, ...],
    distinct_args: bool,
) -> bool:
    """Whether :meth:`PairEncoder.collect_disjuncts` would be non-empty.

    Decides emptiness from the memoised conflict lists alone -- without
    a builder, a solver, or any formula construction -- mirroring each
    pattern's candidate-product shape exactly.  Most repair-candidate
    queries die here: the rewrite removed the conflict, so the triple
    has no disjuncts and needs no encoder at all.
    """
    r1 = _read_conflict_list(c1, b_commands, distinct_args)
    r2 = _read_conflict_list(c2, b_commands, distinct_args)
    # Fractured read: one disjunct per (w1, w2) candidate pair.
    if r1 and r2:
        return True
    # Fractured write: both focus commands write, candidates on both.
    if (
        c1.is_write
        and c2.is_write
        and _write_conflict_list(c1, b_commands, distinct_args)
        and _write_conflict_list(c2, b_commands, distinct_args)
    ):
        return True
    # Read-write race, both orientations.
    for reader, writer, r_cands in ((c1, c2, r1), (c2, c1, r2)):
        if not writer.is_write or not reader.read_fields or writer.uuid_key:
            continue
        if any(not w.uuid_key for w, _ in r_cands) and _write_conflict_list(
            writer, b_commands, distinct_args
        ):
            return True
    return False


def tables_may_conflict(
    c1: CommandInfo, c2: CommandInfo, summary_b: TransactionSummary
) -> bool:
    """Cheap sound screen: every violation pattern needs an interferer
    command on the table of ``c1`` or ``c2``, so a triple with no shared
    table has no disjuncts and never reaches the solver."""
    tables = {c1.table, c2.table}
    return any(cmd.table in tables for cmd in summary_b.commands)


class PairSession:
    """Warm incremental SAT session for one ``(c1, c2, B)`` focus triple.

    A cold query (:meth:`PairEncoder.solve`, or the pipeline's
    ``solve_query``) rebuilds the entire encoding for every consistency
    level: formula construction, Tseitin conversion, and a fresh solver
    per query.  The session instead registers the level-independent
    skeleton exactly once on one persistent incremental solver --
    visibility/alias variables, alias transitivity, and the anomaly
    disjunction -- and puts each consistency feature's axiom set
    (serializable / frozen / causal) in its own retractable
    activation-literal group, created lazily the first time a queried
    level needs it.  A repeat query at a new level then reduces to a
    single assumption-based solve that retains the learned clauses and
    VSIDS activity of every earlier query on the triple.

    Sessions pickle by shedding their warm state (solver, groups,
    disjuncts): a worker that receives one over a process boundary
    re-warms it on first query, so the ``ProcessPoolExecutor`` path
    stays viable without serialising solver internals.
    """

    # (ConsistencyLevel flag, axiom assertion method) in the exact order
    # assert_axioms applies them, so warm encodings match cold ones.
    _FEATURES = (
        ("total_order", "_assert_serializable"),
        ("session_frozen", "_assert_frozen"),
        ("causal", "_assert_causal"),
    )

    def __init__(
        self,
        c1: CommandInfo,
        c2: CommandInfo,
        summary_b: TransactionSummary,
        distinct_args: bool = True,
    ):
        self.c1 = c1
        self.c2 = c2
        self.summary_b = summary_b
        self.distinct_args = distinct_args
        self.queries = 0
        self.model_hits = 0
        self._encoder: Optional[PairEncoder] = None
        self._disjuncts: Optional[List[Disjunct]] = None
        self._groups: Dict[str, int] = {}
        # Models known to satisfy skeleton + disjunction, newest last
        # (bounded); candidates for the warm model-reuse shortcut.
        self._models: List[Dict[str, bool]] = []
        self._static_candidates: Optional[List[Dict[str, bool]]] = None
        # Witness extraction memo, keyed by the identity of the model
        # object (models live in _models/_static_candidates, so their
        # ids are stable while referenced).
        self._witness_by_model: Dict[int, PairWitness] = {}

    @property
    def warmed(self) -> bool:
        """Whether the skeleton has been encoded on the warm solver."""
        return self._disjuncts is not None

    def _ensure_warm(self) -> None:
        if self._disjuncts is not None:
            return
        if not tables_may_conflict(self.c1, self.c2, self.summary_b):
            self._disjuncts = []
            return
        if not has_disjuncts(
            self.c1, self.c2, self.summary_b.commands, self.distinct_args
        ):
            # Emptiness decided from the memoised conflict lists: skip
            # the builder, the solver, and all formula construction.
            # Externally identical to building the encoder and finding
            # collect_disjuncts() empty (the encoder was discarded).
            self._disjuncts = []
            return
        encoder = PairEncoder(
            None,
            self.c1,
            self.c2,
            self.summary_b,
            EC,
            distinct_args=self.distinct_args,
            fold_constants=True,
        )
        disjuncts = encoder.collect_disjuncts()
        self._disjuncts = disjuncts
        if not disjuncts:
            return
        # The level-independent skeleton, registered once: EC's axiom set
        # is exactly alias transitivity, and the violation disjunction is
        # the same formula for every level.
        encoder.assert_axioms()
        encoder.builder.add(big_or([d.formula for d in disjuncts]))
        self._encoder = encoder

    def _axiom_groups(self, level: ConsistencyLevel) -> List[int]:
        """Activation groups for ``level``'s axioms, building each
        feature's group on first use.

        The feature axioms are pure binary constraints over interned
        variables, so the session resolves them to literals once and
        emits the guarded clauses through the solver's group API --
        the same clause set the formula layer's folded shortcuts
        produce, minus the per-query formula-object construction.
        """
        assert self._encoder is not None
        encoder = self._encoder
        builder = encoder.builder
        groups: List[int] = []
        for flag, _ in self._FEATURES:
            if not getattr(level, flag):
                continue
            group_id = self._groups.get(flag)
            if group_id is None:
                group_id = builder.new_group()
                solver = builder.solver
                resolve = encoder.resolve_literal
                if flag == "total_order":
                    ab = resolve(builder.var("order[A<B]"))
                    for vis, flipped in encoder._serializable_links():
                        v = resolve(vis)
                        order = sat_neg(ab) if flipped else ab
                        solver.add_clause([sat_neg(v), order], group=group_id)
                        solver.add_clause([v, sat_neg(order)], group=group_id)
                elif flag == "session_frozen":
                    for v1, v2 in encoder._frozen_pairs():
                        l1, l2 = resolve(v1), resolve(v2)
                        solver.add_clause([sat_neg(l1), l2], group=group_id)
                        solver.add_clause([l1, sat_neg(l2)], group=group_id)
                else:  # causal
                    for antecedent, consequent in encoder._causal_implications():
                        solver.add_clause(
                            [sat_neg(resolve(antecedent)), resolve(consequent)],
                            group=group_id,
                        )
                self._groups[flag] = group_id
            groups.append(group_id)
        return groups

    def query(
        self,
        level: ConsistencyLevel,
        use_prefilter: bool = True,
        budget=None,
    ) -> Tuple[Optional[PairWitness], bool, Dict[str, int]]:
        """Check the triple at ``level`` on the warm solver.

        Returns ``(witness | None, solved, solver stat delta)`` where
        ``solved`` mirrors the cold path's accounting: False when the
        static screen emptied the query (and the prefilter is billing
        such queries as skipped).
        """
        self._ensure_warm()
        self.queries += 1
        if not self._disjuncts:
            return None, not use_prefilter, {}
        assert self._encoder is not None
        # Warm shortcut: a model known to satisfy the skeleton and the
        # disjunction (found by an earlier query, or the static
        # empty-view candidate) that also satisfies this level's axioms
        # proves the query SAT with no solving -- and no axiom groups
        # ever built.  Levels only shrink the model set, so reusing a
        # model across levels is sound.  If every candidate fails, fall
        # through to the solver.
        model = self._reusable_model(level)
        if model is not None:
            self.model_hits += 1
            delta: Dict[str, int] = {}
        else:
            builder = self._encoder.builder
            groups = self._axiom_groups(level)
            before = builder.solver.stats()
            model = builder.check(groups=groups, budget=budget)
            delta = stats_delta(builder.solver.stats(), before)
            if model is None:
                return None, True, delta
            self._remember_model(model)
        return self._witness_for(model), True, delta

    def query_batch(
        self,
        levels: List[ConsistencyLevel],
        use_prefilter: bool = True,
        budget=None,
    ) -> List[Tuple[Optional[PairWitness], bool, Dict[str, int]]]:
        """Check the triple at several levels in one warm sweep.

        Semantically one :meth:`query` per level, in order, but the
        levels that miss the model-reuse shortcut are discharged through
        a single :meth:`FormulaBuilder.check_batch` call -- one
        incremental solve sequence per triple instead of one Python
        round-trip through the stack per level.

        The only divergence from back-to-back ``query`` calls: pending
        levels are screened against the models known *before* the batch,
        so a model found mid-batch is not consulted for later levels.
        That can turn a would-be model hit into a (warm, assumption-
        based) solve; verdicts are unaffected, and each solve is
        independent of its batch neighbours by the group-assumption
        scheme.
        """
        self._ensure_warm()
        results: List[Tuple[Optional[PairWitness], bool, Dict[str, int]]]
        results = [None] * len(levels)  # type: ignore[list-item]
        if not self._disjuncts:
            for i in range(len(levels)):
                self.queries += 1
                results[i] = (None, not use_prefilter, {})
            return results
        assert self._encoder is not None
        pending: List[int] = []
        for i, level in enumerate(levels):
            self.queries += 1
            model = self._reusable_model(level)
            if model is not None:
                self.model_hits += 1
                results[i] = (self._witness_for(model), True, {})
            else:
                pending.append(i)
        if pending:
            builder = self._encoder.builder
            group_sets = [self._axiom_groups(levels[i]) for i in pending]
            stats_out: List[Dict[str, int]] = []
            models = builder.check_batch(
                group_sets, budget=budget, stats_out=stats_out
            )
            for i, model, delta in zip(pending, models, stats_out):
                if model is None:
                    results[i] = (None, True, delta)
                else:
                    self._remember_model(model)
                    results[i] = (self._witness_for(model), True, delta)
        return results

    def _witness_for(self, model: Dict[str, bool]) -> PairWitness:
        """Extract (and memoise) the witness a model proves."""
        assert self._disjuncts is not None
        witness = self._witness_by_model.get(id(model))
        if witness is None:
            fields1: FrozenSet[str] = frozenset()
            fields2: FrozenSet[str] = frozenset()
            pattern = ""
            for d in self._disjuncts:
                if evaluate(d.formula, model):
                    fields1 |= d.fields1
                    fields2 |= d.fields2
                    pattern = pattern or d.pattern
            witness = PairWitness(
                interferer=self.summary_b.name,
                pattern=pattern or self._disjuncts[0].pattern,
                fields1=fields1,
                fields2=fields2,
            )
            self._witness_by_model[id(model)] = witness
        return witness

    _MAX_MODELS = 4

    def _reusable_model(self, level: ConsistencyLevel) -> Optional[Dict[str, bool]]:
        """A known skeleton+disjunction model satisfying ``level``'s
        axioms, or None.  Only consulted once the session is warm (a
        solver-found model exists), so a session's first query -- the
        one whose witness the repair loop consumes -- is always solved
        cold and stays bit-identical to the cold encoder."""
        if not self._models:
            return None
        assert self._encoder is not None
        for model in reversed(self._models):
            if self._encoder.model_satisfies(level, model):
                return model
        for candidate in self._candidate_models():
            if self._encoder.model_satisfies(level, candidate):
                return candidate
        return None

    def _remember_model(self, model: Dict[str, bool]) -> None:
        self._models.append(model)
        if len(self._models) > self._MAX_MODELS:
            evicted = self._models.pop(0)
            # Drop the memoised witness too: once the dict is garbage
            # collected its id may be reused by a different model.
            self._witness_by_model.pop(id(evicted), None)

    def _candidate_models(self) -> List[Dict[str, bool]]:
        """Closed-form skeleton models derived from the disjunct shapes.

        Every candidate sets all free alias variables true (screened
        against alias transitivity once) and picks visibility values
        that make one disjunct true while keeping views session-prefix
        closed and monotone:

        - the *empty view* (all visibility false) realises rw-race
          disjuncts -- and trivially satisfies frozen and causal;
        - for a fractured read over distinct writes, both commands see
          the same prefix of the interferer's session cut at the
          earlier write -- equal views satisfy frozen, prefixes satisfy
          causal, and the later write's absence fractures the read;
        - for a fractured read over one shared write (CC only), the
          first command's view stops just short of it and the second's
          includes it -- monotone growth, but not frozen;
        - for a fractured write, one focus write is visible to every
          interferer command and the other to none.

        Each construction is re-screened by :meth:`PairEncoder.
        model_satisfies` / the disjunct evaluation before use, so the
        closed forms can only ever skip the solver, not mislead it.
        Candidates are built once per session, in disjunct order.
        """
        if self._static_candidates is not None:
            return self._static_candidates
        assert self._encoder is not None and self._disjuncts is not None
        encoder = self._encoder
        aliases = {
            f.name: True
            for f in encoder._alias_cache.values()
            if isinstance(f, BoolVar)
        }
        candidates: List[Dict[str, bool]] = []
        if encoder.transitivity_holds(aliases):
            b_writes = list(self.summary_b.writes())
            write_index = {w.label: i for i, w in enumerate(b_writes)}
            b_cmds = self.summary_b.commands

            def prefix_view(cutoff: int, cutoff2: int) -> Dict[str, bool]:
                view = dict(aliases)
                for i, w in enumerate(b_writes):
                    view[encoder.vis_b_to_a(w, self.c1).name] = i <= cutoff
                    view[encoder.vis_b_to_a(w, self.c2).name] = i <= cutoff2
                return view

            seen_shapes = set()
            for d in self._disjuncts:
                if d.pattern == "rw-race":
                    shape = ("empty",)
                    if shape not in seen_shapes:
                        seen_shapes.add(shape)
                        candidates.append(dict(aliases))
                elif d.pattern == "fractured-read":
                    i1 = write_index.get(d.partner1)
                    i2 = write_index.get(d.partner2)
                    if i1 is None or i2 is None:
                        continue
                    if i1 != i2:
                        cut = min(i1, i2)
                        shape = ("prefix", cut, cut)
                    else:
                        # Shared write: views may only differ by growth.
                        shape = ("prefix", i1 - 1, i1)
                    if shape not in seen_shapes:
                        seen_shapes.add(shape)
                        candidates.append(prefix_view(shape[1], shape[2]))
                elif d.pattern == "fractured-write":
                    for winner in ("c1", "c2"):
                        shape = ("writer", winner)
                        if shape in seen_shapes:
                            continue
                        seen_shapes.add(shape)
                        view = dict(aliases)
                        vis_cmd = self.c1 if winner == "c1" else self.c2
                        for b in b_cmds:
                            view[encoder.vis_a_to_b(vis_cmd, b).name] = True
                        candidates.append(view)
            candidates = [
                c
                for c in candidates
                if any(evaluate(d.formula, c) for d in self._disjuncts)
            ]
        self._static_candidates = candidates
        return candidates

    def retire_axioms(self, level: ConsistencyLevel) -> int:
        """Retire the activation groups of ``level``'s axiom features;
        returns how many groups were dropped.  Later queries needing a
        retired feature rebuild it in a fresh group."""
        dropped = 0
        if self._encoder is None:
            return dropped
        for flag, _ in self._FEATURES:
            if not getattr(level, flag):
                continue
            group_id = self._groups.pop(flag, None)
            if group_id is not None:
                self._encoder.builder.retire_group(group_id)
                dropped += 1
        return dropped

    def close(self) -> None:
        """Release the warm solver.

        The axiom groups die with the solver -- the whole builder is
        dropped here, so retiring them first (a root unit clause plus
        propagation bookkeeping per group, on a solver about to be
        garbage collected) would be pure overhead.
        """
        self._groups = {}
        self._encoder = None
        self._disjuncts = None
        self._models = []
        self._static_candidates = None
        self._witness_by_model = {}

    # -- pickling (ProcessPool path) ------------------------------------

    def __getstate__(self):
        return {
            "c1": self.c1,
            "c2": self.c2,
            "summary_b": self.summary_b,
            "distinct_args": self.distinct_args,
            "queries": self.queries,
            "model_hits": self.model_hits,
        }

    def __setstate__(self, state) -> None:
        self.c1 = state["c1"]
        self.c2 = state["c2"]
        self.summary_b = state["summary_b"]
        self.distinct_args = state["distinct_args"]
        self.queries = state["queries"]
        self.model_hits = state["model_hits"]
        self._encoder = None
        self._disjuncts = None
        self._groups = {}
        self._models = []
        self._static_candidates = None
        self._witness_by_model = {}


_ENCODING_FINGERPRINT: Optional[str] = None


def encoding_fingerprint() -> str:
    """Version digest of the anomaly encoding, for persistent caches.

    A cached query outcome is only reusable across runs while the code
    that produced it is unchanged, so the persistent
    :class:`~repro.analysis.pipeline.PersistentQueryCache` stamps every
    store with this digest: a sha1 over the *source* of each module the
    outcome of a query -- or the meaning of its cache key -- depends on
    (command summaries, aliasing, the consistency axioms, this
    encoding, the formula/solver layers, and the pipeline module that
    defines the structural fingerprints themselves).  Any edit to any
    of them -- even a changed model-picking heuristic or a coarsened
    fingerprint -- yields a new digest and silently retires every
    persisted entry, which is exactly the "versioned invalidation on
    encoding changes" contract: no manual version constant to forget to
    bump.  The cost of the coarse net is only over-invalidation, never
    stale replay.
    """
    global _ENCODING_FINGERPRINT
    if _ENCODING_FINGERPRINT is None:
        import hashlib
        import inspect
        import sys

        from repro.analysis import accesses, aliasing, consistency, pipeline
        from repro.smt import formula, solver

        digest = hashlib.sha1()
        modules = (
            accesses,
            aliasing,
            consistency,
            sys.modules[__name__],
            pipeline,
            formula,
            solver,
        )
        for module in modules:
            digest.update(inspect.getsource(module).encode())
        _ENCODING_FINGERPRINT = digest.hexdigest()
    return _ENCODING_FINGERPRINT
