"""May-alias analysis for command pairs.

Two commands *alias* when they can address the same record of the same
table in some execution.  The encoder materialises a boolean per
undetermined pair; this module decides which pairs are forced, impossible,
or free:

- different tables never alias;
- within one transaction instance, two well-formed commands whose
  primary-key expressions are syntactically identical always alias (same
  arguments, same record), and commands addressing distinct constants
  never alias;
- across instances, key expressions built from arguments may coincide
  (two calls may receive equal arguments), so such pairs are free --
  except distinct constants, which remain impossible;
- a record inserted under a ``uuid()`` key is fresh: it can never alias
  another *write* (no other command can name the same key), but reads
  that scan the table (non-well-formed where) may observe it.
"""

from __future__ import annotations

from enum import Enum
from functools import lru_cache
from typing import Optional

from repro.lang import ast
from repro.analysis.accesses import CommandInfo


class Alias(Enum):
    """Tri-state outcome of the static alias test."""

    ALWAYS = "always"
    NEVER = "never"
    MAYBE = "maybe"


@lru_cache(maxsize=262144)
def alias_commands(
    a: CommandInfo,
    b: CommandInfo,
    same_instance: bool,
    distinct_args: bool = True,
) -> Alias:
    """Decide whether commands ``a`` and ``b`` may address one record.

    ``distinct_args`` enables the distinct-argument heuristic: within one
    transaction instance, two commands keyed by *different parameters*
    (e.g. ``custid1`` vs ``custid2`` in SmallBank's Amalgamate) are
    assumed to address different records.  Callers that want the fully
    conservative analysis (parameters may coincide at runtime) can turn
    it off; the ablation benchmark measures the effect.

    Memoised: the verdict is a pure function of the two (frozen) command
    summaries, and the repair search re-derives the same pairs across
    thousands of candidate programs.
    """
    if a.table != b.table:
        return Alias.NEVER
    # Freshness of uuid-keyed inserts: no other write can hit the record.
    if (a.uuid_key and b.is_write) or (b.uuid_key and a.is_write):
        return Alias.NEVER
    akeys = a.key_expr_map()
    bkeys = b.key_expr_map()
    if akeys is None or bkeys is None:
        # At least one command scans (non-well-formed where): it may reach
        # any record of the table, including the other command's.
        return Alias.MAYBE
    if set(akeys) != set(bkeys):
        return Alias.MAYBE
    constant_verdict = _compare_constants(akeys, bkeys)
    if constant_verdict is not None:
        return constant_verdict
    if same_instance:
        if all(_syntactically_equal(akeys[k], bkeys[k]) for k in akeys):
            return Alias.ALWAYS
        if distinct_args and any(
            isinstance(akeys[k], ast.Arg)
            and isinstance(bkeys[k], ast.Arg)
            and akeys[k].name != bkeys[k].name
            for k in akeys
        ):
            return Alias.NEVER
    return Alias.MAYBE


def _compare_constants(akeys, bkeys) -> Optional[Alias]:
    """If every key position is a constant on both sides, the answer is
    exact: alias iff all constants agree."""
    all_const = True
    all_equal = True
    for k in akeys:
        ae, be = akeys[k], bkeys[k]
        if isinstance(ae, ast.Const) and isinstance(be, ast.Const):
            if ae.value != be.value:
                return Alias.NEVER
        else:
            all_const = False
    if all_const and all_equal:
        return Alias.ALWAYS
    return None


def _syntactically_equal(a: ast.Expr, b: ast.Expr) -> bool:
    """Structural equality of expressions (same instance context)."""
    if type(a) is not type(b):
        return False
    if isinstance(a, ast.Const):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, ast.Arg):
        return a.name == b.name  # type: ignore[union-attr]
    if isinstance(a, (ast.IterVar, ast.Uuid)):
        # uuid() values are fresh per evaluation: never equal.
        return isinstance(a, ast.IterVar)
    if isinstance(a, ast.At):
        b_at = b
        return (
            a.var == b_at.var
            and a.field == b_at.field
            and _syntactically_equal(a.index, b_at.index)
        )
    if isinstance(a, ast.Agg):
        return a.func == b.func and a.var == b.var and a.field == b.field
    if isinstance(a, (ast.BinOp, ast.Cmp, ast.BoolOp)):
        return (
            a.op == b.op
            and _syntactically_equal(a.left, b.left)
            and _syntactically_equal(a.right, b.right)
        )
    if isinstance(a, ast.Not):
        return _syntactically_equal(a.operand, b.operand)
    return False
