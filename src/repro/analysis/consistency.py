"""Consistency levels the oracle can assume (Section 7.1's EC/CC/RR/SC).

Each level is a set of axioms over per-command visibility variables; the
axioms themselves live in :mod:`repro.analysis.encoding`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ConsistencyLevel:
    """A named consistency level.

    Attributes:
        name: short identifier used in reports.
        session_frozen: views never change within a transaction
            (repeatable read as the paper defines it: results of newly
            committed transactions cannot become visible to a running
            transaction, nor can previously seen results vanish).
        causal: views are closed under session order of the writer
            (seeing a later write implies seeing the writer's earlier
            writes) and grow monotonically within the reader.
        total_order: transactions are totally ordered and atomically
            visible (serializability); all anomaly queries are UNSAT.
    """

    name: str
    session_frozen: bool = False
    causal: bool = False
    total_order: bool = False


EC = ConsistencyLevel("EC")
CC = ConsistencyLevel("CC", causal=True)
RR = ConsistencyLevel("RR", session_frozen=True)
SC = ConsistencyLevel("SC", total_order=True)

LEVELS = {level.name: level for level in (EC, CC, RR, SC)}


def by_name(name: str) -> ConsistencyLevel:
    try:
        return LEVELS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown consistency level {name!r}; choose from {sorted(LEVELS)}"
        ) from None
