"""The anomaly oracle ``O(P)``: enumerate anomalous access pairs.

For every transaction ``T`` of the program and every ordered pair of its
database commands, the oracle asks whether any interfering transaction
(any transaction of the program, including a second instance of ``T``)
admits an anomalous execution under the chosen consistency level, by
discharging the SAT query of :mod:`repro.analysis.encoding`.

The result is the paper's set of chi tuples
``(c1, f1-bar, c2, f2-bar)`` -- see the Section 3.2 examples
``(S1, {st_name}, S2, {em_addr})`` etc. -- enriched with the interfering
transactions that witness them.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.accesses import (
    CommandInfo,
    TransactionSummary,
    summarize_program,
)
from repro.analysis.consistency import EC, ConsistencyLevel
from repro.analysis.encoding import PairEncoder, PairSession, PairWitness
from repro.errors import BudgetExhaustedError, DeadlineExceededError
from repro.lang import ast


def deadline_error(
    level_name: str,
    pairs: List["AccessPair"],
    checked: int,
    total: int,
) -> DeadlineExceededError:
    """A structured deadline error carrying the partial per-pair results
    established before the cut.  ``partial_pairs`` are oracle-level
    :class:`AccessPair` objects; the API façade converts them to wire
    ``PairData`` and fills ``exc.partial`` for serialization."""
    exc = DeadlineExceededError(
        f"analysis budget exhausted after {checked}/{total} pair checks"
        f" at {level_name}"
    )
    exc.partial_pairs = list(pairs)
    exc.pairs_checked = checked
    exc.pairs_total = total
    exc.level = level_name
    return exc


@dataclass(frozen=True)
class AccessPair:
    """An anomalous database access pair (the paper's chi)."""

    txn: str
    c1: str
    fields1: FrozenSet[str]
    c2: str
    fields2: FrozenSet[str]
    interferers: Tuple[str, ...]
    patterns: Tuple[str, ...]

    def key(self) -> Tuple[str, str, str]:
        return (self.txn, self.c1, self.c2)

    def describe(self) -> str:
        f1 = "{" + ", ".join(sorted(self.fields1)) + "}"
        f2 = "{" + ", ".join(sorted(self.fields2)) + "}"
        return f"{self.txn}: ({self.c1}, {f1}, {self.c2}, {f2})"


@dataclass
class AnalysisReport:
    """Oracle output: the anomalous pairs plus bookkeeping.

    ``sat_queries`` counts actual solver invocations; with a memo cache
    attached, hits skip the solver entirely and show up in
    ``cache_hits`` instead.  ``solver_stats`` aggregates the CDCL
    solver's counters (decisions, propagations, conflicts, ...) over
    every query the report's run solved.
    """

    level: str
    pairs: List[AccessPair]
    pairs_checked: int
    sat_queries: int
    elapsed_seconds: float
    strategy: str = "serial"
    cache_hits: int = 0
    cache_misses: int = 0
    solver_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return len(self.pairs)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def queries_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return (self.cache_hits + self.sat_queries) / self.elapsed_seconds


SessionKey = Tuple[str, str, str, bool]


class OracleSession:
    """The warm-solver pool behind the ``"incremental"`` strategy.

    Owns one :class:`~repro.analysis.encoding.PairSession` per focus
    triple, keyed by the same structural fingerprints as the memo cache
    minus the consistency level -- so the repair fixpoint's EC queries,
    the CC/RR sweeps, and any later re-analysis of a structurally
    unchanged triple all land on the same incremental solver and reuse
    its registered skeleton, learned clauses, and variable activity.

    Sessions are evicted least-recently-used past ``max_sessions``.
    Like the memo cache, the pool never needs explicit invalidation for
    correctness -- a rewritten transaction fingerprints to a new key --
    but sessions for superseded program versions linger until evicted,
    and a warm session is far heavier than a cache entry (a full solver
    with its clause database).  The default cap bounds a long repair
    fixpoint's memory; shrink it for memory-constrained runs.

    The pool pickles cleanly: each session sheds its warm solver state
    on serialisation and re-warms on first use, so a ``ProcessPool``
    worker can receive a pool and rebuild only what it actually queries.
    """

    def __init__(self, distinct_args: bool = True, max_sessions: int = 4096):
        self.distinct_args = distinct_args
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[SessionKey, PairSession]" = OrderedDict()
        self.created = 0
        self.reused = 0
        self.evicted = 0
        self._retired_queries = 0
        self._retired_model_hits = 0

    def __len__(self) -> int:
        return len(self._sessions)

    def session(
        self,
        c1: CommandInfo,
        c2: CommandInfo,
        summary_b: TransactionSummary,
        distinct_args: Optional[bool] = None,
        key: Optional[SessionKey] = None,
    ) -> PairSession:
        """The (possibly warm) session for a focus triple."""
        if distinct_args is None:
            distinct_args = self.distinct_args
        if key is None:
            from repro.analysis.pipeline import (
                fingerprint_command,
                fingerprint_summary,
            )

            key = (
                fingerprint_command(c1),
                fingerprint_command(c2),
                fingerprint_summary(summary_b),
                distinct_args,
            )
        sess = self._sessions.get(key)
        if sess is None:
            sess = PairSession(c1, c2, summary_b, distinct_args)
            self.created += 1
            self._sessions[key] = sess
            if len(self._sessions) > self.max_sessions:
                _, evicted = self._sessions.popitem(last=False)
                self._retired_queries += evicted.queries
                self._retired_model_hits += evicted.model_hits
                evicted.close()
                self.evicted += 1
        else:
            self.reused += 1
            self._sessions.move_to_end(key)
        return sess

    def solve(
        self,
        c1: CommandInfo,
        c2: CommandInfo,
        summary_b: TransactionSummary,
        level: ConsistencyLevel,
        distinct_args: Optional[bool] = None,
        use_prefilter: bool = True,
        key: Optional[SessionKey] = None,
        budget=None,
    ):
        """Discharge one anomaly query on the triple's warm session;
        returns a :class:`~repro.analysis.pipeline.QueryOutcome`."""
        from repro.analysis.pipeline import QueryOutcome, WitnessData

        sess = self.session(c1, c2, summary_b, distinct_args, key=key)
        witness, solved, stats = sess.query(
            level, use_prefilter=use_prefilter, budget=budget
        )
        data = (
            WitnessData(
                pattern=witness.pattern,
                fields1=witness.fields1,
                fields2=witness.fields2,
            )
            if witness is not None
            else None
        )
        return QueryOutcome(witness=data, solved=solved, stats=stats)

    def solve_batch(
        self,
        c1: CommandInfo,
        c2: CommandInfo,
        summary_b: TransactionSummary,
        levels: List[ConsistencyLevel],
        distinct_args: Optional[bool] = None,
        use_prefilter: bool = True,
        key: Optional[SessionKey] = None,
        budget=None,
    ):
        """Discharge one anomaly query per level on the triple's warm
        session as a single incremental sweep (see
        :meth:`PairSession.query_batch`); returns one
        :class:`~repro.analysis.pipeline.QueryOutcome` per level, in
        order."""
        from repro.analysis.pipeline import QueryOutcome, WitnessData

        sess = self.session(c1, c2, summary_b, distinct_args, key=key)
        outcomes = []
        for witness, solved, stats in sess.query_batch(
            list(levels), use_prefilter=use_prefilter, budget=budget
        ):
            data = (
                WitnessData(
                    pattern=witness.pattern,
                    fields1=witness.fields1,
                    fields2=witness.fields2,
                )
                if witness is not None
                else None
            )
            outcomes.append(
                QueryOutcome(witness=data, solved=solved, stats=stats)
            )
        return outcomes

    def counters(self) -> Dict[str, int]:
        """Pool accounting: sessions created/reused/evicted/live, plus
        query and model-reuse totals (including closed sessions)."""
        queries = self._retired_queries
        model_hits = self._retired_model_hits
        for sess in self._sessions.values():
            queries += sess.queries
            model_hits += sess.model_hits
        return {
            "created": self.created,
            "reused": self.reused,
            "evicted": self.evicted,
            "live": len(self._sessions),
            "queries": queries,
            "model_hits": model_hits,
        }

    def close(self) -> None:
        """Drop every session (counters survive for reporting)."""
        for sess in self._sessions.values():
            self._retired_queries += sess.queries
            self._retired_model_hits += sess.model_hits
            sess.close()
        self._sessions.clear()


class AnomalyOracle:
    """Static anomaly detector, parameterised by consistency level.

    ``use_prefilter`` controls the cheap static screen that skips SAT
    queries with no conflict candidates (the DESIGN.md ablation knob);
    results are identical either way, only running time differs.

    ``strategy`` selects how the SAT queries are executed:

    - ``"serial"`` (default): the seed execution loop -- inline,
      uncached, one query at a time.  Kept verbatim as the reference
      both for results and for benchmark baselines.
    - ``"cached"``: the :mod:`repro.analysis.pipeline` planner with the
      deterministic in-process runner plus the structural memo cache.
    - ``"incremental"``: the pipeline with warm per-triple solver
      sessions (an :class:`OracleSession` pool): each focus triple's
      skeleton is encoded once on a persistent incremental solver, and
      re-queries at other consistency levels activate that level's
      axiom groups by assumption, retaining learned clauses and
      variable activity across the repair fixpoint and the level
      sweeps.
    - ``"parallel"``: the pipeline with a cold ``ProcessPoolExecutor``
      fan-out (degrading to in-process on single-core hosts) plus the
      memo cache.
    - ``"parallel-incremental"``: sharded warm-session workers -- one
      long-lived process per shard, each owning its own
      :class:`OracleSession` pool, with queries routed by the focus
      triple's structural fingerprint so every level sweep and fixpoint
      re-analysis of a triple lands on the same warm solver.  Degrades
      to the in-process incremental path on single-core hosts.
    - ``"auto"``: ``"parallel-incremental"`` when multiple cores are
      available, else ``"incremental"``; the resolved choice is
      recorded in :attr:`AnalysisReport.strategy`.
    - any object with a ``run(specs, level, distinct_args)`` method.

    Every strategy produces the same pair set; ``cache`` (a
    :class:`~repro.analysis.pipeline.QueryCache`) may be shared across
    oracles so repeated analyses only re-solve queries whose
    transactions actually changed.
    """

    def __init__(
        self,
        level: ConsistencyLevel = EC,
        use_prefilter: bool = True,
        distinct_args: bool = True,
        strategy: object = "serial",
        cache: Optional[object] = None,
        max_workers: Optional[int] = None,
        progress=None,
        budget=None,
    ):
        self.level = level
        self.use_prefilter = use_prefilter
        self.distinct_args = distinct_args
        self.strategy = strategy
        self.progress = progress
        self.budget = budget
        if strategy == "serial":
            self._pipeline = None
        else:
            from repro.analysis.pipeline import AnalysisPipeline

            self._pipeline = AnalysisPipeline(
                level,
                use_prefilter=use_prefilter,
                distinct_args=distinct_args,
                strategy=strategy,
                cache=cache,
                max_workers=max_workers,
                progress=progress,
                budget=budget,
            )

    @property
    def cache(self):
        """The pipeline's memo cache (None for the serial seed path)."""
        return self._pipeline.cache if self._pipeline is not None else None

    def close(self) -> None:
        """Release strategy resources (worker pools); serial is a no-op."""
        if self._pipeline is not None:
            self._pipeline.close()

    def analyze_many(self, programs) -> List[AnalysisReport]:
        """Analyze several programs, deduplicating and fanning their SAT
        queries out together (see :meth:`~repro.analysis.pipeline.
        AnalysisPipeline.analyze_many`).  The serial seed path has no
        batching machinery and simply analyzes in order."""
        if self._pipeline is not None:
            return self._pipeline.analyze_many(programs)
        return [self.analyze(program) for program in programs]

    def analyze_levels(self, program: ast.Program, levels) -> List[
        AnalysisReport
    ]:
        """Analyze one program at several consistency levels in one
        sweep, sharing each focus triple's (warm) solver work across
        the levels (see :meth:`~repro.analysis.pipeline.
        AnalysisPipeline.analyze_levels`).  The serial seed path simply
        analyzes level by level."""
        levels = list(levels)
        if self._pipeline is not None:
            return self._pipeline.analyze_levels(program, levels)
        saved = self.level
        try:
            reports = []
            for level in levels:
                self.level = level
                reports.append(self.analyze(program))
            return reports
        finally:
            self.level = saved

    def analyze(self, program: ast.Program) -> AnalysisReport:
        if self._pipeline is not None:
            return self._pipeline.analyze(program)
        from repro.events import emit

        start = time.perf_counter()
        summaries = summarize_program(program)
        emit(
            self.progress,
            "analyze.start",
            level=self.level.name,
            programs=1,
            transactions=len(summaries),
        )
        pairs: List[AccessPair] = []
        checked = 0
        sat_queries = 0
        work = [
            (summary, c1, c2)
            for summary in summaries.values()
            for c1, c2 in summary.ordered_pairs()
        ]
        for summary, c1, c2 in work:
            if self.budget is not None and self.budget.expired():
                raise deadline_error(
                    self.level.name, pairs, checked, len(work)
                )
            checked += 1
            witnesses: List[PairWitness] = []
            for other in summaries.values():
                encoder = PairEncoder(
                    summary, c1, c2, other, self.level,
                    distinct_args=self.distinct_args,
                )
                if self.use_prefilter and not encoder.collect_disjuncts():
                    continue
                sat_queries += 1
                try:
                    witness = encoder.solve(budget=self.budget)
                except BudgetExhaustedError:
                    # The current pair is half-checked: report only the
                    # fully established ones.
                    raise deadline_error(
                        self.level.name, pairs, checked - 1, len(work)
                    ) from None
                if witness is not None:
                    witnesses.append(witness)
            if witnesses:
                pairs.append(_merge_witnesses(summary, c1, c2, witnesses))
        elapsed = time.perf_counter() - start
        emit(
            self.progress,
            "analyze.done",
            level=self.level.name,
            pairs=len(pairs),
            elapsed_seconds=elapsed,
        )
        return AnalysisReport(
            level=self.level.name,
            pairs=pairs,
            pairs_checked=checked,
            sat_queries=sat_queries,
            elapsed_seconds=elapsed,
        )


def _merge_witnesses(
    summary: TransactionSummary,
    c1: CommandInfo,
    c2: CommandInfo,
    witnesses: List[PairWitness],
) -> AccessPair:
    fields1: FrozenSet[str] = frozenset()
    fields2: FrozenSet[str] = frozenset()
    interferers: List[str] = []
    patterns: List[str] = []
    for w in witnesses:
        fields1 |= w.fields1
        fields2 |= w.fields2
        if w.interferer not in interferers:
            interferers.append(w.interferer)
        if w.pattern not in patterns:
            patterns.append(w.pattern)
    return AccessPair(
        txn=summary.name,
        c1=c1.label,
        fields1=fields1,
        c2=c2.label,
        fields2=fields2,
        interferers=tuple(interferers),
        patterns=tuple(patterns),
    )


def detect_anomalies(
    program: ast.Program,
    level: ConsistencyLevel = EC,
    use_prefilter: bool = True,
) -> List[AccessPair]:
    """Convenience wrapper returning just the anomalous pairs."""
    return AnomalyOracle(level, use_prefilter).analyze(program).pairs
