"""Static serializability-anomaly detection (the paper's oracle ``O``).

The detector reduces "is this database access pair anomalous under
consistency level L?" to propositional satisfiability, mirroring the
paper's FOL-plus-Z3 reduction at the bound the paper's examples exercise:
two interfering transaction instances with loops unrolled once.

Pipeline:

1. :mod:`repro.analysis.accesses` summarises every database command
   (tables, read/written fields, primary-key expressions, dataflow);
2. :mod:`repro.analysis.aliasing` decides which command pairs may touch
   the same record (forced / impossible / solver-chosen);
3. :mod:`repro.analysis.encoding` builds, per candidate pair and
   interfering transaction, a SAT formula whose models are anomalous
   executions permitted by the consistency level;
4. :mod:`repro.analysis.oracle` runs the search and reports
   :class:`~repro.analysis.oracle.AccessPair` results (the chi tuples of
   Section 3.2).

Consistency levels: ``EC`` (record-level atomicity only), ``CC`` (causal:
session-prefix and monotone visibility), ``RR`` (repeatable read: frozen
per-transaction visibility), ``SC`` (serializable: totally ordered,
atomically visible transactions).
"""

from repro.analysis.consistency import ConsistencyLevel, EC, CC, RR, SC
from repro.analysis.accesses import CommandInfo, TransactionSummary, summarize_program
from repro.analysis.encoding import PairSession
from repro.analysis.oracle import (
    AccessPair,
    AnomalyOracle,
    OracleSession,
    detect_anomalies,
)
from repro.analysis.pipeline import (
    AnalysisPipeline,
    IncrementalStrategy,
    ParallelIncrementalStrategy,
    ParallelStrategy,
    PersistentQueryCache,
    QueryCache,
    QueryPlanner,
    SerialStrategy,
)

__all__ = [
    "ConsistencyLevel",
    "EC",
    "CC",
    "RR",
    "SC",
    "CommandInfo",
    "TransactionSummary",
    "summarize_program",
    "AccessPair",
    "AnomalyOracle",
    "OracleSession",
    "PairSession",
    "detect_anomalies",
    "AnalysisPipeline",
    "IncrementalStrategy",
    "ParallelIncrementalStrategy",
    "ParallelStrategy",
    "PersistentQueryCache",
    "QueryCache",
    "QueryPlanner",
    "SerialStrategy",
]
