"""Analysis execution pipeline: planned, cached, parallel SAT queries.

The seed oracle (:class:`repro.analysis.oracle.AnomalyOracle` with
``strategy="serial"``) discharges every ``(transaction, command pair,
interferer)`` SAT query inline, one at a time, and re-solves everything
from scratch on every call.  This module turns that loop into an
execution subsystem with three independent levers:

1. a :class:`QueryPlanner` that enumerates the oracle's queries into a
   small dependency DAG -- per access pair, the SAT *query* nodes feed a
   *merge* node -- and batches them into topological generations so a
   runner can fan out everything inside one generation;
2. pluggable runners: :class:`SerialStrategy` (deterministic in-process
   fallback), :class:`IncrementalStrategy` (warm per-triple solver
   sessions with activation-literal axiom groups -- see
   :class:`~repro.analysis.encoding.PairSession`), and
   :class:`ParallelStrategy` (a ``ProcessPoolExecutor`` fan-out that
   degrades to in-process execution on single-core hosts);
3. a :class:`QueryCache` memoising query outcomes under structural
   fingerprints of the participating :class:`TransactionSummary` data
   plus the consistency level, so a repair loop's re-analysis only
   re-solves queries whose transactions a rewrite actually touched.

Per-query results are independent of execution order, so every strategy
produces the same :class:`~repro.analysis.oracle.AnalysisReport` pair
set; queries are additionally solved with the constant-folding Tseitin
pass (``FormulaBuilder(fold_constants=True)``), which discharges the
same queries on a much smaller clause stream.

Caching is sound because a query's outcome is a pure function of its
fingerprinted inputs: the two focus commands, the interfering
transaction's full command list, the consistency level, and the
``distinct_args`` knob.  Transaction and interferer *names* are excluded
from the key (they only label the result), so rewrites that rename or
merge labels invalidate exactly the entries whose fingerprinted
structure changed.  One cross-level rule is exploited: every level's
axiom set extends EC's, so a query UNSAT under EC is UNSAT under any
level and the cached EC miss is reused verbatim.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.accesses import (
    CommandInfo,
    TransactionSummary,
    summarize_program,
)
from repro.analysis.consistency import ConsistencyLevel, by_name
from repro.analysis.encoding import PairEncoder, PairWitness, tables_may_conflict
from repro.lang import ast
from repro.smt.formula import big_or, evaluate


class WitnessData(NamedTuple):
    """A :class:`PairWitness` minus the interferer name (which is not part
    of the cache key and is re-attached by the consumer)."""

    pattern: str
    fields1: FrozenSet[str]
    fields2: FrozenSet[str]


class QueryOutcome(NamedTuple):
    """Result of executing one query: witness (or None), whether a SAT
    solve actually ran (False when the static screen emptied the query),
    and the solver's counters."""

    witness: Optional[WitnessData]
    solved: bool
    stats: Dict[str, int]


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------


def fingerprint_command(cmd: CommandInfo) -> str:
    """Stable structural digest of one command summary.

    Everything the encoder can observe is included; the owning
    transaction's *name* is not, so a renamed-but-identical transaction
    still hits the cache.
    """
    payload = repr(
        (
            cmd.label,
            cmd.kind,
            cmd.table,
            cmd.read_fields,
            cmd.write_fields,
            cmd.key_exprs,
            cmd.var,
            cmd.rmw_sources,
            cmd.uuid_key,
            cmd.in_loop,
            cmd.in_branch,
        )
    )
    return hashlib.sha1(payload.encode()).hexdigest()


def fingerprint_summary(summary: TransactionSummary) -> str:
    """Stable structural digest of a whole transaction summary."""
    payload = repr(summary.params).encode() + b"|".join(
        fingerprint_command(c).encode() for c in summary.commands
    )
    return hashlib.sha1(payload).hexdigest()


CacheKey = Tuple[str, str, str, str, bool]


def query_cache_key(
    c1_fp: str,
    c2_fp: str,
    b_fp: str,
    level: ConsistencyLevel,
    distinct_args: bool,
) -> CacheKey:
    return (c1_fp, c2_fp, b_fp, level.name, distinct_args)


# ---------------------------------------------------------------------------
# Memo cache
# ---------------------------------------------------------------------------


@dataclass
class _CacheEntry:
    witness: Optional[WitnessData]
    txns: FrozenSet[str]
    tables: FrozenSet[str]


class QueryCache:
    """Memo cache for anomaly queries, keyed by structural fingerprints.

    Correctness never depends on explicit invalidation -- a rewritten
    transaction fingerprints differently and simply misses -- but
    :meth:`invalidate` lets the repair engine drop entries touching the
    transactions/tables of an applied rewrite, bounding staleness and
    memory across a long fixpoint run.
    """

    def __init__(self) -> None:
        self._entries: Dict[CacheKey, _CacheEntry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, key: CacheKey) -> Tuple[bool, Optional[WitnessData]]:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return True, entry.witness
        if key[3] != "EC":
            # Every level's axioms extend EC's, so an EC-UNSAT query is
            # UNSAT at any level; reuse the (witness-free) outcome.
            ec_entry = self._entries.get(key[:3] + ("EC", key[4]))
            if ec_entry is not None and ec_entry.witness is None:
                self.hits += 1
                return True, None
        self.misses += 1
        return False, None

    def store(
        self,
        key: CacheKey,
        witness: Optional[WitnessData],
        txns: Iterable[str],
        tables: Iterable[str],
    ) -> None:
        self._entries[key] = _CacheEntry(
            witness=witness, txns=frozenset(txns), tables=frozenset(tables)
        )

    def invalidate(
        self,
        txns: Iterable[str] = (),
        tables: Iterable[str] = (),
    ) -> int:
        """Drop entries involving any of the given transaction names or
        tables; returns how many entries were removed."""
        txn_set = frozenset(txns)
        table_set = frozenset(tables)
        if not txn_set and not table_set:
            return 0
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.txns & txn_set or entry.tables & table_set
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()


# ---------------------------------------------------------------------------
# Query plan
# ---------------------------------------------------------------------------


@dataclass
class QuerySpec:
    """One SAT query: a focus pair of transaction ``a_name`` against one
    interfering transaction instance."""

    index: int
    batch: int
    a_name: str
    c1: CommandInfo
    c2: CommandInfo
    summary_b: TransactionSummary
    cache_key: CacheKey
    tables: FrozenSet[str]


@dataclass
class QueryBatch:
    """All queries contributing witnesses to one candidate access pair;
    the plan's merge node joins them back into an ``AccessPair``."""

    index: int
    summary_a: TransactionSummary
    c1: CommandInfo
    c2: CommandInfo
    queries: List[QuerySpec] = field(default_factory=list)


@dataclass(frozen=True)
class PlanNode:
    """A node of the plan DAG: a SAT query or a per-pair merge."""

    kind: str  # "query" | "merge"
    payload: int  # query index or batch index
    deps: Tuple[int, ...] = ()


@dataclass
class QueryPlan:
    """The planner's output: batches plus a topologically staged DAG."""

    level: ConsistencyLevel
    distinct_args: bool
    batches: List[QueryBatch]
    nodes: List[PlanNode]

    def queries(self) -> List[QuerySpec]:
        return [q for batch in self.batches for q in batch.queries]

    def generations(self) -> List[List[PlanNode]]:
        """Kahn-style topological generations: every node in generation
        ``i`` depends only on nodes of earlier generations, so a runner
        may execute each generation with unbounded fan-out."""
        remaining: Dict[int, Set[int]] = {
            i: set(node.deps) for i, node in enumerate(self.nodes)
        }
        dependants: Dict[int, List[int]] = {i: [] for i in remaining}
        for i, node in enumerate(self.nodes):
            for dep in node.deps:
                dependants[dep].append(i)
        ready = sorted(i for i, deps in remaining.items() if not deps)
        generations: List[List[PlanNode]] = []
        seen = 0
        while ready:
            generations.append([self.nodes[i] for i in ready])
            seen += len(ready)
            next_ready: Set[int] = set()
            for i in ready:
                for j in dependants[i]:
                    remaining[j].discard(i)
                    if not remaining[j]:
                        next_ready.add(j)
            for i in ready:
                remaining.pop(i, None)
            ready = sorted(next_ready)
        if seen != len(self.nodes):
            raise ValueError("query plan contains a dependency cycle")
        return generations


class QueryPlanner:
    """Enumerates the oracle's SAT queries for one program."""

    def plan(
        self,
        summaries: Dict[str, TransactionSummary],
        level: ConsistencyLevel,
        distinct_args: bool,
    ) -> QueryPlan:
        summary_fps = {
            name: fingerprint_summary(s) for name, s in summaries.items()
        }
        command_fps = {
            (name, c.label): fingerprint_command(c)
            for name, s in summaries.items()
            for c in s.commands
        }
        batches: List[QueryBatch] = []
        nodes: List[PlanNode] = []
        query_index = 0
        for summary in summaries.values():
            for c1, c2 in summary.ordered_pairs():
                batch = QueryBatch(
                    index=len(batches), summary_a=summary, c1=c1, c2=c2
                )
                query_nodes: List[int] = []
                for other in summaries.values():
                    key = query_cache_key(
                        command_fps[(summary.name, c1.label)],
                        command_fps[(summary.name, c2.label)],
                        summary_fps[other.name],
                        level,
                        distinct_args,
                    )
                    tables = frozenset(
                        {c1.table, c2.table}
                        | {c.table for c in other.commands}
                    )
                    batch.queries.append(
                        QuerySpec(
                            index=query_index,
                            batch=batch.index,
                            a_name=summary.name,
                            c1=c1,
                            c2=c2,
                            summary_b=other,
                            cache_key=key,
                            tables=tables,
                        )
                    )
                    query_nodes.append(len(nodes))
                    nodes.append(PlanNode(kind="query", payload=query_index))
                    query_index += 1
                nodes.append(
                    PlanNode(
                        kind="merge",
                        payload=batch.index,
                        deps=tuple(query_nodes),
                    )
                )
                batches.append(batch)
        return QueryPlan(
            level=level,
            distinct_args=distinct_args,
            batches=batches,
            nodes=nodes,
        )


# ---------------------------------------------------------------------------
# Query execution
# ---------------------------------------------------------------------------


def solve_query(
    c1: CommandInfo,
    c2: CommandInfo,
    summary_b: TransactionSummary,
    level: ConsistencyLevel,
    distinct_args: bool,
    use_prefilter: bool = True,
) -> QueryOutcome:
    """Discharge one anomaly query; pure function of its arguments.

    Mirrors :meth:`PairEncoder.solve` but collects the candidate
    disjuncts exactly once (the seed path recomputes them when the
    oracle's prefilter is on) and runs on the folding builder.  The
    witness is identical either way; ``use_prefilter`` only mirrors the
    seed oracle's accounting, which bills a disjunct-free query as a
    SAT query when the static screen is off.
    """
    if not tables_may_conflict(c1, c2, summary_b):
        # No interferer command shares a table with the focus pair, so
        # the disjunct set is empty -- skip building the encoder at all.
        return QueryOutcome(witness=None, solved=not use_prefilter, stats={})
    encoder = PairEncoder(
        None, c1, c2, summary_b, level,
        distinct_args=distinct_args, fold_constants=True,
    )
    disjuncts = encoder.collect_disjuncts()
    if not disjuncts:
        return QueryOutcome(witness=None, solved=not use_prefilter, stats={})
    encoder.assert_axioms()
    encoder.builder.add(big_or([d.formula for d in disjuncts]))
    model = encoder.builder.check()
    stats = encoder.builder.solver.stats()
    if model is None:
        return QueryOutcome(witness=None, solved=True, stats=stats)
    fields1: FrozenSet[str] = frozenset()
    fields2: FrozenSet[str] = frozenset()
    pattern = ""
    for d in disjuncts:
        if evaluate(d.formula, model):
            fields1 |= d.fields1
            fields2 |= d.fields2
            pattern = pattern or d.pattern
    return QueryOutcome(
        witness=WitnessData(
            pattern=pattern or disjuncts[0].pattern,
            fields1=fields1,
            fields2=fields2,
        ),
        solved=True,
        stats=stats,
    )


def _solve_chunk(payload):
    """Worker entry point: solve a chunk of queries in one process."""
    level_name, distinct_args, use_prefilter, chunk = payload
    level = by_name(level_name)
    out = []
    for index, c1, c2, summary_b in chunk:
        out.append(
            (
                index,
                solve_query(c1, c2, summary_b, level, distinct_args, use_prefilter),
            )
        )
    return out


class SerialStrategy:
    """Deterministic in-process execution, in plan order.

    Named ``"cached"`` in reports: it is the pipeline's serial runner,
    always paired with the memo cache (``strategy="serial"`` on the
    oracle means the seed loop instead, which bypasses the pipeline).
    """

    name = "cached"

    def run(
        self,
        specs: Sequence[QuerySpec],
        level: ConsistencyLevel,
        distinct_args: bool,
        use_prefilter: bool = True,
    ) -> List[QueryOutcome]:
        return [
            solve_query(s.c1, s.c2, s.summary_b, level, distinct_args, use_prefilter)
            for s in specs
        ]

    def close(self) -> None:  # symmetry with ParallelStrategy
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ParallelStrategy:
    """``ProcessPoolExecutor`` fan-out over query chunks.

    Each query is an independent bounded SAT instance, so the fan-out is
    embarrassingly parallel; results are reassembled in plan order, which
    keeps the output bit-identical to the serial runner.  On single-core
    hosts (or ``max_workers=1``) the pool would be pure IPC overhead, so
    execution degrades to the in-process path.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunks_per_worker: int = 4,
    ):
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunks_per_worker = chunks_per_worker
        self._executor = None
        self._serial = SerialStrategy()

    @property
    def name(self) -> str:
        return f"parallel[{self.max_workers}]"

    def _ensure_executor(self):
        if self._executor is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._executor

    def run(
        self,
        specs: Sequence[QuerySpec],
        level: ConsistencyLevel,
        distinct_args: bool,
        use_prefilter: bool = True,
    ) -> List[QueryOutcome]:
        if self.max_workers <= 1 or len(specs) <= 1:
            return self._serial.run(specs, level, distinct_args, use_prefilter)
        chunk_count = min(
            len(specs), self.max_workers * self.chunks_per_worker
        )
        chunk_size = -(-len(specs) // chunk_count)
        chunks = [
            [
                (s.index, s.c1, s.c2, s.summary_b)
                for s in specs[i : i + chunk_size]
            ]
            for i in range(0, len(specs), chunk_size)
        ]
        payloads = [
            (level.name, distinct_args, use_prefilter, chunk) for chunk in chunks
        ]
        try:
            executor = self._ensure_executor()
            by_index: Dict[int, QueryOutcome] = {}
            for chunk_result in executor.map(_solve_chunk, payloads):
                for index, outcome in chunk_result:
                    by_index[index] = outcome
        except Exception:
            # A broken pool (killed worker, unpicklable corner case) must
            # not take the analysis down: fall back to in-process.
            self.close()
            return self._serial.run(specs, level, distinct_args, use_prefilter)
        return [by_index[s.index] for s in specs]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class IncrementalStrategy:
    """Warm incremental solving over an
    :class:`~repro.analysis.oracle.OracleSession` pool.

    Every query lands on the persistent session of its focus triple
    (keyed by structural fingerprint, so the key is stable across the
    repair fixpoint's re-analyses): the first query pays for skeleton
    registration, later queries at other consistency levels reduce to
    one assumption-based solve on the warm solver with the axiom groups
    of that level activated.  The pool lives as long as the strategy
    instance, which the oracle/pipeline keep across ``analyze()`` calls
    -- that is what carries solver state from one fixpoint iteration to
    the next.

    The pool (and each session) pickles by shedding warm solver state,
    so a ``ProcessPool`` worker handed this strategy re-warms sessions
    lazily instead of shipping solver internals across the boundary.
    """

    name = "incremental"

    def __init__(self, pool=None):
        if pool is None:
            from repro.analysis.oracle import OracleSession

            pool = OracleSession()
        self.pool = pool

    def run(
        self,
        specs: Sequence[QuerySpec],
        level: ConsistencyLevel,
        distinct_args: bool,
        use_prefilter: bool = True,
    ) -> List[QueryOutcome]:
        return [
            self.pool.solve(
                s.c1,
                s.c2,
                s.summary_b,
                level,
                distinct_args,
                use_prefilter=use_prefilter,
                key=(s.cache_key[0], s.cache_key[1], s.cache_key[2], distinct_args),
            )
            for s in specs
        ]

    def close(self) -> None:
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def resolve_strategy(spec, max_workers: Optional[int] = None):
    """Map a strategy spec (name or instance) to a runner instance.

    Names: ``"cached"`` (serial runner + memo cache), ``"incremental"``
    (warm per-triple solver sessions + memo cache), ``"parallel"``
    (process fan-out + memo cache), ``"auto"`` (parallel when the host
    has more than one core, else incremental sessions).  ``"serial"`` is
    handled by the oracle itself (the seed execution loop) and is not a
    pipeline strategy.
    """
    if spec is None or spec == "cached":
        return SerialStrategy()
    if spec == "incremental":
        return IncrementalStrategy()
    if spec == "parallel":
        return ParallelStrategy(max_workers=max_workers)
    if spec == "auto":
        workers = max_workers or os.cpu_count() or 1
        if workers > 1:
            return ParallelStrategy(max_workers=workers)
        return IncrementalStrategy()
    if hasattr(spec, "run"):
        return spec
    raise ValueError(
        f"unknown analysis strategy {spec!r}; expected 'serial', 'cached', "
        "'incremental', 'parallel', 'auto', or a strategy object"
    )


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


class AnalysisPipeline:
    """Plan, memoise, execute, and merge the oracle's SAT queries."""

    def __init__(
        self,
        level: ConsistencyLevel,
        use_prefilter: bool = True,
        distinct_args: bool = True,
        strategy=None,
        cache: Optional[QueryCache] = None,
        max_workers: Optional[int] = None,
    ):
        self.level = level
        self.use_prefilter = use_prefilter
        self.distinct_args = distinct_args
        self.planner = QueryPlanner()
        self.strategy = resolve_strategy(strategy, max_workers)
        self.cache = cache if cache is not None else QueryCache()

    def analyze(self, program: ast.Program):
        from repro.analysis.oracle import AnalysisReport, _merge_witnesses

        start = time.perf_counter()
        summaries = summarize_program(program)
        plan = self.planner.plan(summaries, self.level, self.distinct_args)
        specs = plan.queries()

        outcomes: Dict[int, Optional[WitnessData]] = {}
        pending: Dict[CacheKey, List[QuerySpec]] = {}
        hits = misses = 0
        for spec in specs:
            found, witness = self.cache.lookup(spec.cache_key)
            if found:
                hits += 1
                outcomes[spec.index] = witness
            else:
                misses += 1
                # Structurally identical queries (same fingerprints) are
                # solved once; every spec sharing the key gets the result.
                pending.setdefault(spec.cache_key, []).append(spec)

        sat_queries = 0
        solver_stats: Dict[str, int] = {}
        if pending:
            unique = [group[0] for group in pending.values()]
            results = self.strategy.run(
                unique, self.level, self.distinct_args, self.use_prefilter
            )
            for spec, outcome in zip(unique, results):
                if outcome.solved:
                    sat_queries += 1
                for key, value in outcome.stats.items():
                    solver_stats[key] = solver_stats.get(key, 0) + value
                group = pending[spec.cache_key]
                for twin in group:
                    outcomes[twin.index] = outcome.witness
                self.cache.store(
                    spec.cache_key,
                    outcome.witness,
                    txns={s.a_name for s in group}
                    | {s.summary_b.name for s in group},
                    tables=frozenset().union(*(s.tables for s in group)),
                )

        # Merge stage.  The plan DAG (see generations()) stages every
        # query before its batch's merge node; since all queries above
        # have completed, the merges reduce to batch-order iteration.
        pairs = []
        for batch in plan.batches:
            witnesses = [
                PairWitness(
                    interferer=spec.summary_b.name,
                    pattern=outcomes[spec.index].pattern,
                    fields1=outcomes[spec.index].fields1,
                    fields2=outcomes[spec.index].fields2,
                )
                for spec in batch.queries
                if outcomes[spec.index] is not None
            ]
            if witnesses:
                pairs.append(
                    _merge_witnesses(batch.summary_a, batch.c1, batch.c2, witnesses)
                )

        elapsed = time.perf_counter() - start
        return AnalysisReport(
            level=self.level.name,
            pairs=pairs,
            pairs_checked=len(plan.batches),
            sat_queries=sat_queries,
            elapsed_seconds=elapsed,
            strategy=self.strategy.name,
            cache_hits=hits,
            cache_misses=misses,
            solver_stats=solver_stats,
        )

    def close(self) -> None:
        self.strategy.close()
