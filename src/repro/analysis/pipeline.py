"""Analysis execution pipeline: planned, cached, parallel SAT queries.

The seed oracle (:class:`repro.analysis.oracle.AnomalyOracle` with
``strategy="serial"``) discharges every ``(transaction, command pair,
interferer)`` SAT query inline, one at a time, and re-solves everything
from scratch on every call.  This module turns that loop into an
execution subsystem with three independent levers:

1. a :class:`QueryPlanner` that enumerates the oracle's queries into a
   small dependency DAG -- per access pair, the SAT *query* nodes feed a
   *merge* node -- and batches them into topological generations so a
   runner can fan out everything inside one generation;
2. pluggable runners: :class:`SerialStrategy` (deterministic in-process
   fallback), :class:`IncrementalStrategy` (warm per-triple solver
   sessions with activation-literal axiom groups -- see
   :class:`~repro.analysis.encoding.PairSession`),
   :class:`ParallelStrategy` (a cold ``ProcessPoolExecutor`` fan-out),
   and :class:`ParallelIncrementalStrategy` (long-lived shard workers,
   each owning a warm session pool, with queries routed by structural
   fingerprint so a triple always lands on its warm solver; both
   process-pool strategies degrade to in-process execution on
   single-core hosts);
3. a :class:`QueryCache` memoising query outcomes under structural
   fingerprints of the participating :class:`TransactionSummary` data
   plus the consistency level, so a repair loop's re-analysis only
   re-solves queries whose transactions a rewrite actually touched --
   and :class:`PersistentQueryCache`, the same cache written through to
   a sqlite file so outcomes survive across processes and runs, with
   versioned invalidation keyed to the encoding's source fingerprint.

Per-query results are independent of execution order, so every strategy
produces the same :class:`~repro.analysis.oracle.AnalysisReport` pair
set; queries are additionally solved with the constant-folding Tseitin
pass (``FormulaBuilder(fold_constants=True)``), which discharges the
same queries on a much smaller clause stream.

Caching is sound because a query's outcome is a pure function of its
fingerprinted inputs: the two focus commands, the interfering
transaction's full command list, the consistency level, and the
``distinct_args`` knob.  Transaction and interferer *names* are excluded
from the key (they only label the result), so rewrites that rename or
merge labels invalidate exactly the entries whose fingerprinted
structure changed.  One cross-level rule is exploited: every level's
axiom set extends EC's, so a query UNSAT under EC is UNSAT under any
level and the cached EC miss is reused verbatim.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.accesses import (
    CommandInfo,
    TransactionSummary,
    summarize_program,
)
from repro.analysis.consistency import ConsistencyLevel, by_name
from repro.analysis.encoding import (
    PairEncoder,
    PairWitness,
    has_disjuncts,
    tables_may_conflict,
)
from repro.errors import BudgetExhaustedError
from repro.faults import FaultInjected, failpoint_bytes
from repro.lang import ast
from repro.smt.formula import big_or, evaluate


class WitnessData(NamedTuple):
    """A :class:`PairWitness` minus the interferer name (which is not part
    of the cache key and is re-attached by the consumer)."""

    pattern: str
    fields1: FrozenSet[str]
    fields2: FrozenSet[str]


class QueryOutcome(NamedTuple):
    """Result of executing one query: witness (or None), whether a SAT
    solve actually ran (False when the static screen emptied the query),
    and the solver's counters."""

    witness: Optional[WitnessData]
    solved: bool
    stats: Dict[str, int]


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------


@lru_cache(maxsize=65536)
def fingerprint_command(cmd: CommandInfo) -> str:
    """Stable structural digest of one command summary.

    Everything the encoder can observe is included; the owning
    transaction's *name* is not, so a renamed-but-identical transaction
    still hits the cache.  Memoised: summaries are frozen dataclasses,
    and the planner re-fingerprints the same commands on every repair
    fixpoint iteration and level sweep.
    """
    payload = repr(
        (
            cmd.label,
            cmd.kind,
            cmd.table,
            cmd.read_fields,
            cmd.write_fields,
            cmd.key_exprs,
            cmd.var,
            cmd.rmw_sources,
            cmd.uuid_key,
            cmd.in_loop,
            cmd.in_branch,
        )
    )
    return hashlib.sha1(payload.encode()).hexdigest()


@lru_cache(maxsize=65536)
def fingerprint_summary(summary: TransactionSummary) -> str:
    """Stable structural digest of a whole transaction summary."""
    payload = repr(summary.params).encode() + b"|".join(
        fingerprint_command(c).encode() for c in summary.commands
    )
    return hashlib.sha1(payload).hexdigest()


CacheKey = Tuple[str, str, str, str, bool]


def query_cache_key(
    c1_fp: str,
    c2_fp: str,
    b_fp: str,
    level: ConsistencyLevel,
    distinct_args: bool,
) -> CacheKey:
    return (c1_fp, c2_fp, b_fp, level.name, distinct_args)


# ---------------------------------------------------------------------------
# Memo cache
# ---------------------------------------------------------------------------


@dataclass
class _CacheEntry:
    witness: Optional[WitnessData]
    txns: FrozenSet[str]
    tables: FrozenSet[str]


class QueryCache:
    """Memo cache for anomaly queries, keyed by structural fingerprints.

    Correctness never depends on explicit invalidation -- a rewritten
    transaction fingerprints differently and simply misses, which is
    what the repair fixpoint itself relies on -- but :meth:`invalidate`
    lets a long-lived caller (a driver holding one cache across many
    repair runs, or a service evicting a retired benchmark) drop the
    entries touching given transaction names or tables, bounding
    staleness and memory.  Entries are indexed by their participating
    transaction names and tables on the way in, so invalidation walks
    only the touched entries (O(touched)), not the whole cache.
    """

    def __init__(self) -> None:
        self._entries: Dict[CacheKey, _CacheEntry] = {}
        self._by_txn: Dict[str, Set[CacheKey]] = {}
        self._by_table: Dict[str, Set[CacheKey]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, key: CacheKey) -> Tuple[bool, Optional[WitnessData]]:
        found, witness = self._find(key)
        if found:
            self.hits += 1
        else:
            self.misses += 1
        return found, witness

    def _find(self, key: CacheKey) -> Tuple[bool, Optional[WitnessData]]:
        """Uncounted lookup; subclasses extend it with further tiers."""
        entry = self._entries.get(key)
        if entry is not None:
            return True, entry.witness
        if key[3] != "EC":
            # Every level's axioms extend EC's, so an EC-UNSAT query is
            # UNSAT at any level; reuse the (witness-free) outcome.
            ec_entry = self._entries.get(key[:3] + ("EC", key[4]))
            if ec_entry is not None and ec_entry.witness is None:
                return True, None
        return False, None

    def store(
        self,
        key: CacheKey,
        witness: Optional[WitnessData],
        txns: Iterable[str],
        tables: Iterable[str],
    ) -> None:
        self._install(key, witness, txns, tables)

    def _install(
        self,
        key: CacheKey,
        witness: Optional[WitnessData],
        txns: Iterable[str],
        tables: Iterable[str],
    ) -> _CacheEntry:
        """Place an entry in the in-memory store and its indexes."""
        old = self._entries.get(key)
        if old is not None:
            self._unindex(key, old)
        entry = _CacheEntry(
            witness=witness, txns=frozenset(txns), tables=frozenset(tables)
        )
        self._entries[key] = entry
        for txn in entry.txns:
            self._by_txn.setdefault(txn, set()).add(key)
        for table in entry.tables:
            self._by_table.setdefault(table, set()).add(key)
        return entry

    def _unindex(self, key: CacheKey, entry: _CacheEntry) -> None:
        for txn in entry.txns:
            keys = self._by_txn.get(txn)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_txn[txn]
        for table in entry.tables:
            keys = self._by_table.get(table)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_table[table]

    def _doomed_keys(
        self, txn_set: FrozenSet[str], table_set: FrozenSet[str]
    ) -> Set[CacheKey]:
        doomed: Set[CacheKey] = set()
        for txn in txn_set:
            doomed |= self._by_txn.get(txn, set())
        for table in table_set:
            doomed |= self._by_table.get(table, set())
        return doomed

    def _remove(self, keys: Iterable[CacheKey]) -> None:
        for key in keys:
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._unindex(key, entry)

    def invalidate(
        self,
        txns: Iterable[str] = (),
        tables: Iterable[str] = (),
    ) -> int:
        """Drop entries involving any of the given transaction names or
        tables; returns how many entries were removed.  Touches only the
        entries the inverted indexes name, never the whole store."""
        txn_set = frozenset(txns)
        table_set = frozenset(tables)
        if not txn_set and not table_set:
            return 0
        doomed = self._doomed_keys(txn_set, table_set)
        self._remove(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._by_txn.clear()
        self._by_table.clear()

    def close(self) -> None:  # symmetry with PersistentQueryCache
        pass


class PersistentQueryCache(QueryCache):
    """A :class:`QueryCache` backed by a sqlite file under ``cache_dir``.

    The in-memory tier behaves exactly like the plain cache; misses fall
    through to the database, and every store is written through, so a
    later process pointed at the same directory warm-starts with the
    previous run's outcomes (``repro table1 --cache-dir``, repeated
    ``repro bench`` runs, a repair fixpoint resumed after a crash).

    Entries are stamped with :func:`~repro.analysis.encoding.
    encoding_fingerprint`; opening a cache written by a different
    encoding version drops every persisted row, so a code change can
    never replay stale outcomes.  The sqlite side mirrors the in-memory
    inverted indexes with a ``participants`` table, keeping
    :meth:`invalidate` O(touched) across runs too.

    Durability is deliberately relaxed (``synchronous=OFF``, and writes
    batched into one long transaction committed every
    ``_COMMIT_EVERY`` stores and on :meth:`close` -- per-store
    autocommit would make a cold run pay a transaction per query): the
    cache is a pure memo -- a crash can at worst lose or corrupt it,
    and a corrupt file is detected on open and rebuilt empty.  Reads on
    the same connection see the uncommitted writes; other processes see
    them after :meth:`close`.
    """

    _COMMIT_EVERY = 512

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS meta (
            key TEXT PRIMARY KEY, value TEXT NOT NULL);
        CREATE TABLE IF NOT EXISTS entries (
            c1 TEXT NOT NULL, c2 TEXT NOT NULL, b TEXT NOT NULL,
            level TEXT NOT NULL, distinct_args INTEGER NOT NULL,
            witness TEXT, txns TEXT NOT NULL, tabs TEXT NOT NULL,
            checksum TEXT,
            PRIMARY KEY (c1, c2, b, level, distinct_args));
        CREATE TABLE IF NOT EXISTS participants (
            kind TEXT NOT NULL, name TEXT NOT NULL,
            c1 TEXT NOT NULL, c2 TEXT NOT NULL, b TEXT NOT NULL,
            level TEXT NOT NULL, distinct_args INTEGER NOT NULL);
        CREATE INDEX IF NOT EXISTS participants_by_name
            ON participants (kind, name);
        CREATE INDEX IF NOT EXISTS participants_by_key
            ON participants (c1, c2, b, level, distinct_args);
    """

    def __init__(self, cache_dir: str, version: Optional[str] = None):
        super().__init__()
        import sqlite3

        from repro.analysis.encoding import encoding_fingerprint

        self.cache_dir = cache_dir
        self.version = version or encoding_fingerprint()
        self.persistent_hits = 0
        self.version_evictions = 0
        self.quarantined = 0
        self._db_broken = False
        self._pending_writes = 0
        os.makedirs(cache_dir, exist_ok=True)
        self.path = os.path.join(cache_dir, "oracle_cache.sqlite")
        self._conn = None
        # check_same_thread=False: a long-lived holder (the API
        # Workspace, and the HTTP service on top of it) opens the cache
        # on its constructing thread but stores/looks up from whichever
        # thread holds its lock.  Callers already serialize all cache
        # access (the workspace lock; the CLI is single-threaded), and
        # sqlite connections are safe to move between threads as long
        # as uses never overlap -- without this flag the first
        # cross-thread store raises ProgrammingError, which _guard_db
        # would swallow into a silent memory-only downgrade.
        connect = lambda target: sqlite3.connect(  # noqa: E731
            target, isolation_level=None, check_same_thread=False
        )
        try:
            self._conn = connect(self.path)
            self._open_pragmas()
            self._conn.executescript(self._SCHEMA)
            self._migrate_schema()
        except sqlite3.DatabaseError:
            # Not a sqlite file (torn write, foreign junk): rebuild
            # once -- removing the WAL/shm sidecars too, or sqlite may
            # replay a stale WAL into the fresh empty database.
            try:
                if self._conn is not None:
                    self._conn.close()
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.remove(self.path + suffix)
                    except FileNotFoundError:
                        pass
                self._conn = connect(self.path)
                self._open_pragmas()
                self._conn.executescript(self._SCHEMA)
            except (sqlite3.Error, OSError):  # pragma: no cover - disk gone
                self._db_broken = True
        if self._conn is None:  # pragma: no cover - connect itself failed
            self._conn = connect(":memory:")
        if not self._db_broken:
            # The version handshake needs the write lock; a concurrent
            # writer holding its batched transaction past busy_timeout
            # must degrade this opener to memory-only, not crash it.
            try:
                stored = self._conn.execute(
                    "SELECT value FROM meta WHERE key = 'encoding_version'"
                ).fetchone()
                if stored is None or stored[0] != self.version:
                    if stored is not None:
                        self.version_evictions = self._db_len()
                    self._conn.execute("DELETE FROM entries")
                    self._conn.execute("DELETE FROM participants")
                    self._conn.execute(
                        "INSERT OR REPLACE INTO meta "
                        "VALUES ('encoding_version', ?)",
                        (self.version,),
                    )
            except sqlite3.Error as error:
                self._guard_db(error)
        # Rows written during this run are always in memory too, so disk
        # lookups only ever pay off for rows persisted by *earlier* runs;
        # a store that opened empty can skip them entirely.
        self._persisted_at_open = 0 if self._db_broken else self._db_len()

    def _migrate_schema(self) -> None:
        # Caches written before entries grew a checksum column lack it
        # (CREATE TABLE IF NOT EXISTS never alters); add it in place so
        # the version handshake, not the schema, decides their fate.
        cols = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(entries)")
        }
        if "checksum" not in cols:
            self._conn.execute("ALTER TABLE entries ADD COLUMN checksum TEXT")

    @staticmethod
    def _checksum(raw_witness, txns_json: str, tabs_json: str) -> str:
        payload = "|".join((raw_witness or "", txns_json, tabs_json))
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def _open_pragmas(self) -> None:
        # WAL lets concurrent readers proceed under an open write
        # transaction, and the busy timeout makes a second writer wait
        # instead of failing instantly; a still-contended (or otherwise
        # erroring) statement trips _guard_db, which drops this process
        # to memory-only rather than aborting the analysis.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA busy_timeout=5000")

    def _guard_db(self, error: Exception) -> None:
        """A cache is a memo: a failing store must never take the run
        down.  Disable the persistent tier for this process and keep
        serving the in-memory one."""
        import sqlite3

        self._db_broken = True
        self._persisted_at_open = 0  # skip all further disk lookups
        try:
            if self._conn.in_transaction:
                self._conn.rollback()
        except sqlite3.Error:  # pragma: no cover - double fault
            pass

    def __len__(self) -> int:
        # Every persisted row a run saw is also in memory, so the db
        # count dominates (it may hold rows from earlier runs too).
        return max(len(self._entries), self._db_len())

    def _db_len(self) -> int:
        import sqlite3

        if self._db_broken:
            return 0
        try:
            return self._conn.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]
        except sqlite3.Error as error:
            self._guard_db(error)
            return 0

    def _find(self, key: CacheKey) -> Tuple[bool, Optional[WitnessData]]:
        found, witness = super()._find(key)
        if found:
            return True, witness
        if not self._persisted_at_open:
            return False, None
        row = self._db_fetch(key)
        if row is not None:
            self.persistent_hits += 1
            return True, self._install(key, *row).witness
        if key[3] != "EC":
            ec_row = self._db_fetch(key[:3] + ("EC", key[4]))
            if ec_row is not None and ec_row[0] is None:
                self.persistent_hits += 1
                self._install(key[:3] + ("EC", key[4]), *ec_row)
                return True, None
        return False, None

    def _db_fetch(self, key: CacheKey):
        import sqlite3

        try:
            row = self._conn.execute(
                "SELECT witness, txns, tabs, checksum FROM entries "
                "WHERE c1=? AND c2=? AND b=? AND level=? AND distinct_args=?",
                self._db_key(key),
            ).fetchone()
        except sqlite3.Error as error:
            self._guard_db(error)
            return None
        if row is None:
            return None
        raw_witness, txns, tables, checksum = row
        # Re-decode through the corruption failpoint, then verify the
        # stored checksum: a torn or bit-flipped row is quarantined
        # (deleted) and reported as a miss, so the caller re-solves and
        # re-stores a clean entry instead of replaying garbage.
        payload = "|".join(
            (raw_witness or "", txns, tables)
        ).encode("utf-8")
        try:
            payload = failpoint_bytes("cache.read", payload)
        except FaultInjected:
            return None
        if checksum is not None and (
            hashlib.sha1(payload).hexdigest() != checksum
        ):
            self._quarantine(key)
            return None
        witness = None
        try:
            if raw_witness is not None:
                data = json.loads(raw_witness)
                witness = WitnessData(
                    pattern=data["pattern"],
                    fields1=frozenset(data["fields1"]),
                    fields2=frozenset(data["fields2"]),
                )
            return witness, json.loads(txns), json.loads(tables)
        except (ValueError, KeyError, TypeError):
            # Undetectable without the checksum (legacy row) or a
            # collision-free corruption: still never crash the run.
            self._quarantine(key)
            return None

    def _quarantine(self, key: CacheKey) -> None:
        import sqlite3

        self.quarantined += 1
        db_key = self._db_key(key)
        where = "c1=? AND c2=? AND b=? AND level=? AND distinct_args=?"
        try:
            self._begin_write()
            self._conn.execute(f"DELETE FROM entries WHERE {where}", db_key)
            self._conn.execute(
                f"DELETE FROM participants WHERE {where}", db_key
            )
            self._written()
        except sqlite3.Error as error:
            self._guard_db(error)

    @staticmethod
    def _db_key(key: CacheKey) -> Tuple[str, str, str, str, int]:
        return (key[0], key[1], key[2], key[3], int(key[4]))

    def _begin_write(self) -> None:
        if not self._conn.in_transaction:
            self._conn.execute("BEGIN")

    def _written(self) -> None:
        self._pending_writes += 1
        if self._pending_writes >= self._COMMIT_EVERY:
            self._commit()

    def _commit(self) -> None:
        if self._conn.in_transaction:
            self._conn.commit()
        self._pending_writes = 0

    def store(
        self,
        key: CacheKey,
        witness: Optional[WitnessData],
        txns: Iterable[str],
        tables: Iterable[str],
    ) -> None:
        import sqlite3

        entry = self._install(key, witness, txns, tables)
        if self._db_broken:
            return
        raw_witness = None
        if witness is not None:
            raw_witness = json.dumps(
                {
                    "pattern": witness.pattern,
                    "fields1": sorted(witness.fields1),
                    "fields2": sorted(witness.fields2),
                }
            )
        db_key = self._db_key(key)
        txns_json = json.dumps(sorted(entry.txns))
        tabs_json = json.dumps(sorted(entry.tables))
        try:
            self._begin_write()
            self._conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(c1, c2, b, level, distinct_args, "
                "witness, txns, tabs, checksum) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                db_key
                + (
                    raw_witness,
                    txns_json,
                    tabs_json,
                    self._checksum(raw_witness, txns_json, tabs_json),
                ),
            )
            self._conn.execute(
                "DELETE FROM participants WHERE c1=? AND c2=? AND b=? "
                "AND level=? AND distinct_args=?",
                db_key,
            )
            self._conn.executemany(
                "INSERT INTO participants VALUES (?, ?, ?, ?, ?, ?, ?)",
                [("txn", name) + db_key for name in entry.txns]
                + [("table", name) + db_key for name in entry.tables],
            )
            self._written()
        except sqlite3.Error as error:
            self._guard_db(error)

    def invalidate(
        self,
        txns: Iterable[str] = (),
        tables: Iterable[str] = (),
    ) -> int:
        import sqlite3

        txn_set = frozenset(txns)
        table_set = frozenset(tables)
        if not txn_set and not table_set:
            return 0
        doomed = self._doomed_keys(txn_set, table_set)
        try:
            if not self._db_broken:
                for kind, names in (("txn", txn_set), ("table", table_set)):
                    for name in names:
                        for db_key in self._conn.execute(
                            "SELECT c1, c2, b, level, distinct_args "
                            "FROM participants WHERE kind=? AND name=?",
                            (kind, name),
                        ).fetchall():
                            doomed.add(
                                (
                                    db_key[0],
                                    db_key[1],
                                    db_key[2],
                                    db_key[3],
                                    bool(db_key[4]),
                                )
                            )
        except sqlite3.Error as error:
            self._guard_db(error)
        self._remove(doomed)
        if doomed and not self._db_broken:
            try:
                self._begin_write()
                for key in doomed:
                    db_key = self._db_key(key)
                    where = (
                        "c1=? AND c2=? AND b=? AND level=? AND distinct_args=?"
                    )
                    self._conn.execute(
                        f"DELETE FROM entries WHERE {where}", db_key
                    )
                    self._conn.execute(
                        f"DELETE FROM participants WHERE {where}", db_key
                    )
                    self._written()
            except sqlite3.Error as error:
                self._guard_db(error)
        return len(doomed)

    def clear(self) -> None:
        import sqlite3

        super().clear()
        if self._db_broken:
            return
        try:
            self._begin_write()
            self._conn.execute("DELETE FROM entries")
            self._conn.execute("DELETE FROM participants")
            self._written()
        except sqlite3.Error as error:
            self._guard_db(error)

    def close(self) -> None:
        import sqlite3

        try:
            self._commit()
        except sqlite3.Error as error:  # pragma: no cover - teardown race
            self._guard_db(error)
        self._conn.close()


def make_query_cache(cache_dir: Optional[str] = None) -> QueryCache:
    """The memo cache for a run: persistent under ``cache_dir`` when
    one is given, plain in-memory otherwise.  The single constructor
    the CLI and experiment drivers share."""
    if cache_dir:
        return PersistentQueryCache(cache_dir)
    return QueryCache()


# ---------------------------------------------------------------------------
# Query plan
# ---------------------------------------------------------------------------


@dataclass
class QuerySpec:
    """One SAT query: a focus pair of transaction ``a_name`` against one
    interfering transaction instance."""

    index: int
    batch: int
    a_name: str
    c1: CommandInfo
    c2: CommandInfo
    summary_b: TransactionSummary
    cache_key: CacheKey
    tables: FrozenSet[str]


@dataclass
class QueryBatch:
    """All queries contributing witnesses to one candidate access pair;
    the plan's merge node joins them back into an ``AccessPair``."""

    index: int
    summary_a: TransactionSummary
    c1: CommandInfo
    c2: CommandInfo
    queries: List[QuerySpec] = field(default_factory=list)


@dataclass(frozen=True)
class PlanNode:
    """A node of the plan DAG: a SAT query or a per-pair merge."""

    kind: str  # "query" | "merge"
    payload: int  # query index or batch index
    deps: Tuple[int, ...] = ()


@dataclass
class QueryPlan:
    """The planner's output: batches plus a topologically staged DAG."""

    level: ConsistencyLevel
    distinct_args: bool
    batches: List[QueryBatch]
    nodes: List[PlanNode]

    def queries(self) -> List[QuerySpec]:
        return [q for batch in self.batches for q in batch.queries]

    def generations(self) -> List[List[PlanNode]]:
        """Kahn-style topological generations: every node in generation
        ``i`` depends only on nodes of earlier generations, so a runner
        may execute each generation with unbounded fan-out."""
        remaining: Dict[int, Set[int]] = {
            i: set(node.deps) for i, node in enumerate(self.nodes)
        }
        dependants: Dict[int, List[int]] = {i: [] for i in remaining}
        for i, node in enumerate(self.nodes):
            for dep in node.deps:
                dependants[dep].append(i)
        ready = sorted(i for i, deps in remaining.items() if not deps)
        generations: List[List[PlanNode]] = []
        seen = 0
        while ready:
            generations.append([self.nodes[i] for i in ready])
            seen += len(ready)
            next_ready: Set[int] = set()
            for i in ready:
                for j in dependants[i]:
                    remaining[j].discard(i)
                    if not remaining[j]:
                        next_ready.add(j)
            for i in ready:
                remaining.pop(i, None)
            ready = sorted(next_ready)
        if seen != len(self.nodes):
            raise ValueError("query plan contains a dependency cycle")
        return generations


# Plan memo shared by every planner instance: summaries are interned
# (see repro.analysis.accesses), so re-planning the same program at the
# same level -- repeated analyses across strategy runs, service
# requests, level sweeps -- is a pointer-keyed dict hit.  Plans are
# construction-only data (nothing mutates a QueryPlan after the planner
# returns it), so sharing one instance across runs is safe.
_PLAN_CACHE: Dict[object, QueryPlan] = {}
_PLAN_CACHE_LIMIT = 1024


class QueryPlanner:
    """Enumerates the oracle's SAT queries for one program."""

    def plan(
        self,
        summaries: Dict[str, TransactionSummary],
        level: ConsistencyLevel,
        distinct_args: bool,
    ) -> QueryPlan:
        cache_key = (tuple(summaries.values()), level, distinct_args)
        cached = _PLAN_CACHE.get(cache_key)
        if cached is not None:
            return cached
        summary_fps = {
            name: fingerprint_summary(s) for name, s in summaries.items()
        }
        command_fps = {
            (name, c.label): fingerprint_command(c)
            for name, s in summaries.items()
            for c in s.commands
        }
        batches: List[QueryBatch] = []
        nodes: List[PlanNode] = []
        query_index = 0
        for summary in summaries.values():
            for c1, c2 in summary.ordered_pairs():
                batch = QueryBatch(
                    index=len(batches), summary_a=summary, c1=c1, c2=c2
                )
                query_nodes: List[int] = []
                for other in summaries.values():
                    key = query_cache_key(
                        command_fps[(summary.name, c1.label)],
                        command_fps[(summary.name, c2.label)],
                        summary_fps[other.name],
                        level,
                        distinct_args,
                    )
                    tables = frozenset(
                        {c1.table, c2.table}
                        | {c.table for c in other.commands}
                    )
                    batch.queries.append(
                        QuerySpec(
                            index=query_index,
                            batch=batch.index,
                            a_name=summary.name,
                            c1=c1,
                            c2=c2,
                            summary_b=other,
                            cache_key=key,
                            tables=tables,
                        )
                    )
                    query_nodes.append(len(nodes))
                    nodes.append(PlanNode(kind="query", payload=query_index))
                    query_index += 1
                nodes.append(
                    PlanNode(
                        kind="merge",
                        payload=batch.index,
                        deps=tuple(query_nodes),
                    )
                )
                batches.append(batch)
        plan = QueryPlan(
            level=level,
            distinct_args=distinct_args,
            batches=batches,
            nodes=nodes,
        )
        if len(_PLAN_CACHE) >= _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.clear()
        _PLAN_CACHE[cache_key] = plan
        return plan


# ---------------------------------------------------------------------------
# Query execution
# ---------------------------------------------------------------------------


def solve_query(
    c1: CommandInfo,
    c2: CommandInfo,
    summary_b: TransactionSummary,
    level: ConsistencyLevel,
    distinct_args: bool,
    use_prefilter: bool = True,
    budget=None,
) -> QueryOutcome:
    """Discharge one anomaly query; pure function of its arguments.

    Mirrors :meth:`PairEncoder.solve` but collects the candidate
    disjuncts exactly once (the seed path recomputes them when the
    oracle's prefilter is on) and runs on the folding builder.  The
    witness is identical either way; ``use_prefilter`` only mirrors the
    seed oracle's accounting, which bills a disjunct-free query as a
    SAT query when the static screen is off.
    """
    if not tables_may_conflict(c1, c2, summary_b):
        # No interferer command shares a table with the focus pair, so
        # the disjunct set is empty -- skip building the encoder at all.
        return QueryOutcome(witness=None, solved=not use_prefilter, stats={})
    if not has_disjuncts(c1, c2, summary_b.commands, distinct_args):
        # Emptiness decided from the memoised conflict lists alone --
        # identical outcome to building the encoder and finding the
        # disjunct list empty, minus the builder and solver setup.
        return QueryOutcome(witness=None, solved=not use_prefilter, stats={})
    encoder = PairEncoder(
        None, c1, c2, summary_b, level,
        distinct_args=distinct_args, fold_constants=True,
    )
    disjuncts = encoder.collect_disjuncts()
    if not disjuncts:
        return QueryOutcome(witness=None, solved=not use_prefilter, stats={})
    encoder.assert_axioms()
    encoder.builder.add(big_or([d.formula for d in disjuncts]))
    model = encoder.builder.check(budget=budget)
    stats = encoder.builder.solver.stats()
    if model is None:
        return QueryOutcome(witness=None, solved=True, stats=stats)
    fields1: FrozenSet[str] = frozenset()
    fields2: FrozenSet[str] = frozenset()
    pattern = ""
    for d in disjuncts:
        if evaluate(d.formula, model):
            fields1 |= d.fields1
            fields2 |= d.fields2
            pattern = pattern or d.pattern
    return QueryOutcome(
        witness=WitnessData(
            pattern=pattern or disjuncts[0].pattern,
            fields1=fields1,
            fields2=fields2,
        ),
        solved=True,
        stats=stats,
    )


def _solve_chunk(payload):
    """Worker entry point: solve a chunk of queries in one process."""
    level_name, distinct_args, use_prefilter, chunk = payload
    level = by_name(level_name)
    out = []
    for index, c1, c2, summary_b in chunk:
        out.append(
            (
                index,
                solve_query(c1, c2, summary_b, level, distinct_args, use_prefilter),
            )
        )
    return out


class SerialStrategy:
    """Deterministic in-process execution, in plan order.

    Named ``"cached"`` in reports: it is the pipeline's serial runner,
    always paired with the memo cache (``strategy="serial"`` on the
    oracle means the seed loop instead, which bypasses the pipeline).
    """

    name = "cached"
    supports_budget = True

    def run(
        self,
        specs: Sequence[QuerySpec],
        level: ConsistencyLevel,
        distinct_args: bool,
        use_prefilter: bool = True,
        budget=None,
    ) -> List[QueryOutcome]:
        return [
            solve_query(
                s.c1, s.c2, s.summary_b, level, distinct_args,
                use_prefilter, budget=budget,
            )
            for s in specs
        ]

    def run_levels(
        self,
        specs: Sequence[QuerySpec],
        spec_levels: Sequence[Sequence[ConsistencyLevel]],
        distinct_args: bool,
        use_prefilter: bool = True,
        budget=None,
    ) -> List[List[QueryOutcome]]:
        """Level-sweep entry point (see
        :meth:`AnalysisPipeline.analyze_levels`): ``specs[i]`` is solved
        once per level in ``spec_levels[i]``, in order."""
        return [
            [
                solve_query(
                    s.c1, s.c2, s.summary_b, level, distinct_args,
                    use_prefilter, budget=budget,
                )
                for level in levels
            ]
            for s, levels in zip(specs, spec_levels)
        ]

    def close(self) -> None:  # symmetry with ParallelStrategy
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ParallelStrategy:
    """``ProcessPoolExecutor`` fan-out over query chunks.

    Each query is an independent bounded SAT instance, so the fan-out is
    embarrassingly parallel; results are reassembled in plan order, which
    keeps the output bit-identical to the serial runner.  On single-core
    hosts (or ``max_workers=1``) the pool would be pure IPC overhead, so
    execution degrades to the in-process path.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        chunks_per_worker: int = 4,
    ):
        self.max_workers = max_workers or os.cpu_count() or 1
        self.chunks_per_worker = chunks_per_worker
        self._executor = None
        self._serial = SerialStrategy()

    @property
    def name(self) -> str:
        return f"parallel[{self.max_workers}]"

    def _ensure_executor(self):
        if self._executor is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._executor

    def run(
        self,
        specs: Sequence[QuerySpec],
        level: ConsistencyLevel,
        distinct_args: bool,
        use_prefilter: bool = True,
    ) -> List[QueryOutcome]:
        if self.max_workers <= 1 or len(specs) <= 1:
            return self._serial.run(specs, level, distinct_args, use_prefilter)
        chunk_count = min(
            len(specs), self.max_workers * self.chunks_per_worker
        )
        chunk_size = -(-len(specs) // chunk_count)
        # Results are keyed by *position* in `specs`, not QuerySpec.index:
        # a batched analyze_many hands this runner specs from several
        # plans at once, whose plan-local indexes collide.
        chunks = [
            [
                (position, s.c1, s.c2, s.summary_b)
                for position, s in enumerate(
                    specs[i : i + chunk_size], start=i
                )
            ]
            for i in range(0, len(specs), chunk_size)
        ]
        payloads = [
            (level.name, distinct_args, use_prefilter, chunk) for chunk in chunks
        ]
        try:
            executor = self._ensure_executor()
            by_position: Dict[int, QueryOutcome] = {}
            for chunk_result in executor.map(_solve_chunk, payloads):
                for position, outcome in chunk_result:
                    by_position[position] = outcome
        except Exception:
            # A broken pool (killed worker, unpicklable corner case) must
            # not take the analysis down: fall back to in-process.
            self.close()
            return self._serial.run(specs, level, distinct_args, use_prefilter)
        return [by_position[i] for i in range(len(specs))]

    def run_levels(
        self,
        specs: Sequence[QuerySpec],
        spec_levels: Sequence[Sequence[ConsistencyLevel]],
        distinct_args: bool,
        use_prefilter: bool = True,
    ) -> List[List[QueryOutcome]]:
        """Level sweep over cold solves: there is no warm state to
        share, so the sweep is regrouped by level and fanned out through
        :meth:`run` once per level."""
        by_level: Dict[str, List[Tuple[int, int, QuerySpec, ConsistencyLevel]]]
        by_level = {}
        for i, (s, levels) in enumerate(zip(specs, spec_levels)):
            for j, level in enumerate(levels):
                by_level.setdefault(level.name, []).append((i, j, s, level))
        out: List[List[Optional[QueryOutcome]]] = [
            [None] * len(levels) for levels in spec_levels
        ]
        for entries in by_level.values():
            level = entries[0][3]
            outcomes = self.run(
                [s for _, _, s, _ in entries], level, distinct_args,
                use_prefilter,
            )
            for (i, j, _, _), outcome in zip(entries, outcomes):
                out[i][j] = outcome
        return out  # type: ignore[return-value]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class IncrementalStrategy:
    """Warm incremental solving over an
    :class:`~repro.analysis.oracle.OracleSession` pool.

    Every query lands on the persistent session of its focus triple
    (keyed by structural fingerprint, so the key is stable across the
    repair fixpoint's re-analyses): the first query pays for skeleton
    registration, later queries at other consistency levels reduce to
    one assumption-based solve on the warm solver with the axiom groups
    of that level activated.  The pool lives as long as the strategy
    instance, which the oracle/pipeline keep across ``analyze()`` calls
    -- that is what carries solver state from one fixpoint iteration to
    the next.

    The pool (and each session) pickles by shedding warm solver state,
    so a ``ProcessPool`` worker handed this strategy re-warms sessions
    lazily instead of shipping solver internals across the boundary.
    """

    name = "incremental"
    supports_budget = True

    def __init__(self, pool=None):
        if pool is None:
            from repro.analysis.oracle import OracleSession

            pool = OracleSession()
        self.pool = pool

    def run(
        self,
        specs: Sequence[QuerySpec],
        level: ConsistencyLevel,
        distinct_args: bool,
        use_prefilter: bool = True,
        budget=None,
    ) -> List[QueryOutcome]:
        return [
            self.pool.solve(
                s.c1,
                s.c2,
                s.summary_b,
                level,
                distinct_args,
                use_prefilter=use_prefilter,
                key=(s.cache_key[0], s.cache_key[1], s.cache_key[2], distinct_args),
                budget=budget,
            )
            for s in specs
        ]

    def run_levels(
        self,
        specs: Sequence[QuerySpec],
        spec_levels: Sequence[Sequence[ConsistencyLevel]],
        distinct_args: bool,
        use_prefilter: bool = True,
        budget=None,
    ) -> List[List[QueryOutcome]]:
        """One warm assumption sweep per focus triple: ``specs[i]`` is
        discharged at every level of ``spec_levels[i]`` through a single
        :meth:`~repro.analysis.oracle.OracleSession.solve_batch` call,
        so the level sweep pays one session lookup and one incremental
        solve sequence instead of one Python round-trip per level."""
        return [
            self.pool.solve_batch(
                s.c1,
                s.c2,
                s.summary_b,
                list(levels),
                distinct_args,
                use_prefilter=use_prefilter,
                key=(s.cache_key[0], s.cache_key[1], s.cache_key[2], distinct_args),
                budget=budget,
            )
            for s, levels in zip(specs, spec_levels)
        ]

    def close(self) -> None:
        self.pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


# ---------------------------------------------------------------------------
# Parallel-incremental execution: sharded warm-session workers
# ---------------------------------------------------------------------------

# Per-worker-process warm session pool, built by the pool initializer.
# Each shard worker is a single-process executor, so this global is that
# worker's private state and lives as long as the worker does.
_WORKER_SESSIONS = None


def _shard_worker_init(max_sessions: int) -> None:
    global _WORKER_SESSIONS
    from repro.analysis.oracle import OracleSession

    _WORKER_SESSIONS = OracleSession(max_sessions=max_sessions)


def _shard_worker_solve(payload):
    """Worker entry point: discharge one shard's queries on this
    worker's warm :class:`~repro.analysis.oracle.OracleSession` pool."""
    level_name, distinct_args, use_prefilter, shard = payload
    level = by_name(level_name)
    out = []
    for index, c1, c2, summary_b, session_key in shard:
        out.append(
            (
                index,
                _WORKER_SESSIONS.solve(
                    c1,
                    c2,
                    summary_b,
                    level,
                    distinct_args,
                    use_prefilter=use_prefilter,
                    key=session_key,
                ),
            )
        )
    return out


def _shard_worker_run_chunk(payload):
    """Timed worker entry point for the work-stealing scheduler: solve
    one chunk (same payload as :func:`_shard_worker_solve`) and report
    how long the worker was busy on it."""
    start = time.perf_counter()
    out = _shard_worker_solve(payload)
    return out, time.perf_counter() - start


def _shard_worker_sweep(payload):
    """Timed worker entry point for level sweeps: each shard item names
    its own level list and is discharged through the warm pool's
    :meth:`~repro.analysis.oracle.OracleSession.solve_batch`."""
    distinct_args, use_prefilter, shard = payload
    start = time.perf_counter()
    out = []
    for position, c1, c2, summary_b, session_key, level_names in shard:
        levels = [by_name(name) for name in level_names]
        out.append(
            (
                position,
                _WORKER_SESSIONS.solve_batch(
                    c1,
                    c2,
                    summary_b,
                    levels,
                    distinct_args,
                    use_prefilter=use_prefilter,
                    key=session_key,
                ),
            )
        )
    return out, time.perf_counter() - start


def _shard_worker_counters() -> Dict[str, int]:
    return _WORKER_SESSIONS.counters() if _WORKER_SESSIONS is not None else {}


def shard_of(cache_key: CacheKey, shards: int) -> int:
    """Worker index for a query, by the focus triple's structural
    fingerprint.

    Process-stable (sha1, not the salted builtin ``hash``) and
    level-independent: every consistency-level sweep of one triple, and
    every re-analysis of a structurally unchanged triple across the
    repair fixpoint, routes to the same worker -- whose
    :class:`~repro.analysis.oracle.OracleSession` pool therefore never
    rebuilds that triple's solver cold twice.
    """
    digest = hashlib.sha1(
        "|".join(cache_key[:3]).encode(), usedforsecurity=False
    ).hexdigest()
    return int(digest[:8], 16) % shards


class ParallelIncrementalStrategy:
    """Sharded warm-session workers: parallelism *and* incrementality.

    :class:`ParallelStrategy` fans out cold solves; :class:`
    IncrementalStrategy` keeps warm solvers but runs in-process.  This
    strategy keeps one long-lived worker process per shard (a
    single-process ``ProcessPoolExecutor`` each, so work submitted to a
    shard always lands on the same OS process -- the affinity trick of
    long-lived database compiler workers), gives every worker its own
    :class:`~repro.analysis.oracle.OracleSession` pool via the pool
    initializer, and routes each query to the worker that owns its
    focus triple's fingerprint (:func:`shard_of`).  A triple's level
    sweep and its fixpoint re-analyses therefore always hit the same
    warm solver, while distinct triples solve concurrently.

    Static sha1 sharding balances *triples*, not *work*: one benchmark
    can contribute 63 anomalous pairs and another 1, so a shard can run
    long after every other worker went idle.  Each shard is therefore
    split into up to ``chunks_per_shard`` chunks queued per worker, and
    (with ``work_stealing``, the default) a worker whose own queue runs
    dry steals the *tail* chunk of the longest remaining queue instead
    of idling.  Stolen triples build cold on the thief -- affinity is
    traded for utilization only once the owner is saturated -- so tests
    that assert strict affinity pass ``work_stealing=False``.  The
    scheduler keeps per-worker busy-seconds and chunk/steal counts;
    :meth:`shard_stats` exposes them (``BENCH_oracle.json`` records
    them as ``shard_utilization``/``steal_count``).

    On single-core hosts (or ``max_workers=1``) the processes would be
    pure IPC overhead, so execution degrades to one in-process
    :class:`IncrementalStrategy` -- same results, same warmth, no pool.
    A broken pool mid-run falls back the same way.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_sessions_per_worker: int = 4096,
        work_stealing: bool = True,
        chunks_per_shard: int = 4,
    ):
        self.max_workers = max_workers or os.cpu_count() or 1
        self.max_sessions_per_worker = max_sessions_per_worker
        self.work_stealing = work_stealing
        self.chunks_per_shard = max(1, chunks_per_shard)
        self._executors: Optional[List] = None
        self._fallback: Optional[IncrementalStrategy] = None
        self._retired_counters: Dict[str, int] = {}
        self._used_workers: Set[int] = set()
        self._broken = False
        self._steal_count = 0
        self._worker_busy: Dict[int, float] = {}
        self._worker_chunks: Dict[int, int] = {}
        self._worker_stolen: Dict[int, int] = {}
        self._sched_elapsed = 0.0

    @property
    def name(self) -> str:
        if self.max_workers <= 1 or self._broken:
            return "parallel-incremental[in-process]"
        return f"parallel-incremental[{self.max_workers}]"

    def _ensure_fallback(self) -> IncrementalStrategy:
        if self._fallback is None:
            self._fallback = IncrementalStrategy()
        return self._fallback

    def _ensure_executors(self) -> List:
        if self._executors is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX hosts
                context = multiprocessing.get_context()
            self._executors = [
                ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=context,
                    initializer=_shard_worker_init,
                    initargs=(self.max_sessions_per_worker,),
                )
                for _ in range(self.max_workers)
            ]
        return self._executors

    def run(
        self,
        specs: Sequence[QuerySpec],
        level: ConsistencyLevel,
        distinct_args: bool,
        use_prefilter: bool = True,
    ) -> List[QueryOutcome]:
        if self.max_workers <= 1 or self._broken:
            return self._ensure_fallback().run(
                specs, level, distinct_args, use_prefilter
            )
        # Results are keyed by *position* in `specs`, not QuerySpec.index:
        # a batched analyze_many hands this runner specs from several
        # plans at once, whose plan-local indexes collide.
        queues = self._shard_queues(
            specs,
            lambda chunk: (
                level.name,
                distinct_args,
                use_prefilter,
                [
                    (
                        position,
                        s.c1,
                        s.c2,
                        s.summary_b,
                        s.cache_key[:3] + (distinct_args,),
                    )
                    for position, s in chunk
                ],
            ),
        )
        try:
            merged = self._dispatch_chunks(queues, _shard_worker_run_chunk)
        except Exception:
            # A dead worker must not take the analysis down; the
            # in-process incremental path produces the same outcomes.
            # The breakage is sticky: later runs go straight to the
            # fallback pool (which stays alive and keeps warming)
            # instead of respawning -- and re-breaking -- the workers.
            self._broken = True
            self._shutdown_executors()
            return self._ensure_fallback().run(
                specs, level, distinct_args, use_prefilter
            )
        by_position: Dict[int, QueryOutcome] = dict(merged)
        return [by_position[i] for i in range(len(specs))]

    def run_levels(
        self,
        specs: Sequence[QuerySpec],
        spec_levels: Sequence[Sequence[ConsistencyLevel]],
        distinct_args: bool,
        use_prefilter: bool = True,
        budget=None,
    ) -> List[List[QueryOutcome]]:
        """Sharded level sweeps: every spec's whole level list is
        discharged by its shard worker as one warm
        :meth:`~repro.analysis.oracle.OracleSession.solve_batch` sweep,
        with the same chunking/stealing scheduler as :meth:`run`."""
        if self.max_workers <= 1 or self._broken:
            return self._ensure_fallback().run_levels(
                specs, spec_levels, distinct_args, use_prefilter,
                budget=budget,
            )
        queues = self._shard_queues(
            specs,
            lambda chunk: (
                distinct_args,
                use_prefilter,
                [
                    (
                        position,
                        s.c1,
                        s.c2,
                        s.summary_b,
                        s.cache_key[:3] + (distinct_args,),
                        tuple(lv.name for lv in spec_levels[position]),
                    )
                    for position, s in chunk
                ],
            ),
        )
        try:
            merged = self._dispatch_chunks(queues, _shard_worker_sweep)
        except Exception:
            self._broken = True
            self._shutdown_executors()
            return self._ensure_fallback().run_levels(
                specs, spec_levels, distinct_args, use_prefilter,
                budget=budget,
            )
        by_position: Dict[int, List[QueryOutcome]] = dict(merged)
        return [by_position[i] for i in range(len(specs))]

    def _shard_queues(self, specs, make_payload) -> List[List]:
        """Route specs to their shard, split each shard into up to
        ``chunks_per_shard`` chunks (preserving shard order), and build
        each worker's payload queue."""
        shards: Dict[int, List[Tuple[int, QuerySpec]]] = {}
        for position, spec in enumerate(specs):
            shards.setdefault(
                shard_of(spec.cache_key, self.max_workers), []
            ).append((position, spec))
        queues: List[List] = [[] for _ in range(self.max_workers)]
        for worker, shard in shards.items():
            per = -(-len(shard) // self.chunks_per_shard)
            for i in range(0, len(shard), per):
                queues[worker].append(make_payload(shard[i : i + per]))
        return queues

    def _dispatch_chunks(self, queues: List[List], entry) -> List:
        """Drain per-worker chunk queues, keeping one chunk in flight
        per worker (each shard executor is a single process, so deeper
        submission would only reorder the shard).  A worker whose own
        queue is empty steals the tail of the longest remaining queue
        when ``work_stealing`` is on; otherwise it idles.  Returns the
        concatenated chunk results."""
        from concurrent.futures import FIRST_COMPLETED, wait

        executors = self._ensure_executors()
        started = time.perf_counter()
        merged: List = []
        inflight: Dict[object, int] = {}

        def take(worker: int):
            if queues[worker]:
                return queues[worker].pop(0)
            if self.work_stealing:
                victim = max(
                    range(len(queues)), key=lambda w: len(queues[w])
                )
                if queues[victim]:
                    self._steal_count += 1
                    self._worker_stolen[worker] = (
                        self._worker_stolen.get(worker, 0) + 1
                    )
                    return queues[victim].pop()
            return None

        def feed(worker: int) -> None:
            payload = take(worker)
            if payload is None:
                return
            future = executors[worker].submit(entry, payload)
            inflight[future] = worker
            self._used_workers.add(worker)

        for worker in range(self.max_workers):
            feed(worker)
        while inflight:
            done, _ = wait(set(inflight), return_when=FIRST_COMPLETED)
            for future in done:
                worker = inflight.pop(future)
                out, busy = future.result()
                merged.extend(out)
                self._worker_busy[worker] = (
                    self._worker_busy.get(worker, 0.0) + busy
                )
                self._worker_chunks[worker] = (
                    self._worker_chunks.get(worker, 0) + 1
                )
                feed(worker)
        self._sched_elapsed += time.perf_counter() - started
        return merged

    def shard_stats(self) -> Dict[str, object]:
        """Scheduler accounting over the strategy's lifetime: total
        steals, scheduler wall-clock, and per-worker busy-seconds /
        chunk counts / utilization (busy over scheduler wall-clock).
        All zeros when execution degraded to the in-process path."""
        elapsed = self._sched_elapsed
        workers = []
        for worker in range(self.max_workers):
            busy = self._worker_busy.get(worker, 0.0)
            workers.append(
                {
                    "worker": worker,
                    "busy_seconds": round(busy, 4),
                    "chunks": self._worker_chunks.get(worker, 0),
                    "stolen_chunks": self._worker_stolen.get(worker, 0),
                    "utilization": (
                        round(busy / elapsed, 4) if elapsed > 0 else 0.0
                    ),
                }
            )
        return {
            "work_stealing": self.work_stealing,
            "steal_count": self._steal_count,
            "scheduler_seconds": round(elapsed, 4),
            "workers": workers,
        }

    def _live_counters(self) -> Dict[str, int]:
        """Session counters over every live shard worker plus the
        in-process fallback pool, if it ever ran."""
        totals: Dict[str, int] = {}
        sources: List[Dict[str, int]] = []
        if self._executors is not None:
            # Only workers that ever received a shard: submitting to an
            # idle executor would fork its process just to report {}.
            for worker in sorted(self._used_workers):
                try:
                    sources.append(
                        self._executors[worker]
                        .submit(_shard_worker_counters)
                        .result()
                    )
                except Exception:  # pragma: no cover - dead worker
                    continue
        if self._fallback is not None:
            sources.append(self._fallback.pool.counters())
        for counters in sources:
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def counters(self) -> Dict[str, int]:
        """Aggregated :meth:`~repro.analysis.oracle.OracleSession.
        counters` across the strategy's lifetime.  Like the session
        pool itself, counters survive :meth:`close` for reporting."""
        totals = dict(self._retired_counters)
        for key, value in self._live_counters().items():
            totals[key] = totals.get(key, 0) + value
        return totals

    def _shutdown_executors(self) -> None:
        """Tear the worker processes down without touching the fallback
        pool (a broken pool's counters are unreachable and dropped)."""
        if self._executors is not None:
            for executor in self._executors:
                executor.shutdown()
            self._executors = None
        self._used_workers.clear()

    def close(self) -> None:
        for key, value in self._live_counters().items():
            self._retired_counters[key] = (
                self._retired_counters.get(key, 0) + value
            )
        self._shutdown_executors()
        if self._fallback is not None:
            self._fallback.close()
            self._fallback = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


def resolve_strategy(spec, max_workers: Optional[int] = None):
    """Map a strategy spec (name or instance) to a runner instance.

    Names: ``"cached"`` (serial runner + memo cache), ``"incremental"``
    (warm per-triple solver sessions + memo cache), ``"parallel"``
    (cold process fan-out + memo cache), ``"parallel-incremental"``
    (sharded warm-session workers + memo cache), ``"auto"``
    (parallel-incremental when the host has more than one core, else
    in-process incremental sessions).  ``"serial"`` is handled by the
    oracle itself (the seed execution loop) and is not a pipeline
    strategy.
    """
    if spec is None or spec == "cached":
        return SerialStrategy()
    if spec == "incremental":
        return IncrementalStrategy()
    if spec == "parallel":
        return ParallelStrategy(max_workers=max_workers)
    if spec in ("parallel-incremental", "parallel_incremental"):
        return ParallelIncrementalStrategy(max_workers=max_workers)
    if spec == "auto":
        # Multi-core hosts get parallelism *and* warm sessions; on one
        # core the process pool is pure overhead, so stay in-process.
        # The resolved runner's name lands in AnalysisReport.strategy,
        # so reports record which path "auto" actually chose.
        workers = max_workers or os.cpu_count() or 1
        if workers > 1:
            return ParallelIncrementalStrategy(max_workers=workers)
        return IncrementalStrategy()
    if hasattr(spec, "run"):
        return spec
    raise ValueError(
        f"unknown analysis strategy {spec!r}; expected 'serial', 'cached', "
        "'incremental', 'parallel', 'parallel-incremental', 'auto', or a "
        "strategy object"
    )


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------


class AnalysisPipeline:
    """Plan, memoise, execute, and merge the oracle's SAT queries."""

    def __init__(
        self,
        level: ConsistencyLevel,
        use_prefilter: bool = True,
        distinct_args: bool = True,
        strategy=None,
        cache: Optional[QueryCache] = None,
        max_workers: Optional[int] = None,
        progress=None,
        budget=None,
    ):
        self.level = level
        self.use_prefilter = use_prefilter
        self.distinct_args = distinct_args
        self.planner = QueryPlanner()
        self.strategy = resolve_strategy(strategy, max_workers)
        self.cache = cache if cache is not None else QueryCache()
        # Progress callback (see repro.events): coarse per-batch
        # narration -- start (planned queries, cache hits), solved (the
        # strategy fan-out's size), done (pairs found).  Mutable so a
        # long-lived pipeline can be observed per call.
        self.progress = progress
        # Optional repro.budget.Budget: bounds the strategy fan-out.
        # Exhaustion raises DeadlineExceededError carrying the pairs
        # from every batch whose queries all completed in time.
        self.budget = budget

    def analyze(self, program: ast.Program):
        return self.analyze_many([program])[0]

    def analyze_many(self, programs: Sequence[ast.Program]) -> List:
        """Analyze several programs through *one* strategy fan-out.

        Per-query results are pure functions of their fingerprints, so
        batching changes nothing about any program's report -- but all
        programs' cache misses are deduplicated together and handed to
        the strategy as one spec list, so a parallel runner overlaps
        every program's solving (this is what lets a beam search score a
        whole generation of candidate plans concurrently instead of one
        ``analyze()`` at a time).  Queries shared between programs are
        solved once; the solve is attributed (``sat_queries``,
        ``solver_stats``) to the first program that requested it.  Each
        report's ``elapsed_seconds`` is the whole batch's wall-clock:
        the programs were solved together, so no finer attribution is
        honest.
        """
        from repro.analysis.oracle import AnalysisReport, _merge_witnesses
        from repro.events import emit

        start = time.perf_counter()
        plans = []
        outcomes_by_program: List[Dict[int, Optional[WitnessData]]] = []
        lookup_counts: List[Tuple[int, int]] = []
        pending: Dict[CacheKey, List[Tuple[int, QuerySpec]]] = {}
        for program_index, program in enumerate(programs):
            summaries = summarize_program(program)
            plan = self.planner.plan(summaries, self.level, self.distinct_args)
            outcomes: Dict[int, Optional[WitnessData]] = {}
            hits = misses = 0
            for spec in plan.queries():
                found, witness = self.cache.lookup(spec.cache_key)
                if found:
                    hits += 1
                    outcomes[spec.index] = witness
                else:
                    misses += 1
                    # Structurally identical queries (same fingerprints)
                    # are solved once; every spec sharing the key --
                    # within a program or across the batch -- gets the
                    # result.
                    pending.setdefault(spec.cache_key, []).append(
                        (program_index, spec)
                    )
            plans.append(plan)
            outcomes_by_program.append(outcomes)
            lookup_counts.append((hits, misses))

        emit(
            self.progress,
            "analyze.start",
            level=self.level.name,
            programs=len(programs),
            queries=sum(h + m for h, m in lookup_counts),
            cache_hits=sum(h for h, _ in lookup_counts),
            cache_misses=sum(m for _, m in lookup_counts),
        )
        sat_queries = [0] * len(plans)
        solver_stats: List[Dict[str, int]] = [{} for _ in plans]
        exhausted = False
        if pending:
            unique = [group[0][1] for group in pending.values()]
            owners = [group[0][0] for group in pending.values()]
            # With a budget (or an observer) the fan-out is chunked so
            # the deadline is re-checked -- and a cancellation-minded
            # progress callback gets a chance to abort -- between
            # chunks, without ever emitting one event per SAT query
            # (ticks are throttled to one per 0.2s).  Budget-aware
            # strategies additionally bound each solve internally.
            budget = self.budget
            chunked = budget is not None or self.progress is not None
            step = 32 if chunked else max(len(unique), 1)
            run_kwargs = {}
            if budget is not None and getattr(
                self.strategy, "supports_budget", False
            ):
                run_kwargs["budget"] = budget
            results: List[QueryOutcome] = []
            last_tick = start
            for lo in range(0, len(unique), step):
                now = time.perf_counter()
                if chunked and lo and now - last_tick >= 0.2:
                    last_tick = now
                    emit(
                        self.progress,
                        "analyze.tick",
                        completed=lo,
                        total=len(unique),
                    )
                if budget is not None and budget.expired():
                    exhausted = True
                    break
                try:
                    results.extend(
                        self.strategy.run(
                            unique[lo : lo + step],
                            self.level,
                            self.distinct_args,
                            self.use_prefilter,
                            **run_kwargs,
                        )
                    )
                except BudgetExhaustedError:
                    exhausted = True
                    break
            # zip() stops at the shorter list, so an exhausted run
            # still attributes and caches every completed outcome --
            # the retry after a deadline warm-starts from them.
            for owner, spec, outcome in zip(owners, unique, results):
                if outcome.solved:
                    sat_queries[owner] += 1
                for key, value in outcome.stats.items():
                    solver_stats[owner][key] = (
                        solver_stats[owner].get(key, 0) + value
                    )
                group = pending[spec.cache_key]
                for twin_owner, twin in group:
                    outcomes_by_program[twin_owner][twin.index] = outcome.witness
                self.cache.store(
                    spec.cache_key,
                    outcome.witness,
                    txns={s.a_name for _, s in group}
                    | {s.summary_b.name for _, s in group},
                    tables=frozenset().union(*(s.tables for _, s in group)),
                )
            emit(
                self.progress,
                "analyze.solved",
                unique_queries=len(results),
                strategy=self.strategy.name,
            )
        if exhausted:
            self._raise_deadline(plans, outcomes_by_program)

        elapsed = time.perf_counter() - start
        reports = []
        for plan, outcomes, (hits, misses), sat, stats in zip(
            plans, outcomes_by_program, lookup_counts, sat_queries, solver_stats
        ):
            # Merge stage.  The plan DAG (see generations()) stages
            # every query before its batch's merge node; since all
            # queries above have completed, the merges reduce to
            # batch-order iteration.
            pairs = []
            for batch in plan.batches:
                witnesses = [
                    PairWitness(
                        interferer=spec.summary_b.name,
                        pattern=outcomes[spec.index].pattern,
                        fields1=outcomes[spec.index].fields1,
                        fields2=outcomes[spec.index].fields2,
                    )
                    for spec in batch.queries
                    if outcomes[spec.index] is not None
                ]
                if witnesses:
                    pairs.append(
                        _merge_witnesses(
                            batch.summary_a, batch.c1, batch.c2, witnesses
                        )
                    )
            reports.append(
                AnalysisReport(
                    level=self.level.name,
                    pairs=pairs,
                    pairs_checked=len(plan.batches),
                    sat_queries=sat,
                    elapsed_seconds=elapsed,
                    strategy=self.strategy.name,
                    cache_hits=hits,
                    cache_misses=misses,
                    solver_stats=stats,
                )
            )
        emit(
            self.progress,
            "analyze.done",
            level=self.level.name,
            pairs=sum(len(r.pairs) for r in reports),
            elapsed_seconds=elapsed,
        )
        return reports

    def analyze_levels(
        self, program: ast.Program, levels: Sequence[ConsistencyLevel]
    ) -> List:
        """Analyze one program at several consistency levels in one
        strategy sweep; returns one report per level, in order.

        Results are identical to one :meth:`analyze` per level (each
        query is a pure function of its fingerprints, and the cache is
        consulted per level exactly as before), but the cache misses of
        all levels are grouped by focus triple and handed to the
        strategy together, so a warm runner discharges a triple's whole
        level sweep on one session in one incremental solve sequence
        (``run_levels``) instead of re-entering the stack per level.
        Strategies without a ``run_levels`` sweep entry point fall back
        to one ``run()`` fan-out per level.

        Like :meth:`analyze_many`, each report's ``elapsed_seconds`` is
        the whole sweep's wall-clock, and a solve shared between levels
        -- impossible here, since the level is part of the cache key --
        never arises; attribution (``sat_queries``, ``solver_stats``)
        goes to the first level that requested the triple's query.
        """
        from repro.analysis.oracle import AnalysisReport, _merge_witnesses
        from repro.events import emit

        levels = list(levels)
        start = time.perf_counter()
        summaries = summarize_program(program)
        plans = [
            self.planner.plan(summaries, level, self.distinct_args)
            for level in levels
        ]
        outcomes_by_level: List[Dict[int, Optional[WitnessData]]] = [
            {} for _ in levels
        ]
        lookup_counts: List[Tuple[int, int]] = []
        # Misses grouped by focus triple; within a triple, by full cache
        # key (one solve per key -- structurally identical twins at the
        # same level share it, and distinct levels are distinct keys).
        pending: Dict[
            Tuple, Dict[CacheKey, List[Tuple[int, QuerySpec]]]
        ] = {}
        for level_index, plan in enumerate(plans):
            hits = misses = 0
            for spec in plan.queries():
                found, witness = self.cache.lookup(spec.cache_key)
                if found:
                    hits += 1
                    outcomes_by_level[level_index][spec.index] = witness
                else:
                    misses += 1
                    triple_key = spec.cache_key[:3] + (self.distinct_args,)
                    pending.setdefault(triple_key, {}).setdefault(
                        spec.cache_key, []
                    ).append((level_index, spec))
            lookup_counts.append((hits, misses))

        sweep_name = "+".join(level.name for level in levels)
        emit(
            self.progress,
            "analyze.start",
            level=sweep_name,
            programs=1,
            queries=sum(h + m for h, m in lookup_counts),
            cache_hits=sum(h for h, _ in lookup_counts),
            cache_misses=sum(m for _, m in lookup_counts),
        )
        sat_queries = [0] * len(levels)
        solver_stats: List[Dict[str, int]] = [{} for _ in levels]
        exhausted = False
        if pending:
            triples = list(pending.items())
            budget = self.budget
            chunked = budget is not None or self.progress is not None
            step = 32 if chunked else max(len(triples), 1)
            run_kwargs = {}
            if budget is not None and getattr(
                self.strategy, "supports_budget", False
            ):
                run_kwargs["budget"] = budget
            sweep = getattr(self.strategy, "run_levels", None)
            results: List[List[QueryOutcome]] = []
            last_tick = start
            for lo in range(0, len(triples), step):
                now = time.perf_counter()
                if chunked and lo and now - last_tick >= 0.2:
                    last_tick = now
                    emit(
                        self.progress,
                        "analyze.tick",
                        completed=lo,
                        total=len(triples),
                    )
                if budget is not None and budget.expired():
                    exhausted = True
                    break
                chunk = triples[lo : lo + step]
                chunk_specs = [
                    next(iter(groups.values()))[0][1] for _, groups in chunk
                ]
                chunk_levels = [
                    [by_name(key[3]) for key in groups]
                    for _, groups in chunk
                ]
                try:
                    if sweep is not None:
                        results.extend(
                            sweep(
                                chunk_specs,
                                chunk_levels,
                                self.distinct_args,
                                self.use_prefilter,
                                **run_kwargs,
                            )
                        )
                    else:
                        results.extend(
                            [
                                self.strategy.run(
                                    [spec],
                                    lv,
                                    self.distinct_args,
                                    self.use_prefilter,
                                    **run_kwargs,
                                )[0]
                                for lv in lvs
                            ]
                            for spec, lvs in zip(chunk_specs, chunk_levels)
                        )
                except BudgetExhaustedError:
                    exhausted = True
                    break
            # zip() stops at the shorter list, so an exhausted run still
            # attributes and caches every completed triple's outcomes.
            for (_, groups), outs in zip(triples, results):
                for (key, group), outcome in zip(groups.items(), outs):
                    owner, _ = group[0]
                    if outcome.solved:
                        sat_queries[owner] += 1
                    for stat, value in outcome.stats.items():
                        solver_stats[owner][stat] = (
                            solver_stats[owner].get(stat, 0) + value
                        )
                    for twin_owner, twin in group:
                        outcomes_by_level[twin_owner][twin.index] = (
                            outcome.witness
                        )
                    self.cache.store(
                        key,
                        outcome.witness,
                        txns={s.a_name for _, s in group}
                        | {s.summary_b.name for _, s in group},
                        tables=frozenset().union(
                            *(s.tables for _, s in group)
                        ),
                    )
            emit(
                self.progress,
                "analyze.solved",
                unique_queries=sum(len(outs) for outs in results),
                strategy=self.strategy.name,
            )
        if exhausted:
            self._raise_deadline(
                plans, outcomes_by_level, level_name=sweep_name
            )

        elapsed = time.perf_counter() - start
        reports = []
        for level, plan, outcomes, (hits, misses), sat, stats in zip(
            levels,
            plans,
            outcomes_by_level,
            lookup_counts,
            sat_queries,
            solver_stats,
        ):
            pairs = []
            for batch in plan.batches:
                witnesses = [
                    PairWitness(
                        interferer=spec.summary_b.name,
                        pattern=outcomes[spec.index].pattern,
                        fields1=outcomes[spec.index].fields1,
                        fields2=outcomes[spec.index].fields2,
                    )
                    for spec in batch.queries
                    if outcomes[spec.index] is not None
                ]
                if witnesses:
                    pairs.append(
                        _merge_witnesses(
                            batch.summary_a, batch.c1, batch.c2, witnesses
                        )
                    )
            reports.append(
                AnalysisReport(
                    level=level.name,
                    pairs=pairs,
                    pairs_checked=len(plan.batches),
                    sat_queries=sat,
                    elapsed_seconds=elapsed,
                    strategy=self.strategy.name,
                    cache_hits=hits,
                    cache_misses=misses,
                    solver_stats=stats,
                )
            )
        emit(
            self.progress,
            "analyze.done",
            level=sweep_name,
            pairs=sum(len(r.pairs) for r in reports),
            elapsed_seconds=elapsed,
        )
        return reports

    def _raise_deadline(
        self, plans, outcomes_by_program, level_name: Optional[str] = None
    ) -> None:
        """Raise DeadlineExceededError carrying the partial result.

        A batch (access pair) counts as checked only when *every* one
        of its queries has an outcome -- reporting a pair anomaly-free
        on a half-finished batch would be unsound.
        """
        from repro.analysis.oracle import _merge_witnesses, deadline_error

        pairs = []
        checked = 0
        total = 0
        for plan, outcomes in zip(plans, outcomes_by_program):
            for batch in plan.batches:
                total += 1
                if any(
                    spec.index not in outcomes for spec in batch.queries
                ):
                    continue
                checked += 1
                witnesses = [
                    PairWitness(
                        interferer=spec.summary_b.name,
                        pattern=outcomes[spec.index].pattern,
                        fields1=outcomes[spec.index].fields1,
                        fields2=outcomes[spec.index].fields2,
                    )
                    for spec in batch.queries
                    if outcomes[spec.index] is not None
                ]
                if witnesses:
                    pairs.append(
                        _merge_witnesses(
                            batch.summary_a, batch.c1, batch.c2, witnesses
                        )
                    )
        raise deadline_error(
            level_name or self.level.name, pairs, checked, total
        )

    def close(self) -> None:
        self.strategy.close()
