"""Command access summaries.

The anomaly encoder does not work on raw ASTs; it works on per-command
summaries: which table and fields a command reads and writes, how its
where clause addresses records, and which earlier select feeds each
update expression (the read-modify-write dataflow that the lost-update
pattern and the logger refactoring both key on).

Loops are summarised by their body (one unrolling) and both branches of
conditionals are included -- the standard may-execute abstraction for
static anomaly detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lang import ast
from repro.lang.traverse import expression_field_accesses
from repro.lang.validate import well_formed_where


@dataclass(frozen=True)
class CommandInfo:
    """Static summary of one database command.

    Attributes:
        txn: owning transaction name.
        label: command label within the transaction (``S1`` etc.).
        kind: ``"select"``, ``"update"``, or ``"insert"``.
        table: accessed table.
        read_fields: fields the command observes -- where-clause fields
            plus, for selects, the retrieved fields.
        write_fields: fields the command writes (updates and inserts;
            inserts include the implicit ``alive``).
        key_exprs: ``key field -> expression`` when the where clause is
            well-formed (Section 4.2.1), else None.  Inserts use their
            key-field assignments.
        var: result variable (selects only).
        rmw_sources: for updates, ``assigned field -> {(var, source
            field)}`` collected from ``at``-accesses in the assignment
            expression; the lost-update pattern requires the assigned
            field to be derived from a read of itself.
        uuid_key: insert assigns ``uuid()`` to a key field, which makes
            the inserted record fresh (it can never collide with another
            instance's writes).
        in_loop: the command sits inside an ``iterate`` body.
        in_branch: the command sits inside an ``if`` body.
    """

    txn: str
    label: str
    kind: str
    table: str
    read_fields: Tuple[str, ...]
    write_fields: Tuple[str, ...]
    key_exprs: Optional[Tuple[Tuple[str, ast.Expr], ...]]
    var: Optional[str] = None
    rmw_sources: Tuple[Tuple[str, Tuple[Tuple[str, str], ...]], ...] = ()
    uuid_key: bool = False
    in_loop: bool = False
    in_branch: bool = False

    @property
    def is_write(self) -> bool:
        return self.kind in ("update", "insert")

    @property
    def is_read(self) -> bool:
        return self.kind == "select"

    def key_expr_map(self) -> Optional[Mapping[str, ast.Expr]]:
        if self.key_exprs is None:
            return None
        return dict(self.key_exprs)

    def rmw_map(self) -> Mapping[str, Set[Tuple[str, str]]]:
        return {f: set(srcs) for f, srcs in self.rmw_sources}

    def __hash__(self) -> int:
        # Summaries are hashed constantly on the oracle hot path (memo
        # keys, warm-session keys, alias-verdict memo); the generated
        # dataclass hash rewalks every nested key expression per call,
        # so cache it on first use (legal on a frozen instance: the
        # fields the hash covers can never change).
        h = self.__dict__.get("_cached_hash")
        if h is None:
            h = hash(
                (
                    self.txn,
                    self.label,
                    self.kind,
                    self.table,
                    self.read_fields,
                    self.write_fields,
                    self.key_exprs,
                    self.var,
                    self.rmw_sources,
                    self.uuid_key,
                    self.in_loop,
                    self.in_branch,
                )
            )
            object.__setattr__(self, "_cached_hash", h)
        return h

    def __getstate__(self):
        # str hashes are salted per process (PYTHONHASHSEED), so a
        # cached hash must never cross a pickle boundary.
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


@dataclass(frozen=True)
class TransactionSummary:
    """All command summaries of one transaction, in program order."""

    name: str
    params: Tuple[str, ...]
    commands: Tuple[CommandInfo, ...]
    # var -> label of the select that binds it
    bindings: Tuple[Tuple[str, str], ...]

    def __hash__(self) -> int:
        # Cached like CommandInfo's (see there): summaries key the
        # warm-session pool and the alias/fingerprint memos.
        h = self.__dict__.get("_cached_hash")
        if h is None:
            h = hash((self.name, self.params, self.commands, self.bindings))
            object.__setattr__(self, "_cached_hash", h)
        return h

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_cached_hash", None)
        state.pop("_writes", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    def command(self, label: str) -> CommandInfo:
        for info in self.commands:
            if info.label == label:
                return info
        raise KeyError(f"{self.name}: no command labelled {label}")

    def binding_of(self, var: str) -> Optional[str]:
        for v, label in self.bindings:
            if v == var:
                return label
        return None

    def writes(self) -> Tuple[CommandInfo, ...]:
        # Cached like the hash: every axiom generator and conflict scan
        # re-asks for the write subsequence of the same frozen summary.
        w = self.__dict__.get("_writes")
        if w is None:
            w = tuple(c for c in self.commands if c.is_write)
            object.__setattr__(self, "_writes", w)
        return w

    def reads(self) -> Tuple[CommandInfo, ...]:
        return tuple(c for c in self.commands if c.is_read)

    def ordered_pairs(self) -> List[Tuple[CommandInfo, CommandInfo]]:
        """All ordered distinct command pairs (c1 before c2)."""
        out = []
        for i in range(len(self.commands)):
            for j in range(i + 1, len(self.commands)):
                out.append((self.commands[i], self.commands[j]))
        return out


# Interning tables: the repair search summarises thousands of candidate
# programs whose transactions mostly equal ones already seen, but every
# summarisation builds fresh (frozen) objects.  Downstream memo caches
# (alias verdicts, conflict lists, fingerprints) key on these objects,
# and a cache hit against an equal-but-distinct key pays a deep
# dataclass comparison through the nested key-expression ASTs.  Interning
# at the summarise chokepoint makes equal summaries *identical*, so
# every downstream lookup collapses to a pointer check.  The tables are
# caches, not registries: clearing them (at the size cap) only costs
# identity, never correctness.
_COMMAND_INTERN: Dict[CommandInfo, CommandInfo] = {}
_SUMMARY_INTERN: Dict["TransactionSummary", "TransactionSummary"] = {}
_INTERN_LIMIT = 1 << 16


def _interned(table, obj):
    cached = table.get(obj)
    if cached is not None:
        return cached
    if len(table) >= _INTERN_LIMIT:
        table.clear()
    table[obj] = obj
    return obj


def summarize_transaction(
    program: ast.Program, txn: ast.Transaction
) -> TransactionSummary:
    commands: List[CommandInfo] = []
    bindings: List[Tuple[str, str]] = []

    def walk(body: Sequence[ast.Command], in_loop: bool, in_branch: bool) -> None:
        for cmd in body:
            if isinstance(cmd, ast.Select):
                info = _summarize_select(program, txn, cmd, in_loop, in_branch)
                commands.append(info)
                bindings.append((cmd.var, cmd.label))
            elif isinstance(cmd, ast.Update):
                commands.append(
                    _summarize_update(program, txn, cmd, in_loop, in_branch)
                )
            elif isinstance(cmd, ast.Insert):
                commands.append(
                    _summarize_insert(program, txn, cmd, in_loop, in_branch)
                )
            elif isinstance(cmd, ast.If):
                walk(cmd.body, in_loop, True)
            elif isinstance(cmd, ast.Iterate):
                walk(cmd.body, True, in_branch)

    walk(txn.body, False, False)
    summary = TransactionSummary(
        name=txn.name,
        params=txn.params,
        commands=tuple(_interned(_COMMAND_INTERN, c) for c in commands),
        bindings=tuple(bindings),
    )
    return _interned(_SUMMARY_INTERN, summary)


def summarize_program(program: ast.Program) -> Dict[str, TransactionSummary]:
    """Summaries for every transaction, keyed by transaction name."""
    return {
        txn.name: summarize_transaction(program, txn)
        for txn in program.transactions
    }


def _summarize_select(
    program: ast.Program,
    txn: ast.Transaction,
    cmd: ast.Select,
    in_loop: bool,
    in_branch: bool,
) -> CommandInfo:
    schema = program.schema(cmd.table)
    selected = cmd.selected_fields(schema)
    read = _ordered_union(ast.where_fields(cmd.where), selected)
    key_exprs = well_formed_where(schema, cmd.where)
    return CommandInfo(
        txn=txn.name,
        label=cmd.label,
        kind="select",
        table=cmd.table,
        read_fields=read,
        write_fields=(),
        key_exprs=tuple(sorted(key_exprs.items())) if key_exprs else None,
        var=cmd.var,
        in_loop=in_loop,
        in_branch=in_branch,
    )


def _summarize_update(
    program: ast.Program,
    txn: ast.Transaction,
    cmd: ast.Update,
    in_loop: bool,
    in_branch: bool,
) -> CommandInfo:
    schema = program.schema(cmd.table)
    key_exprs = well_formed_where(schema, cmd.where)
    rmw: List[Tuple[str, Tuple[Tuple[str, str], ...]]] = []
    for f, expr in cmd.assignments:
        sources = tuple(sorted(expression_field_accesses(expr)))
        if sources:
            rmw.append((f, sources))
    return CommandInfo(
        txn=txn.name,
        label=cmd.label,
        kind="update",
        table=cmd.table,
        read_fields=ast.where_fields(cmd.where),
        write_fields=cmd.written_fields,
        key_exprs=tuple(sorted(key_exprs.items())) if key_exprs else None,
        rmw_sources=tuple(rmw),
        in_loop=in_loop,
        in_branch=in_branch,
    )


def _summarize_insert(
    program: ast.Program,
    txn: ast.Transaction,
    cmd: ast.Insert,
    in_loop: bool,
    in_branch: bool,
) -> CommandInfo:
    schema = program.schema(cmd.table)
    assignments = dict(cmd.assignments)
    key_exprs = tuple(sorted((k, assignments[k]) for k in schema.key))
    uuid_key = any(isinstance(assignments[k], ast.Uuid) for k in schema.key)
    return CommandInfo(
        txn=txn.name,
        label=cmd.label,
        kind="insert",
        table=cmd.table,
        read_fields=(),
        write_fields=tuple(cmd.written_fields) + ("alive",),
        key_exprs=key_exprs,
        uuid_key=uuid_key,
        in_loop=in_loop,
        in_branch=in_branch,
    )


def _ordered_union(*seqs: Sequence[str]) -> Tuple[str, ...]:
    out: List[str] = []
    for seq in seqs:
        for item in seq:
            if item not in out:
                out.append(item)
    return tuple(out)


def rmw_field(
    summary: TransactionSummary, read: CommandInfo, write: CommandInfo
) -> Optional[str]:
    """The field making (read, write) a read-modify-write pair, if any.

    Requires: same table, ``write`` assigns a field whose expression
    accesses that same field from the variable bound by ``read``.
    """
    if read.kind != "select" or write.kind != "update":
        return None
    if read.table != write.table or read.var is None:
        return None
    for assigned, sources in write.rmw_sources:
        for var, src_field in sources:
            if var == read.var and src_field == assigned and assigned in read.read_fields:
                return assigned
    return None
