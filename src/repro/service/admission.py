"""Admission control: say no at the door, cheaply and machine-readably.

Every rejection here exists to protect the expensive part of the system
(solver work, the durable queue) from the cheap part (accepting bytes
off a socket).  Three gates, checked in order, each with a stable error
code so clients can dispatch without parsing messages:

- **draining** (503, ``draining``) -- the server got SIGTERM and is
  finishing in-flight work; retry against its replacement;
- **request size** (413, ``request-too-large``) -- bodies over
  ``max_request_bytes`` are refused before they are parsed;
- **rate** (429, ``rate-limited``) -- a per-client token bucket
  (``rate_limit`` requests/second sustained, ``rate_burst`` burst);
- **queue depth** (429, ``queue-full``) -- applied by the server at job
  submission: once the store holds ``max_queue_depth`` queued jobs, new
  work is refused rather than accepted into an ever-growing backlog.

429/503 responses carry ``Retry-After``; a well-behaved client backs
off exactly that long (the load driver under ``benchmarks/`` does).
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict
from typing import Dict, Optional

from repro.api.errors import (
    RateLimitedError,
    RequestTooLargeError,
    ServiceDrainingError,
)

#: Default admission knobs (see ``repro serve --help`` for the flags).
DEFAULT_MAX_QUEUE_DEPTH = 64
DEFAULT_MAX_REQUEST_BYTES = 1 << 20  # 1 MiB: the largest corpus program is ~4 KiB

#: Client buckets tracked before the oldest-idle one is evicted; bounds
#: admission-state memory under address churn (an evicted client simply
#: starts from a full bucket again).
MAX_TRACKED_CLIENTS = 4096


class TokenBucket:
    """The classic leaky counter: ``rate`` tokens/second, ``burst`` cap."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_take(self, now: float) -> Optional[float]:
        """Take one token; returns ``None`` on success or the seconds
        until one becomes available."""
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Per-server admission state: drain flag, size cap, client buckets.

    ``rate_limit=None`` disables rate limiting (the default: a private
    service behind a trusted proxy should not surprise-throttle
    itself).  All methods are thread-safe; the HTTP handler calls
    :meth:`admit` once per mutating request.
    """

    def __init__(
        self,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        jitter_seed: Optional[int] = None,
    ):
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (rate_limit * 2 if rate_limit else None)
        )
        self.max_request_bytes = max_request_bytes
        self.draining = False
        # Seeded jitter on Retry-After: without it, every client told
        # "retry in 2" comes back in the same instant and the 429s
        # synchronize into a thundering herd.  A seed makes backoff
        # schedules reproducible in tests and chaos runs.
        self._jitter = random.Random(jitter_seed)
        self._buckets: "OrderedDict[str, TokenBucket]" = OrderedDict()
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "admitted": 0,
            "rate_limited": 0,
            "queue_full": 0,
            "too_large": 0,
            "draining": 0,
        }

    # -- the gate ----------------------------------------------------------

    def admit(self, client: Optional[str], body_bytes: int) -> None:
        """Raise the right :class:`~repro.api.errors.ApiError` subclass
        if this mutating request must be refused; count it either way."""
        if self.draining:
            self._count("draining")
            raise ServiceDrainingError(
                "server is draining (finishing in-flight work before "
                "shutdown); retry against a live instance",
                retry_after=self.retry_after(1),
            )
        if body_bytes > self.max_request_bytes:
            self._count("too_large")
            raise RequestTooLargeError(
                f"request body of {body_bytes} bytes exceeds the "
                f"{self.max_request_bytes}-byte cap"
            )
        if self.rate_limit and client is not None:
            wait = self._take(client)
            if wait is not None:
                self._count("rate_limited")
                raise RateLimitedError(
                    f"client {client} exceeded {self.rate_limit:g} "
                    "requests/second",
                    retry_after=self.retry_after(int(wait + 0.999)),
                )
        self._count("admitted")

    def note_queue_full(self) -> None:
        """The queue-depth gate lives at the submission site (it needs
        the store); it reports its rejections here for ``/v1/stats``."""
        self._count("queue_full")

    def retry_after(self, base: int) -> int:
        """``base`` seconds plus 0-2s of seeded jitter, floored at 1 --
        the value every 429/503 puts in its ``Retry-After`` header."""
        with self._lock:
            return max(1, int(base) + self._jitter.randrange(0, 3))

    # -- internals ---------------------------------------------------------

    def _take(self, client: str) -> Optional[float]:
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.pop(client, None)
            if bucket is None:
                bucket = TokenBucket(self.rate_limit, self.rate_burst, now)
            self._buckets[client] = bucket  # re-insert = most recent
            while len(self._buckets) > MAX_TRACKED_CLIENTS:
                self._buckets.popitem(last=False)
            return bucket.try_take(now)

    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)
