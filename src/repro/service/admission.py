"""Admission control: say no at the door, cheaply and machine-readably.

Every rejection here exists to protect the expensive part of the system
(solver work, the durable queue) from the cheap part (accepting bytes
off a socket).  The gates, checked in order, each with a stable error
code so clients can dispatch without parsing messages:

- **draining** (503, ``draining``) -- the server got SIGTERM and is
  finishing in-flight work; retry against its replacement;
- **request size** (413, ``request-too-large``) -- bodies over
  ``max_request_bytes`` are refused before they are parsed;
- **suspension** (429, ``tenant-suspended``) -- the tenant was
  suspended by an operator, or its circuit breaker opened because its
  recent jobs keep failing;
- **rate** (429, ``rate-limited`` / ``tenant-rate-limited``) -- a
  per-tenant token bucket (``rate_limit`` requests/second sustained,
  ``rate_burst`` burst);
- **queue depth** (429, ``tenant-queue-full`` / ``queue-full``) --
  applied by the server at job submission: first the tenant's
  ``max_queued_per_tenant`` share (when configured), then the global
  ``max_queue_depth`` cap.

429/503 responses carry ``Retry-After``; a well-behaved client backs
off exactly that long (the load driver under ``benchmarks/`` does).

Tenant identity: :func:`resolve_tenant` maps the ``X-Repro-Tenant``
header to the tenant id, falling back to the client address (so a
deployment that never sends the header gets exactly the old per-address
behavior).  Resolution is failure-proof by design: a malformed header
or an injected fault at the ``admission.tenant_lookup`` failpoint
degrades to the address-keyed default instead of a 500.
"""

from __future__ import annotations

import random
import re
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.api.errors import (
    RateLimitedError,
    RequestTooLargeError,
    ServiceDrainingError,
    TenantRateLimitedError,
    TenantSuspendedError,
)
from repro.faults import FaultInjected, failpoint
from repro.service.store import DEFAULT_TENANT

#: Default admission knobs (see ``repro serve --help`` for the flags).
DEFAULT_MAX_QUEUE_DEPTH = 64
DEFAULT_MAX_REQUEST_BYTES = 1 << 20  # 1 MiB: the largest corpus program is ~4 KiB

#: Tenant buckets tracked before the longest-idle one is evicted; bounds
#: admission-state memory under identity churn (an evicted tenant simply
#: starts from a full bucket again).
MAX_TRACKED_CLIENTS = 4096

#: Tenant ids accepted from the ``X-Repro-Tenant`` header.  Anything
#: else (too long, empty, shell-hostile characters) falls back to the
#: client address -- resolution must never be a 400 or a 500.
MAX_TENANT_LENGTH = 64
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:-]*$")

#: Per-tenant circuit breaker: judge the tenant's newest finished jobs
#: within the window; at least ``BREAKER_MIN_SAMPLE`` finished with a
#: failure ratio at or above ``BREAKER_FAILURE_RATIO`` opens the
#: breaker for ``BREAKER_COOLDOWN_S``.  The store probe is cached for
#: ``BREAKER_PROBE_TTL_S`` so a hot tenant costs one indexed query per
#: second, not one per request.
BREAKER_WINDOW_S = 60.0
BREAKER_SAMPLE = 8
BREAKER_MIN_SAMPLE = 4
BREAKER_FAILURE_RATIO = 0.75
BREAKER_COOLDOWN_S = 15.0
BREAKER_PROBE_TTL_S = 1.0


def resolve_tenant(header: Optional[str], client: Optional[str]) -> str:
    """The tenant a request acts as: the ``X-Repro-Tenant`` header when
    present and well-formed, else the client address, else
    :data:`DEFAULT_TENANT`.

    The ``admission.tenant_lookup`` failpoint models a failing identity
    backend (a directory service, a token introspection); any fault
    there degrades to the address-keyed default -- tenancy failures
    must cost isolation, never availability.
    """
    fallback = client or DEFAULT_TENANT
    try:
        failpoint("admission.tenant_lookup")
    except FaultInjected:
        return fallback
    if header is None:
        return fallback
    name = header.strip()
    if not name or len(name) > MAX_TENANT_LENGTH or not _TENANT_RE.match(name):
        return fallback
    return name


class TokenBucket:
    """The classic leaky counter: ``rate`` tokens/second, ``burst`` cap."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_take(self, now: float) -> Optional[float]:
        """Take one token; returns ``None`` on success or the seconds
        until one becomes available."""
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate


class AdmissionController:
    """Per-server admission state: drain flag, size cap, tenant buckets,
    suspensions, and the per-tenant circuit breaker.

    ``rate_limit=None`` disables rate limiting (the default: a private
    service behind a trusted proxy should not surprise-throttle
    itself).  ``failure_probe`` -- wired by the server to
    :meth:`~repro.service.store.JobStore.tenant_failure_window` -- feeds
    the breaker; without one the breaker is inert.  All methods are
    thread-safe; the HTTP handler calls :meth:`admit` once per mutating
    request with the tenant :func:`resolve_tenant` produced.
    """

    def __init__(
        self,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
        jitter_seed: Optional[int] = None,
        failure_probe: Optional[Callable[[str], Tuple[int, int]]] = None,
    ):
        self.rate_limit = rate_limit
        self.rate_burst = (
            rate_burst
            if rate_burst is not None
            else (rate_limit * 2 if rate_limit else None)
        )
        self.max_request_bytes = max_request_bytes
        self.draining = False
        self.failure_probe = failure_probe
        # Seeded jitter on Retry-After: without it, every client told
        # "retry in 2" comes back in the same instant and the 429s
        # synchronize into a thundering herd.  A seed makes backoff
        # schedules reproducible in tests and chaos runs.
        self._jitter = random.Random(jitter_seed)
        self._buckets: Dict[str, TokenBucket] = {}
        self._suspended: set = set()
        self._breaker_open_until: Dict[str, float] = {}
        self._breaker_probed_at: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "admitted": 0,
            "rate_limited": 0,
            "queue_full": 0,
            "too_large": 0,
            "draining": 0,
            "suspended": 0,
            "breaker_trips": 0,
        }
        #: tenant -> {"shed": refused requests, "breaker_trips": opens}.
        self._tenant_counters: Dict[str, Dict[str, int]] = {}

    # -- the gate ----------------------------------------------------------

    def admit(
        self,
        tenant: Optional[str],
        body_bytes: int,
        explicit_tenant: bool = False,
    ) -> None:
        """Raise the right :class:`~repro.api.errors.ApiError` subclass
        if this mutating request must be refused; count it either way.

        ``tenant`` is the resolved identity (an address when no header
        was sent); ``explicit_tenant`` selects the tenant-scoped error
        codes (``tenant-rate-limited``) over the address-keyed legacy
        ones (``rate-limited``), so header-less deployments keep their
        exact pre-tenancy wire surface.
        """
        if self.draining:
            self._count("draining")
            raise ServiceDrainingError(
                "server is draining (finishing in-flight work before "
                "shutdown); retry against a live instance",
                retry_after=self.retry_after(1),
            )
        if body_bytes > self.max_request_bytes:
            self._count("too_large")
            raise RequestTooLargeError(
                f"request body of {body_bytes} bytes exceeds the "
                f"{self.max_request_bytes}-byte cap"
            )
        if tenant is not None:
            self._check_suspended(tenant)
            self._check_breaker(tenant)
        if self.rate_limit and tenant is not None:
            wait = self._take(tenant)
            if wait is not None:
                self._count("rate_limited")
                self._count_tenant(tenant, "shed")
                exc_cls = (
                    TenantRateLimitedError
                    if explicit_tenant
                    else RateLimitedError
                )
                raise exc_cls(
                    f"tenant {tenant} exceeded {self.rate_limit:g} "
                    "requests/second",
                    retry_after=self.retry_after(int(wait + 0.999)),
                )
        self._count("admitted")

    def note_queue_full(self, tenant: Optional[str] = None) -> None:
        """The queue-depth gates live at the submission site (they need
        the store); they report their rejections here for ``/v1/stats``."""
        self._count("queue_full")
        if tenant is not None:
            self._count_tenant(tenant, "shed")

    def retry_after(self, base: int) -> int:
        """``base`` seconds plus 0-2s of seeded jitter, floored at 1 --
        the value every 429/503 puts in its ``Retry-After`` header."""
        with self._lock:
            return max(1, int(base) + self._jitter.randrange(0, 3))

    # -- suspension and the circuit breaker --------------------------------

    def suspend(self, tenant: str) -> None:
        """Operator suspension: every mutating request from ``tenant``
        is refused with ``tenant-suspended`` until :meth:`resume`."""
        with self._lock:
            self._suspended.add(tenant)

    def resume(self, tenant: str) -> None:
        """Lift an operator suspension and any open breaker cooldown."""
        with self._lock:
            self._suspended.discard(tenant)
            self._breaker_open_until.pop(tenant, None)
            self._breaker_probed_at.pop(tenant, None)

    def is_suspended(self, tenant: str) -> bool:
        with self._lock:
            return tenant in self._suspended

    def _check_suspended(self, tenant: str) -> None:
        with self._lock:
            suspended = tenant in self._suspended
        if suspended:
            self._count("suspended")
            self._count_tenant(tenant, "shed")
            raise TenantSuspendedError(
                f"tenant {tenant} is suspended by an operator; contact "
                "the service owner (or POST /v1/tenants/<id>/resume)",
                retry_after=self.retry_after(30),
            )

    def _check_breaker(self, tenant: str) -> None:
        now = time.monotonic()
        with self._lock:
            until = self._breaker_open_until.get(tenant, 0.0)
            if until > now:
                open_for = until - now
            else:
                open_for = None
                probe_due = (
                    self.failure_probe is not None
                    and now - self._breaker_probed_at.get(tenant, 0.0)
                    >= BREAKER_PROBE_TTL_S
                )
                if probe_due:
                    self._breaker_probed_at[tenant] = now
        if open_for is None and probe_due:
            try:
                finished, failed = self.failure_probe(tenant)
            except Exception:  # noqa: BLE001 - the breaker fails open
                return
            if (
                finished >= BREAKER_MIN_SAMPLE
                and failed / finished >= BREAKER_FAILURE_RATIO
            ):
                with self._lock:
                    self._breaker_open_until[tenant] = (
                        time.monotonic() + BREAKER_COOLDOWN_S
                    )
                self._count("breaker_trips")
                self._count_tenant(tenant, "breaker_trips")
                open_for = BREAKER_COOLDOWN_S
        if open_for is not None:
            self._count("suspended")
            self._count_tenant(tenant, "shed")
            raise TenantSuspendedError(
                f"tenant {tenant} is shedding load: its recent jobs keep "
                "failing (circuit breaker open); fix the requests and "
                "retry after the cooldown",
                retry_after=self.retry_after(int(open_for + 0.999)),
            )

    # -- internals ---------------------------------------------------------

    def _take(self, tenant: str) -> Optional[float]:
        now = time.monotonic()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.rate_limit, self.rate_burst, now)
                self._buckets[tenant] = bucket
            while len(self._buckets) > MAX_TRACKED_CLIENTS:
                # Evict by idle time (oldest bucket.updated), not by
                # insertion order: an old-but-active tenant must survive
                # a churn of one-shot newcomers, and an actively
                # throttled abuser must not reset its bucket by pushing
                # the table over the cap.
                idlest = min(
                    self._buckets, key=lambda k: self._buckets[k].updated
                )
                del self._buckets[idlest]
            return bucket.try_take(now)

    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    def _count_tenant(self, tenant: str, key: str) -> None:
        with self._lock:
            entry = self._tenant_counters.setdefault(
                tenant, {"shed": 0, "breaker_trips": 0}
            )
            entry[key] += 1

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def tenant_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant shed/breaker counters (the admission half of
        ``stats.service.tenants``)."""
        with self._lock:
            return {
                tenant: dict(entry)
                for tenant, entry in self._tenant_counters.items()
            }
