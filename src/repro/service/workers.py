"""Worker processes: the execution tier of the service topology.

The HTTP process accepts and persists jobs; *these* processes run them.
Each worker is a real OS process (stdlib ``multiprocessing``, spawn
context) with its own :class:`~repro.api.Workspace` -- its own warm
:class:`~repro.analysis.oracle.OracleSession` pool and memo cache -- so
N workers put N cores to work where the old single-process queue was
GIL-bound.  Workers consume from the shared
:class:`~repro.service.store.JobStore` with shard preference (see
:func:`~repro.service.store.shard_key_of`): a worker's shard of the
request space keeps hitting the same warm solver state, and the steal
fallback keeps skewed shards from idling anyone.

Crash handling is the pool monitor's job: a dead worker's claimed jobs
are re-enqueued through :meth:`~repro.service.store.JobStore.recover`
and a replacement process is spawned, so a SIGKILL mid-job delays that
job's result rather than losing it.  Graceful drain flips a shared stop
event; each worker finishes its in-flight job, checkpoints its caches
(``Workspace.close`` flushes the persistent query cache), and exits.

``workers=0`` keeps execution in the server process: an
:class:`InlineRunner` thread drains the same store with the server's
own shared workspace.  Same durability (the store is still sqlite),
no process fan-out -- the right default for tests and one-core hosts.
"""

from __future__ import annotations

import multiprocessing
import os
import sqlite3
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro import faults
from repro.api.errors import JobCancelledError, error_payload
from repro.api.events import ProgressEvent
from repro.api.types import decode_request
from repro.api.workspace import WorkspaceConfig
from repro.faults import FaultInjected, failpoint
from repro.service.store import DEFAULT_TENANT, Job, JobStore

#: Idle delay between empty claim attempts.  Low enough that job pickup
#: latency is invisible next to solver work, high enough that an idle
#: fleet costs no measurable CPU.
POLL_INTERVAL = 0.05

#: Floor between cancel-flag polls in the progress hook.  Every progress
#: event is a poll opportunity; this keeps a chatty phase from turning
#: each one into a store read.
CANCEL_POLL_INTERVAL = 0.05

#: Consecutive fast worker deaths before that worker slot's circuit
#: breaker opens (no respawn until the cooldown passes).
BREAKER_THRESHOLD = 3

#: How long an open breaker keeps its slot down.  Work keeps flowing:
#: the other workers steal the idle shard's jobs.
BREAKER_COOLDOWN_S = 30.0

#: A worker that survived at least this long before dying was doing real
#: work, not crash-looping; its death resets the streak.
BREAKER_HEALTHY_S = 10.0

#: Per-tenant workspaces a worker keeps warm at once.  Each open
#: workspace is a solver-session pool plus a memo cache, so the pool is
#: small; the least-recently-served tenant's workspace is closed (which
#: checkpoints its persistent cache) when a new tenant needs a slot.
MAX_TENANT_WORKSPACES = 4


class TenantWorkspaces:
    """Per-tenant workspace pool for one worker process.

    Tenancy must isolate *caches* too: tenant A's persistent query
    cache must not serve (or be poisoned by) tenant B's entries, so
    each non-default tenant gets a workspace built from
    :meth:`~repro.api.workspace.WorkspaceConfig.for_tenant` -- its own
    ``tenant-<id>`` cache subdirectory.  The default tenant (and every
    tenant when no ``cache_dir`` is configured, where there is nothing
    durable to isolate) shares the base workspace, which keeps the
    single-tenant hot path identical to the pre-tenancy behavior.
    """

    def __init__(self, config: WorkspaceConfig, max_open: int = MAX_TENANT_WORKSPACES):
        self.config = config
        self.max_open = max_open
        self.base = config.build()
        self._pool: "OrderedDict[str, object]" = OrderedDict()

    def get(self, tenant: str):
        if tenant == DEFAULT_TENANT or not self.config.cache_dir:
            return self.base
        workspace = self._pool.get(tenant)
        if workspace is None:
            workspace = self.config.for_tenant(tenant).build()
            self._pool[tenant] = workspace
            while len(self._pool) > self.max_open:
                _, evicted = self._pool.popitem(last=False)
                evicted.close()  # checkpoint before the slot is reused
        else:
            self._pool.move_to_end(tenant)
        return workspace

    def close(self) -> None:
        for workspace in self._pool.values():
            workspace.close()
        self._pool.clear()
        self.base.close()


def execute_job(workspace, store: JobStore, job: Job) -> None:
    """Run one claimed job to completion against ``workspace``.

    Progress events stream into the store as they happen (the
    ``/v1/jobs/<id>/events`` endpoint tails them); the result or error
    document is persisted in the final state transition.  Jobs are pure
    functions of their request document, which is what makes crash-
    retry (re-claiming the same row) safe.

    The progress hook doubles as the cooperative-cancellation check:
    each event (time-gated) re-reads the job's ``cancel_requested``
    flag and aborts the operation by raising out of the callback (the
    :mod:`repro.events` contract), landing the job terminal
    ``cancelled`` without killing the worker.
    """
    last_poll = [0.0]

    def on_progress(event) -> None:
        now = time.monotonic()
        if now - last_poll[0] >= CANCEL_POLL_INTERVAL:
            last_poll[0] = now
            if store.cancel_requested(job.id):
                raise JobCancelledError(f"job {job.id} cancelled by request")
        if event.stage == "analyze.tick":
            # Ticks exist to give this hook something to poll on during
            # long fan-outs; persisting them would spam the event log.
            return
        try:
            store.record_event(job.id, event)
        except (FaultInjected, sqlite3.Error):
            # The event log is best-effort narration -- an injected or
            # real write failure must not fail the job itself.
            pass

    try:
        request = decode_request(job.request)
        if job.kind == "analyze":
            result = workspace.analyze(request, on_progress=on_progress)
        elif job.kind == "repair":
            result = workspace.repair(request, on_progress=on_progress)
        elif job.kind == "protect":
            result = workspace.protect(request, on_progress=on_progress)
        else:
            result = workspace.bench(request, on_progress=on_progress)
        failpoint("worker.pre_result")
        store.finish(job.id, result.to_json())
    except JobCancelledError:
        store.mark_cancelled(job.id)
        try:
            store.record_event(job.id, ProgressEvent("job.cancelled", {}))
        except (FaultInjected, sqlite3.Error):
            pass
    except FaultInjected:
        # An injected fault is transient by definition: give the job
        # back (burning the attempt the claim took) instead of failing
        # it -- the chaos gate requires every job to land terminal with
        # its fault-free result whenever attempts remain.
        store.release(job.id)
    except Exception as exc:  # noqa: BLE001 - job boundary
        store.fail(job.id, error_payload(exc))


def _drain_loop(
    store: JobStore,
    workspace,
    owner: str,
    should_stop: Callable[[], bool],
    shard: Optional[int] = None,
    shards: Optional[int] = None,
    poll_interval: float = POLL_INTERVAL,
    weights: Optional[Dict[str, float]] = None,
    max_running_per_tenant: Optional[int] = None,
    workspace_for: Optional[Callable[[str], object]] = None,
) -> None:
    """Claim-execute until told to stop; shared by both runner kinds.

    ``weights``/``max_running_per_tenant`` flow into the store's
    deficit-weighted claim; ``workspace_for`` (when given) selects the
    per-tenant workspace each claimed job runs against.
    """
    while not should_stop():
        try:
            job = store.claim(
                owner, shard=shard, shards=shards,
                weights=weights,
                max_running_per_tenant=max_running_per_tenant,
            )
        except sqlite3.ProgrammingError:
            # The store was closed under us: the inline tier's daemon
            # thread can lose the race with server shutdown between the
            # stop check and the claim.  Nothing left to drain.
            return
        except (FaultInjected, sqlite3.OperationalError):
            # A claim that failed (injected, or a real lock pile-up
            # outliving the store's bounded retry) claimed nothing:
            # back off and try again rather than killing the runner.
            time.sleep(poll_interval)
            continue
        if job is None:
            time.sleep(poll_interval)
            continue
        target = workspace_for(job.tenant) if workspace_for else workspace
        try:
            execute_job(target, store, job)
            store.prune()
        except sqlite3.ProgrammingError:
            # Closed under us mid-job (a non-draining shutdown stops
            # claiming but lets the in-flight job run): the claimed row
            # is re-enqueued on restart by owner expiry, so dropping
            # this result loses nothing durable.
            return
        except sqlite3.OperationalError:
            pass  # retention is periodic; the next pass catches up
    # Drain exit is a retention checkpoint too: a worker told to stop
    # while idle still leaves the store pruned, so retention does not
    # depend on one more job arriving first.  sqlite3.Error (not just
    # OperationalError): the inline tier's daemon thread can observe
    # the stop flag after the server already closed the shared store.
    try:
        store.prune()
    except sqlite3.Error:
        pass


def worker_main(
    index: int,
    shards: int,
    job_db: str,
    config: WorkspaceConfig,
    stop_event,
    poll_interval: float = POLL_INTERVAL,
    tenant_weights: Optional[Dict[str, float]] = None,
    max_running_per_tenant: Optional[int] = None,
) -> None:
    """Entry point of one worker process (must be importable: spawn)."""
    # Spawned processes inherit the environment, not the parent's
    # in-process fault plan: re-arm it here (crash actions included --
    # killing a worker is exactly what the pool monitor must survive).
    faults.install_from_env()
    store = JobStore(job_db)
    workspaces = TenantWorkspaces(config)
    owner = f"w{index}-{os.getpid()}"
    try:
        _drain_loop(
            store, workspaces.base, owner,
            stop_event.is_set,
            shard=index, shards=shards,
            poll_interval=poll_interval,
            weights=tenant_weights,
            max_running_per_tenant=max_running_per_tenant,
            workspace_for=workspaces.get,
        )
    finally:
        # Graceful exit checkpoints the worker's persistent query caches
        # (Workspace.close flushes them) -- the warm state a drain hands
        # to the next process generation.
        workspaces.close()
        store.close()


class WorkerPool:
    """N worker processes over one job database, with crash recovery.

    The pool owns only process lifecycle; all work state lives in the
    store.  The monitor thread restarts dead workers and re-enqueues
    whatever they had claimed; :meth:`drain` is the graceful path
    (finish in-flight, then exit), :meth:`stop` the immediate one.
    """

    def __init__(
        self,
        job_db: str,
        config: WorkspaceConfig,
        workers: int,
        poll_interval: float = POLL_INTERVAL,
        tenant_weights: Optional[Dict[str, float]] = None,
        max_running_per_tenant: Optional[int] = None,
    ):
        if workers < 1:
            raise ValueError("WorkerPool needs at least one worker")
        self.job_db = job_db
        self.config = config
        self.workers = workers
        self.poll_interval = poll_interval
        self.tenant_weights = dict(tenant_weights or {})
        self.max_running_per_tenant = max_running_per_tenant
        self.restarts = 0
        self.breaker_trips = 0
        self._ctx = multiprocessing.get_context("spawn")
        self._stop_event = self._ctx.Event()
        self._procs: List[Optional[multiprocessing.Process]] = [None] * workers
        # Per-slot circuit breaker: consecutive fast deaths trip it,
        # opening the slot (no respawn) for a cooldown; the shard-steal
        # fallback in JobStore.claim keeps that shard's jobs flowing
        # through the surviving workers meanwhile.
        self._streaks = [0] * workers
        self._spawned_at = [0.0] * workers
        self._cooldown_until = [0.0] * workers
        self._store = JobStore(job_db)
        self._monitor: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        for index in range(self.workers):
            self._spawn(index)
        self._monitor = threading.Thread(
            target=self._watch, name="repro-worker-monitor", daemon=True
        )
        self._monitor.start()

    def _spawn(self, index: int) -> None:
        proc = self._ctx.Process(
            target=worker_main,
            args=(
                index,
                self.workers,
                self.job_db,
                self.config.for_worker(index),
                self._stop_event,
                self.poll_interval,
                self.tenant_weights,
                self.max_running_per_tenant,
            ),
            name=f"repro-worker-{index}",
            daemon=True,
        )
        proc.start()
        self._procs[index] = proc
        self._spawned_at[index] = time.monotonic()

    def active_owners(self) -> List[str]:
        """Owner ids of currently live workers (dead workers' claims are
        orphans by definition)."""
        with self._lock:
            return [
                f"w{index}-{proc.pid}"
                for index, proc in enumerate(self._procs)
                if proc is not None and proc.is_alive()
            ]

    def pids(self) -> List[int]:
        with self._lock:
            return [
                proc.pid
                for proc in self._procs
                if proc is not None and proc.pid is not None
            ]

    def _watch(self) -> None:
        """Restart dead workers and rescue their claimed jobs.

        Respawns back off exponentially (0.2s -> 5s) while workers keep
        dying, so a worker that cannot even boot (bad cache dir, broken
        environment) costs a few respawns per second, not thousands.
        A slot that dies :data:`BREAKER_THRESHOLD` times in quick
        succession trips its circuit breaker instead: no respawn for
        :data:`BREAKER_COOLDOWN_S`, the remaining workers steal its
        shard's jobs."""
        delay = 0.2
        while not self._monitor_stop.wait(delay):
            if self._stop_event.is_set():
                continue
            died = False
            now = time.monotonic()
            with self._lock:
                for index, proc in enumerate(self._procs):
                    if proc is None:
                        if now >= self._cooldown_until[index]:
                            # Breaker half-open: try one fresh worker.
                            self._streaks[index] = 0
                            self._spawn(index)
                        continue
                    if not proc.is_alive():
                        died = True
                        self.restarts += 1
                        proc.join(timeout=0)
                        healthy = (
                            now - self._spawned_at[index] >= BREAKER_HEALTHY_S
                        )
                        self._streaks[index] = (
                            1 if healthy else self._streaks[index] + 1
                        )
                        if self._streaks[index] >= BREAKER_THRESHOLD:
                            self.breaker_trips += 1
                            self._cooldown_until[index] = (
                                now + BREAKER_COOLDOWN_S
                            )
                            self._procs[index] = None
                        else:
                            self._spawn(index)
            delay = min(5.0, delay * 2) if died else 0.2
            if died:
                # Recover *after* respawning: the replacement's owner id
                # is live, the dead one is not, so exactly the orphaned
                # claims go back to queued.
                self._store.recover(self.active_owners())

    def drain(self, timeout: float = 60.0) -> bool:
        """Graceful stop: finish in-flight jobs, checkpoint caches, exit.
        Returns whether every worker exited within ``timeout``."""
        self._monitor_stop.set()
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
        deadline = time.monotonic() + timeout
        clean = True
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
                clean = False
        self._store.close()
        return clean

    def stop(self) -> None:
        """Immediate teardown (tests, error paths); claimed jobs become
        orphans for the next :meth:`~repro.service.store.JobStore.recover`."""
        self._monitor_stop.set()
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        self._store.close()

    def counters(self) -> Dict[str, int]:
        return {
            "workers": self.workers,
            "alive": sum(
                1
                for proc in self._procs
                if proc is not None and proc.is_alive()
            ),
            "restarts": self.restarts,
            "breaker_trips": self.breaker_trips,
        }


class InlineRunner:
    """The ``workers=0`` execution tier: one daemon thread, the server's
    own workspace, the same durable store semantics."""

    def __init__(
        self,
        store: JobStore,
        workspace,
        poll_interval: float = POLL_INTERVAL,
        tenant_weights: Optional[Dict[str, float]] = None,
        max_running_per_tenant: Optional[int] = None,
    ):
        self.store = store
        self.workspace = workspace
        self.poll_interval = poll_interval
        self.tenant_weights = dict(tenant_weights or {})
        self.max_running_per_tenant = max_running_per_tenant
        self.owner = f"inline-{os.getpid()}"
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._run, name="repro-inline-runner", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        # The inline tier shares the server's one workspace for every
        # tenant: per-tenant cache isolation is a worker-process
        # concern (workers own their cache directories; the server's
        # is also serving the sync endpoints).
        _drain_loop(
            self.store, self.workspace, self.owner,
            self._stop.is_set, poll_interval=self.poll_interval,
            weights=self.tenant_weights,
            max_running_per_tenant=self.max_running_per_tenant,
        )

    def active_owners(self) -> List[str]:
        return [self.owner]

    def drain(self, timeout: float = 60.0) -> bool:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            return not self._thread.is_alive()
        return True

    def stop(self) -> None:
        # A thread cannot be killed; "immediate" stop for the inline
        # tier means stop claiming and let the in-flight job finish in
        # the daemon thread (the process is usually exiting anyway).
        self._stop.set()

    def counters(self) -> Dict[str, int]:
        alive = self._thread is not None and self._thread.is_alive()
        return {
            "workers": 0, "alive": int(alive),
            "restarts": 0, "breaker_trips": 0,
        }
