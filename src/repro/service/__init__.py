"""``repro.service``: the durable multi-process HTTP service tier.

Five modules, one topology (DESIGN.md has the diagram):

- :mod:`repro.service.server` -- the stdlib ``ThreadingHTTPServer``
  front door: routing, admission, job submission, event streaming;
- :mod:`repro.service.store` -- the sqlite :class:`JobStore`: every
  accepted job is a row, so restarts and worker crashes lose nothing;
- :mod:`repro.service.workers` -- the execution tier: N worker
  *processes* (each with its own warm workspace) or an in-process
  thread at ``workers=0``;
- :mod:`repro.service.admission` -- backpressure with stable error
  codes (429/413/503) before work costs anything;
- :mod:`repro.service.chaos` -- the seeded fault-injection harness
  (:func:`run_chaos`) that proves the recovery machinery above under
  combinatorial failures, and the two-tenant aggressor/victim fairness
  scenario (:func:`run_tenant_isolation`).

Start it with ``repro serve --workers 4`` or::

    from repro.service import serve
    serve(port=8472, workers=4, job_db="jobs.sqlite")
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.chaos import (
    SCENARIOS,
    default_plan,
    run_chaos,
    run_scenario,
    run_tenant_isolation,
    scenario_help,
)
from repro.service.server import (
    ReproHTTPServer,
    ReproService,
    make_server,
    serve,
)
from repro.service.store import Job, JobStore
from repro.service.workers import InlineRunner, WorkerPool

__all__ = [
    "AdmissionController",
    "InlineRunner",
    "Job",
    "JobStore",
    "ReproHTTPServer",
    "ReproService",
    "TokenBucket",
    "WorkerPool",
    "default_plan",
    "make_server",
    "SCENARIOS",
    "run_chaos",
    "run_scenario",
    "run_tenant_isolation",
    "scenario_help",
    "serve",
]
