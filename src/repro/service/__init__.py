"""``repro.service``: the stdlib JSON-over-HTTP server on the façade.

One :class:`~repro.api.workspace.Workspace` behind a
``ThreadingHTTPServer`` (:mod:`repro.service.server`) with an async job
queue for long repairs (:mod:`repro.service.jobs`).  Start it with
``repro serve`` or::

    from repro.service import serve
    serve(port=8472)
"""

from repro.service.jobs import Job, JobQueue
from repro.service.server import (
    ReproHTTPServer,
    ReproService,
    make_server,
    serve,
)

__all__ = [
    "Job",
    "JobQueue",
    "ReproHTTPServer",
    "ReproService",
    "make_server",
    "serve",
]
