"""The durable job store: every submitted job lives in sqlite, not RAM.

This is the spine of the multi-process service topology.  ``POST
/v1/jobs`` inserts a row; worker processes (:mod:`repro.service.workers`)
claim rows with an atomic ``queued -> running`` transition; results,
errors, and the progress-event log are written back to the same file.
Because the store *is* the queue, the properties the old in-memory
``JobQueue`` could not offer fall out of the schema:

- **restart-safe**: a server restart loses zero submitted jobs -- the
  new process reopens the file, :meth:`JobStore.recover` re-enqueues
  anything a dead owner left ``running``, and the workers drain the
  backlog exactly where it stood;
- **crash-safe**: a worker killed mid-job is detected by the pool
  monitor, its claimed jobs go back to ``queued`` (up to
  ``max_attempts``, then ``failed`` with code ``worker-crashed`` so a
  poison job cannot crash-loop the fleet);
- **result retention**: ``GET /v1/jobs/<id>`` for a finished job reads
  the stored result off disk for as long as the retention window keeps
  the row (:meth:`prune`), across restarts -- not until the next
  process exit.

Concurrency model: one sqlite file in WAL mode, opened by the server
process and by every worker process.  Claims run under ``BEGIN
IMMEDIATE`` so two workers can never claim the same row; everything
else is a single-statement autocommit write.  In-process callers
serialize on a lock (one connection per :class:`JobStore` instance,
``check_same_thread=False`` exactly like the persistent query cache).

Shard affinity: each job carries a ``shard_key`` -- a stable hash of
its canonical request document -- and :meth:`claim` prefers rows in the
calling worker's shard before stealing from others.  Identical or
re-submitted requests therefore land on the worker whose warm
:class:`~repro.analysis.oracle.OracleSession` pool already holds their
solver state (the PR 4 fingerprint-affinity routing, lifted from
threads to processes), while the steal fallback keeps a skewed shard
from idling the rest of the pool.

Tenancy: every job carries a ``tenant`` (resolved at admission from the
``X-Repro-Tenant`` header, the request envelope, or the client
address).  :meth:`claim` schedules *across* tenants with deficit-
weighted round-robin -- each claimer cycles tenants in sorted order,
granting each its weight in credit per pass and serving a job per
credit -- so a 1000-job backlog from one tenant delays another tenant's
first job by at most the in-flight job, not the whole backlog.  Shard
affinity still applies *within* the chosen tenant, and an optional
``max_running_per_tenant`` cap keeps one tenant from occupying every
worker at once.  DWRR state is per-claimer (per ``JobStore`` instance)
and needs no cross-process coordination: every claimer being locally
fair makes the fleet fair.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.api.errors import InvalidRequestError, JobNotFoundError
from repro.faults import failpoint

#: wire kind -> the short job kind reported in the job document.
JOB_KINDS = {
    "analyze_request": "analyze",
    "repair_request": "repair",
    "bench_request": "bench",
    "live_protect_request": "protect",
}

#: Cap on progress events retained per job (a runaway search must not
#: grow a job document without bound; the newest events win).
MAX_EVENTS = 500

#: Finished (done/failed) rows kept before :meth:`JobStore.prune`
#: deletes the oldest.  This is the retention window: within it, results
#: survive restarts; beyond it, eviction is explicit policy, not a
#: process lifetime accident.
MAX_FINISHED = 1024

#: Claims per job before the store gives up on it (a job whose worker
#: dies this many times is treated as the cause, not the victim).
MAX_ATTEMPTS = 3

#: The tenant jobs land under when nothing identifies one (no
#: ``X-Repro-Tenant`` header, no envelope ``tenant``, no client
#: address).  Also the sqlite column default, so pre-tenancy rows
#: migrate into this tenant.
DEFAULT_TENANT = "default"

#: Floor for configured DWRR weights: a zero or negative weight would
#: starve its tenant (or spin the scheduler loop); clamping keeps every
#: tenant schedulable and the credit loop bounded.
MIN_TENANT_WEIGHT = 0.05

#: Bounded retry-with-backoff for SQLITE_BUSY: beyond sqlite's own
#: ``busy_timeout``, a mutating statement that still loses the lock race
#: (or hits an injected busy fault) is retried this many times with
#: exponential backoff before the error propagates.
BUSY_RETRIES = 5
BUSY_BACKOFF_S = 0.01

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    status TEXT NOT NULL,
    request TEXT NOT NULL,
    shard_key INTEGER NOT NULL,
    result TEXT,
    error TEXT,
    created_at REAL NOT NULL,
    started_at REAL,
    finished_at REAL,
    owner TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    tenant TEXT NOT NULL DEFAULT 'default'
);
CREATE INDEX IF NOT EXISTS jobs_by_status ON jobs (status);
CREATE TABLE IF NOT EXISTS events (
    job_id TEXT NOT NULL,
    seq INTEGER NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (job_id, seq)
);
"""


@dataclass
class Job:
    """One stored job, hydrated from its row (plus its event log)."""

    id: str
    kind: str  # analyze | repair | bench | protect
    status: str  # queued | running | done | failed | cancelled
    request: dict
    created_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    worker: Optional[str] = None
    events: List[dict] = field(default_factory=list)
    result: Optional[dict] = None
    error: Optional[dict] = None
    tenant: str = DEFAULT_TENANT

    def to_json(self) -> dict:
        """The wire job document (``schemas/job.v1.json``)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "tenant": self.tenant,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "worker": self.worker,
            "events": list(self.events),
            "result": self.result,
            "error": self.error,
        }


def shard_key_of(request_json: dict) -> int:
    """Stable shard key for a request document.

    Canonical-JSON sha1, truncated to a signed-53-bit-safe int so the
    value round-trips through sqlite and JSON untouched.  The same
    request always lands in the same shard -- that is the affinity the
    warm solver pools exploit.
    """
    canonical = json.dumps(request_json, sort_keys=True).encode("utf-8")
    return int(hashlib.sha1(canonical).hexdigest()[:12], 16)


class JobStore:
    """Sqlite-backed job queue + result archive (one file, many processes).

    ``path`` is the database file; parents are created.  Every process
    that touches the queue (the HTTP server, each worker) opens its own
    ``JobStore`` on the same path.  ``max_attempts``/``max_finished``
    bound crash-retry loops and on-disk retention.
    """

    def __init__(
        self,
        path: str,
        max_attempts: int = MAX_ATTEMPTS,
        max_finished: int = MAX_FINISHED,
        max_finished_per_tenant: Optional[int] = None,
    ):
        self.path = path
        self.max_attempts = max_attempts
        self.max_finished = max_finished
        # None means per-tenant retention equals the global window (a
        # single-tenant store behaves exactly as before tenancy).
        self.max_finished_per_tenant = max_finished_per_tenant
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        # DWRR scheduler state (per claimer; see _pick_tenant).
        self._dwrr_credit: Dict[str, float] = {}
        self._dwrr_last: Optional[str] = None
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        try:
            self._conn = sqlite3.connect(
                path, isolation_level=None, check_same_thread=False,
                timeout=30.0,
            )
            # WAL lets the server list/poll jobs while a worker writes
            # results; NORMAL (not the memo cache's OFF) because this
            # file is the source of truth for accepted work, not a memo.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)
            # Databases written before jobs grew cancel_requested lack
            # the column (CREATE TABLE IF NOT EXISTS never alters).
            cols = {
                row[1]
                for row in self._conn.execute("PRAGMA table_info(jobs)")
            }
            if "cancel_requested" not in cols:
                self._conn.execute(
                    "ALTER TABLE jobs ADD COLUMN cancel_requested"
                    " INTEGER NOT NULL DEFAULT 0"
                )
            if "tenant" not in cols:
                self._conn.execute(
                    "ALTER TABLE jobs ADD COLUMN tenant"
                    f" TEXT NOT NULL DEFAULT '{DEFAULT_TENANT}'"
                )
            # The per-tenant depth/stats index is created outside
            # _SCHEMA: on a pre-tenancy database the column only exists
            # after the ALTER above.
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS jobs_by_tenant_status"
                " ON jobs (tenant, status)"
            )
        except sqlite3.DatabaseError as exc:
            raise RuntimeError(
                f"job database {path!r} is unreadable ({exc}); move the "
                "corrupt file aside and restart (accepted jobs in it are "
                "lost -- see OPERATIONS.md, failure modes)"
            ) from exc

    def _retry_busy(self, op):
        """Run ``op`` with bounded retry-with-backoff on SQLITE_BUSY.

        The store is opened by several processes; sqlite's own
        ``busy_timeout`` already absorbs most lock contention, so a
        busy error that still escapes is either pathological load or an
        injected fault -- both deserve a few patient retries before the
        caller sees the failure.
        """
        for attempt in range(BUSY_RETRIES):
            try:
                return op()
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                transient = "locked" in message or "busy" in message
                if not transient or attempt == BUSY_RETRIES - 1:
                    raise
                time.sleep(BUSY_BACKOFF_S * (2 ** attempt))

    # -- submission --------------------------------------------------------

    def submit(self, request, tenant: Optional[str] = None) -> Job:
        """Persist a decoded wire request as a ``queued`` job.

        ``tenant`` (usually the identity admission resolved from the
        ``X-Repro-Tenant`` header) wins over the request envelope's own
        ``tenant`` field; with neither, the job lands under
        :data:`DEFAULT_TENANT`.
        """
        kind = JOB_KINDS.get(getattr(request, "kind", None))
        if kind is None:
            raise InvalidRequestError(
                f"cannot run {type(request).__name__} as a job"
            )
        request_json = request.to_json()
        tenant = (
            tenant
            or getattr(request, "tenant", None)
            or DEFAULT_TENANT
        )
        job = Job(
            id=f"job-{next(self._counter):04d}-{uuid.uuid4().hex[:8]}",
            kind=kind,
            status="queued",
            request=request_json,
            created_at=time.time(),
            tenant=tenant,
        )
        with self._lock:
            self._retry_busy(
                lambda: self._conn.execute(
                    "INSERT INTO jobs (id, kind, status, request, shard_key,"
                    " created_at, attempts, tenant)"
                    " VALUES (?, ?, 'queued', ?, ?, ?, 0, ?)",
                    (
                        job.id,
                        kind,
                        json.dumps(request_json, sort_keys=True),
                        shard_key_of(request_json),
                        job.created_at,
                        tenant,
                    ),
                )
            )
        return job

    # -- worker side -------------------------------------------------------

    def claim(
        self,
        owner: str,
        shard: Optional[int] = None,
        shards: Optional[int] = None,
        weights: Optional[Dict[str, float]] = None,
        max_running_per_tenant: Optional[int] = None,
    ) -> Optional[Job]:
        """Atomically move the next ``queued`` job to ``running``.

        Tenant selection runs first: deficit-weighted round-robin over
        every tenant with backlog (``weights`` maps tenant -> relative
        share, default 1.0; ``max_running_per_tenant`` skips tenants
        already running that many jobs).  Within the chosen tenant,
        ``shard``/``shards`` prefer the caller's shard with a steal
        fallback, exactly as before tenancy.  Returns ``None`` when no
        eligible job exists.
        """
        return self._retry_busy(
            lambda: self._claim_once(
                owner, shard, shards, weights, max_running_per_tenant
            )
        )

    def _pick_tenant(
        self,
        eligible: List[str],
        weights: Optional[Dict[str, float]],
    ) -> str:
        """Deficit-weighted round-robin over ``eligible`` tenants.

        Classic DRR with unit-cost jobs: the claimer keeps a credit
        counter per tenant; a tenant is served while it holds a full
        credit, and earns its weight in credit each time the round-robin
        pointer reaches it.  Credits of tenants with no backlog are
        dropped (an empty queue must not bank credit for a later
        burst).  Caller holds ``self._lock``.
        """
        ring = sorted(eligible)
        for tenant in list(self._dwrr_credit):
            if tenant not in eligible:
                del self._dwrr_credit[tenant]
        if len(ring) == 1:
            self._dwrr_last = ring[0]
            return ring[0]

        def weight_of(tenant: str) -> float:
            value = (weights or {}).get(tenant, 1.0)
            return max(MIN_TENANT_WEIGHT, float(value))

        last = self._dwrr_last
        if last in self._dwrr_credit and self._dwrr_credit[last] >= 1.0:
            # Stay on the last-served tenant while it has credit: this
            # is what makes a weight of 2 mean two jobs per turn.
            self._dwrr_credit[last] -= 1.0
            return last
        start = (ring.index(last) + 1) if last in ring else 0
        # Each pass grants every tenant >= MIN_TENANT_WEIGHT credit, so
        # ceil(1 / MIN_TENANT_WEIGHT) passes guarantee a winner.
        limit = len(ring) * (int(1.0 / MIN_TENANT_WEIGHT) + 1)
        for step in range(limit):
            tenant = ring[(start + step) % len(ring)]
            credit = self._dwrr_credit.get(tenant, 0.0) + weight_of(tenant)
            if credit >= 1.0:
                self._dwrr_credit[tenant] = credit - 1.0
                self._dwrr_last = tenant
                return tenant
            self._dwrr_credit[tenant] = credit
        return ring[0]  # unreachable: the clamped weights bound the loop

    def _claim_once(
        self,
        owner: str,
        shard: Optional[int] = None,
        shards: Optional[int] = None,
        weights: Optional[Dict[str, float]] = None,
        max_running_per_tenant: Optional[int] = None,
    ) -> Optional[Job]:
        with self._lock:
            failpoint("jobstore.claim")
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                queued = dict(
                    self._conn.execute(
                        "SELECT tenant, COUNT(*) FROM jobs"
                        " WHERE status='queued' GROUP BY tenant"
                    ).fetchall()
                )
                eligible = list(queued)
                if eligible and max_running_per_tenant is not None:
                    running = dict(
                        self._conn.execute(
                            "SELECT tenant, COUNT(*) FROM jobs"
                            " WHERE status='running' GROUP BY tenant"
                        ).fetchall()
                    )
                    eligible = [
                        t for t in eligible
                        if running.get(t, 0) < max_running_per_tenant
                    ]
                if not eligible:
                    self._conn.execute("COMMIT")
                    return None
                tenant = self._pick_tenant(eligible, weights)
                row = None
                if shard is not None and shards:
                    row = self._conn.execute(
                        "SELECT id FROM jobs WHERE status='queued'"
                        " AND tenant=? AND (shard_key % ?) = ?"
                        " ORDER BY rowid LIMIT 1",
                        (tenant, shards, shard),
                    ).fetchone()
                if row is None:
                    row = self._conn.execute(
                        "SELECT id FROM jobs WHERE status='queued'"
                        " AND tenant=? ORDER BY rowid LIMIT 1",
                        (tenant,),
                    ).fetchone()
                job_id = row[0]
                self._conn.execute(
                    "UPDATE jobs SET status='running', owner=?,"
                    " started_at=?, attempts=attempts+1 WHERE id=?",
                    (owner, time.time(), job_id),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return self.get(job_id)

    def record_event(self, job_id: str, event) -> None:
        """Append one progress event to a job's log (oldest trimmed
        beyond :data:`MAX_EVENTS`)."""
        payload = json.dumps(event.to_json(), sort_keys=True)
        with self._lock:
            self._retry_busy(lambda: self._record_event(job_id, payload))

    def _record_event(self, job_id: str, payload: str) -> None:
        failpoint("events.write")
        cur = self._conn.execute(
            "SELECT COALESCE(MAX(seq), 0) FROM events WHERE job_id=?",
            (job_id,),
        )
        seq = cur.fetchone()[0] + 1
        self._conn.execute(
            "INSERT INTO events (job_id, seq, payload) VALUES (?, ?, ?)",
            (job_id, seq, payload),
        )
        if seq > MAX_EVENTS:
            self._conn.execute(
                "DELETE FROM events WHERE job_id=? AND seq<=?",
                (job_id, seq - MAX_EVENTS),
            )

    def finish(self, job_id: str, result: dict) -> None:
        """``running -> done`` with the result document persisted."""
        self._finish(job_id, "done", result=result)

    def fail(self, job_id: str, error: dict) -> None:
        """``running -> failed`` with the error payload persisted."""
        self._finish(job_id, "failed", error=error)

    def _finish(self, job_id, status, result=None, error=None):
        with self._lock:
            self._retry_busy(
                lambda: self._conn.execute(
                    "UPDATE jobs SET status=?, result=?, error=?,"
                    " finished_at=? WHERE id=?",
                    (
                        status,
                        json.dumps(result, sort_keys=True) if result else None,
                        json.dumps(error, sort_keys=True) if error else None,
                        time.time(),
                        job_id,
                    ),
                )
            )

    # -- cancellation ------------------------------------------------------

    def request_cancel(self, job_id: str) -> str:
        """Ask for a job's cooperative cancellation.

        ``queued`` jobs cancel immediately (terminal ``cancelled``);
        ``running`` jobs get their ``cancel_requested`` flag set -- the
        executing worker observes it at its next progress event and
        stops (returns ``"cancelling"``).  Terminal jobs are left
        untouched (idempotent; returns their status).
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT status FROM jobs WHERE id=?", (job_id,)
                ).fetchone()
                status = row[0] if row else None
                if status == "queued":
                    self._conn.execute(
                        "UPDATE jobs SET status='cancelled',"
                        " cancel_requested=1, finished_at=?, owner=NULL"
                        " WHERE id=?",
                        (time.time(), job_id),
                    )
                    status = "cancelled"
                elif status == "running":
                    self._conn.execute(
                        "UPDATE jobs SET cancel_requested=1 WHERE id=?",
                        (job_id,),
                    )
                    status = "cancelling"
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        if status is None:
            raise JobNotFoundError(f"no such job: {job_id}")
        return status

    def cancel_requested(self, job_id: str) -> bool:
        """Has :meth:`request_cancel` flagged this job?  The polling
        primitive the worker's progress hook uses."""
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
        return bool(row and row[0])

    def mark_cancelled(self, job_id: str) -> None:
        """``running -> cancelled`` (terminal), once the worker has
        actually stopped working on the job."""
        with self._lock:
            self._retry_busy(
                lambda: self._conn.execute(
                    "UPDATE jobs SET status='cancelled', finished_at=?,"
                    " owner=NULL WHERE id=? AND status='running'",
                    (time.time(), job_id),
                )
            )

    def release(self, job_id: str) -> str:
        """Give a claimed job back after a transient worker failure.

        The claim already burned an attempt; a job released at the
        attempt cap becomes ``failed`` (code ``worker-crashed``) so a
        poison job cannot bounce forever.  A release that finds the
        cancel flag set lands the job ``cancelled`` instead of
        re-queueing work nobody wants.  Returns the resulting status.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT status, attempts, cancel_requested FROM jobs"
                    " WHERE id=?",
                    (job_id,),
                ).fetchone()
                status = row[0] if row else None
                if status == "running":
                    _, attempts, cancel = row
                    if cancel:
                        self._conn.execute(
                            "UPDATE jobs SET status='cancelled',"
                            " finished_at=?, owner=NULL WHERE id=?",
                            (time.time(), job_id),
                        )
                        status = "cancelled"
                    elif attempts >= self.max_attempts:
                        error = json.dumps({
                            "error": {
                                "code": "worker-crashed",
                                "message": (
                                    f"job failed {attempts} attempt(s);"
                                    " giving up (max_attempts="
                                    f"{self.max_attempts})"
                                ),
                            }
                        }, sort_keys=True)
                        self._conn.execute(
                            "UPDATE jobs SET status='failed', error=?,"
                            " finished_at=?, owner=NULL WHERE id=?",
                            (error, time.time(), job_id),
                        )
                        status = "failed"
                    else:
                        self._conn.execute(
                            "UPDATE jobs SET status='queued', owner=NULL,"
                            " started_at=NULL WHERE id=?",
                            (job_id,),
                        )
                        status = "queued"
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        if status is None:
            raise JobNotFoundError(f"no such job: {job_id}")
        return status

    # -- recovery ----------------------------------------------------------

    def recover(self, active_owners: Iterable[str]) -> Tuple[List[str], List[str]]:
        """Re-enqueue orphaned ``running`` jobs; fail the over-retried.

        A ``running`` row whose ``owner`` is not in ``active_owners`` is
        an orphan: its worker (or the whole previous server process)
        died mid-job.  Orphans under the attempt cap go back to
        ``queued`` -- their next claim re-runs them from the pristine
        request, which is safe because jobs are pure functions of their
        request document.  Orphans at the cap become ``failed`` with
        code ``worker-crashed``.  Returns ``(requeued, failed)`` ids.
        """
        active: Set[str] = set(active_owners)
        requeued: List[str] = []
        failed: List[str] = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._conn.execute(
                    "SELECT id, owner, attempts, cancel_requested FROM jobs"
                    " WHERE status='running' ORDER BY rowid"
                ).fetchall()
                for job_id, owner, attempts, cancel in rows:
                    if owner in active:
                        continue
                    if cancel:
                        # The caller asked for this job to stop; its
                        # worker dying obliged.  Land it terminal.
                        self._conn.execute(
                            "UPDATE jobs SET status='cancelled',"
                            " finished_at=?, owner=NULL WHERE id=?",
                            (time.time(), job_id),
                        )
                        continue
                    if attempts >= self.max_attempts:
                        error = json.dumps({
                            "error": {
                                "code": "worker-crashed",
                                "message": (
                                    f"job crashed its worker {attempts} "
                                    "time(s); giving up (max_attempts="
                                    f"{self.max_attempts})"
                                ),
                            }
                        }, sort_keys=True)
                        self._conn.execute(
                            "UPDATE jobs SET status='failed', error=?,"
                            " finished_at=?, owner=NULL WHERE id=?",
                            (error, time.time(), job_id),
                        )
                        failed.append(job_id)
                    else:
                        self._conn.execute(
                            "UPDATE jobs SET status='queued', owner=NULL,"
                            " started_at=NULL WHERE id=?",
                            (job_id,),
                        )
                        requeued.append(job_id)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return requeued, failed

    # -- read side ---------------------------------------------------------

    def get(self, job_id: str) -> Job:
        """Hydrate one job (row + event log); raises
        :class:`~repro.api.errors.JobNotFoundError` for unknown ids."""
        with self._lock:
            row = self._conn.execute(
                "SELECT id, kind, status, request, created_at, started_at,"
                " finished_at, attempts, owner, result, error, tenant"
                " FROM jobs WHERE id=?",
                (job_id,),
            ).fetchone()
            if row is None:
                raise JobNotFoundError(f"no such job: {job_id}")
            events = [
                json.loads(payload)
                for (payload,) in self._conn.execute(
                    "SELECT payload FROM events WHERE job_id=? ORDER BY seq",
                    (job_id,),
                )
            ]
        return Job(
            id=row[0], kind=row[1], status=row[2],
            request=json.loads(row[3]),
            created_at=row[4], started_at=row[5], finished_at=row[6],
            attempts=row[7], worker=row[8],
            events=events,
            result=json.loads(row[9]) if row[9] else None,
            error=json.loads(row[10]) if row[10] else None,
            tenant=row[11],
        )

    def events_since(self, job_id: str, after: int) -> Tuple[List[Tuple[int, dict]], str]:
        """(new ``(seq, event)`` pairs, current status) -- the polling
        primitive behind the ``/v1/jobs/<id>/events`` stream."""
        with self._lock:
            row = self._conn.execute(
                "SELECT status FROM jobs WHERE id=?", (job_id,)
            ).fetchone()
            if row is None:
                raise JobNotFoundError(f"no such job: {job_id}")
            events = [
                (seq, json.loads(payload))
                for seq, payload in self._conn.execute(
                    "SELECT seq, payload FROM events"
                    " WHERE job_id=? AND seq>? ORDER BY seq",
                    (job_id, after),
                )
            ]
        return events, row[0]

    def list(self, limit: int = 256, tenant: Optional[str] = None) -> List[Job]:
        """The newest ``limit`` jobs, oldest first (the ``GET /v1/jobs``
        listing).  ``tenant`` scopes the listing to one tenant's jobs
        (``GET /v1/jobs?tenant=...``)."""
        with self._lock:
            if tenant is None:
                cursor = self._conn.execute(
                    "SELECT id FROM (SELECT id, rowid FROM jobs"
                    " ORDER BY rowid DESC LIMIT ?) ORDER BY rowid",
                    (limit,),
                )
            else:
                cursor = self._conn.execute(
                    "SELECT id FROM (SELECT id, rowid FROM jobs"
                    " WHERE tenant=? ORDER BY rowid DESC LIMIT ?)"
                    " ORDER BY rowid",
                    (tenant, limit),
                )
            ids = [job_id for (job_id,) in cursor]
        return [self.get(job_id) for job_id in ids]

    def depth(self, tenant: Optional[str] = None) -> int:
        """Jobs waiting to run -- the number admission control compares
        against ``max_queue_depth`` (or, with ``tenant``, against the
        per-tenant ``max_queued_per_tenant`` share)."""
        with self._lock:
            if tenant is None:
                return self._conn.execute(
                    "SELECT COUNT(*) FROM jobs WHERE status='queued'"
                ).fetchone()[0]
            return self._conn.execute(
                "SELECT COUNT(*) FROM jobs"
                " WHERE status='queued' AND tenant=?",
                (tenant,),
            ).fetchone()[0]

    def counters(self) -> Dict[str, int]:
        """Job totals by status, for ``/v1/stats``."""
        totals: Dict[str, int] = {
            "queued": 0, "running": 0, "done": 0, "failed": 0,
            "cancelled": 0,
        }
        with self._lock:
            for status, count in self._conn.execute(
                "SELECT status, COUNT(*) FROM jobs GROUP BY status"
            ):
                totals[status] = count
            totals["total"] = self._conn.execute(
                "SELECT COUNT(*) FROM jobs"
            ).fetchone()[0]
        return totals

    def tenant_counters(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant job totals by status (the store half of
        ``stats.service.tenants``); hits the (tenant, status) index."""
        per_tenant: Dict[str, Dict[str, int]] = {}
        with self._lock:
            for tenant, status, count in self._conn.execute(
                "SELECT tenant, status, COUNT(*) FROM jobs"
                " GROUP BY tenant, status"
            ):
                totals = per_tenant.setdefault(tenant, {
                    "queued": 0, "running": 0, "done": 0, "failed": 0,
                    "cancelled": 0,
                })
                totals[status] = count
        return per_tenant

    def tenant_failure_window(
        self, tenant: str, window_s: float, limit: int = 8
    ) -> Tuple[int, int]:
        """``(finished, failed)`` over the tenant's newest ``limit``
        finished jobs within the last ``window_s`` seconds -- the sample
        the per-tenant circuit breaker judges."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status FROM jobs WHERE tenant=?"
                " AND status IN ('done', 'failed')"
                " AND finished_at IS NOT NULL AND finished_at >= ?"
                " ORDER BY finished_at DESC LIMIT ?",
                (tenant, time.time() - window_s, limit),
            ).fetchall()
        finished = len(rows)
        failed = sum(1 for (status,) in rows if status == "failed")
        return finished, failed

    def prune(self) -> int:
        """Delete finished rows beyond the retention windows; returns
        how many were dropped.

        Two windows apply: each tenant keeps its newest
        ``max_finished_per_tenant`` finished rows (one tenant's burst of
        finished jobs cannot evict another tenant's results), and the
        store keeps ``max_finished`` overall.  With
        ``max_finished_per_tenant=None`` the per-tenant window equals
        the global one, so a single-tenant store prunes exactly as
        before tenancy.
        """
        per_cap = (
            self.max_finished_per_tenant
            if self.max_finished_per_tenant is not None
            else self.max_finished
        )
        doomed = set()
        with self._lock:
            for (tenant,) in self._conn.execute(
                "SELECT DISTINCT tenant FROM jobs"
                " WHERE status IN ('done', 'failed', 'cancelled')"
            ).fetchall():
                for (job_id,) in self._conn.execute(
                    "SELECT id FROM jobs WHERE tenant=?"
                    " AND status IN ('done', 'failed', 'cancelled')"
                    " ORDER BY rowid DESC LIMIT -1 OFFSET ?",
                    (tenant, per_cap),
                ):
                    doomed.add(job_id)
            for (job_id,) in self._conn.execute(
                "SELECT id FROM jobs"
                " WHERE status IN ('done', 'failed', 'cancelled')"
                " ORDER BY rowid DESC LIMIT -1 OFFSET ?",
                (self.max_finished,),
            ):
                doomed.add(job_id)
            for job_id in sorted(doomed):
                self._conn.execute("DELETE FROM jobs WHERE id=?", (job_id,))
                self._conn.execute(
                    "DELETE FROM events WHERE job_id=?", (job_id,)
                )
        return len(doomed)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
