"""The JSON-over-HTTP front door: stdlib only, one shared Workspace.

``repro serve`` (or :func:`serve`) exposes the :mod:`repro.api` façade
over a :class:`http.server.ThreadingHTTPServer`:

=======  ==================  ==============================================
method   path                body / response
=======  ==================  ==============================================
POST     ``/v1/analyze``     ``analyze_request`` -> ``analyze_result``
POST     ``/v1/repair``      ``repair_request`` -> ``repair_result``
POST     ``/v1/bench``       ``bench_request`` -> ``bench_result``
POST     ``/v1/jobs``        any request kind -> ``job`` (202, async)
GET      ``/v1/jobs``        ``{"jobs": [job, ...]}``
GET      ``/v1/jobs/<id>``   ``job`` (status, progress events, result)
GET      ``/v1/health``      ``{"status": "ok", "version", "protocol"}``
GET      ``/v1/stats``       cache hit rates, session counters, job totals
=======  ==================  ==============================================

All documents are the versioned wire types of :mod:`repro.api.types`
(goldens under ``schemas/``).  Errors serialize as
``{"error": {"code", "message"}}`` with the status each error class
declares; unexpected faults become ``internal-error`` 500s without
leaking a traceback.

Every handler thread shares **one** workspace, so concurrent requests
hit the same warm :class:`~repro.analysis.oracle.OracleSession` pools
and the same (optionally persistent) memo cache -- the workspace's lock
serializes solver work while the HTTP layer stays concurrent.  Results
are byte-identical to direct library calls by differential test gate.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import urlparse

from repro.api.errors import (
    ApiError,
    InvalidRequestError,
    error_payload,
    http_status_of,
)
from repro.api.types import (
    SCHEMA_VERSION,
    AnalyzeRequest,
    BenchRequest,
    RepairRequest,
    decode_request,
)
from repro.api.workspace import Workspace
from repro.errors import ReproError
from repro.service.jobs import JobQueue


class NotFoundError(ApiError):
    """No route matches the request path."""

    code = "not-found"
    http_status = 404


class MethodNotAllowedError(ApiError):
    """The route exists but not under this HTTP method."""

    code = "method-not-allowed"
    http_status = 405


class ReproService:
    """Transport-independent request router over one workspace.

    Separating routing from :class:`http.server` keeps the whole
    surface unit-testable without sockets and leaves the HTTP handler
    with nothing but byte shuffling.
    """

    def __init__(self, workspace: Optional[Workspace] = None):
        self._owns_workspace = workspace is None
        self.workspace = workspace if workspace is not None else Workspace()
        self.jobs = JobQueue(self.workspace)

    def close(self) -> None:
        self.jobs.close()
        if self._owns_workspace:
            self.workspace.close()

    # -- routing -----------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        """(status, JSON-ready payload) for one request."""
        try:
            return self._dispatch(method, path, body)
        except ReproError as exc:
            return http_status_of(exc), error_payload(exc)
        except Exception as exc:  # noqa: BLE001 - service boundary
            return 500, error_payload(exc)

    def _dispatch(self, method: str, path: str, body: bytes) -> Tuple[int, dict]:
        parts = [p for p in urlparse(path).path.split("/") if p]
        if not parts or parts[0] != "v1":
            raise NotFoundError(f"no such endpoint: {path} (try /v1/health)")
        route = parts[1:]
        if route == ["health"]:
            self._require(method, "GET", path)
            return 200, self.health()
        if route == ["stats"]:
            self._require(method, "GET", path)
            return 200, self.stats()
        if route == ["analyze"]:
            self._require(method, "POST", path)
            request = AnalyzeRequest.from_json(self._json(body))
            return 200, self.workspace.analyze(request).to_json()
        if route == ["repair"]:
            self._require(method, "POST", path)
            request = RepairRequest.from_json(self._json(body))
            return 200, self.workspace.repair(request).to_json()
        if route == ["bench"]:
            self._require(method, "POST", path)
            request = BenchRequest.from_json(self._json(body))
            return 200, self.workspace.bench(request).to_json()
        if route == ["jobs"]:
            if method == "POST":
                request = decode_request(self._json(body))
                return 202, self.jobs.submit(request).to_json()
            self._require(method, "GET", path)
            return 200, {"jobs": [j.to_json() for j in self.jobs.list()]}
        if len(route) == 2 and route[0] == "jobs":
            self._require(method, "GET", path)
            return 200, self.jobs.get(route[1]).to_json()
        raise NotFoundError(f"no such endpoint: {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise MethodNotAllowedError(f"{path} only accepts {expected}")

    @staticmethod
    def _json(body: bytes) -> object:
        if not body:
            raise InvalidRequestError("request body must be a JSON object")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidRequestError(f"request body is not valid JSON: {exc}")

    # -- leaf endpoints ----------------------------------------------------

    def health(self) -> dict:
        from repro import __version__

        return {
            "status": "ok",
            "version": __version__,
            "protocol": SCHEMA_VERSION,
            "strategy": self.workspace.strategy_name,
        }

    def stats(self) -> dict:
        payload = self.workspace.stats()
        payload["jobs"] = self.jobs.counters()
        return payload


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    quiet = True

    @property
    def service(self) -> ReproService:
        return self.server.service  # type: ignore[attr-defined]

    def version_string(self) -> str:
        from repro import __version__

        return f"repro/{__version__}"

    def log_message(self, fmt, *args):  # noqa: A002
        if not self.quiet:  # pragma: no cover - operator mode
            super().log_message(fmt, *args)

    def _respond(self, status: int, payload: dict) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _handle(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, payload = self.service.handle(method, self.path, body)
        self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")


class ReproHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning a :class:`ReproService`."""

    daemon_threads = True

    def __init__(self, address, service: ReproService, quiet: bool = True):
        self.service = service
        handler = type("_BoundHandler", (_Handler,), {"quiet": quiet})
        super().__init__(address, handler)

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.service.close()


def make_server(
    workspace: Optional[Workspace] = None,
    host: str = "127.0.0.1",
    port: int = 8472,
    quiet: bool = True,
) -> ReproHTTPServer:
    """Bind (but do not run) a service; ``port=0`` picks a free port
    (read it back from ``server.server_address``)."""
    return ReproHTTPServer((host, port), ReproService(workspace), quiet=quiet)


def serve(
    workspace: Optional[Workspace] = None,
    host: str = "127.0.0.1",
    port: int = 8472,
    quiet: bool = False,
) -> None:
    """Run the service until interrupted (the ``repro serve`` command)."""
    server = make_server(workspace, host, port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro service on http://{bound_host}:{bound_port}/v1/health "
        f"(strategy: {server.service.workspace.strategy_name}; Ctrl-C stops)"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        server.close()
