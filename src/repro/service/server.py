"""The JSON-over-HTTP front door: stdlib only, durable jobs, N workers.

``repro serve`` (or :func:`serve`) exposes the :mod:`repro.api` façade
over a :class:`http.server.ThreadingHTTPServer`:

=======  =========================  =========================================
method   path                       body / response
=======  =========================  =========================================
POST     ``/v1/analyze``            ``analyze_request`` -> ``analyze_result``
POST     ``/v1/repair``             ``repair_request`` -> ``repair_result``
POST     ``/v1/bench``              ``bench_request`` -> ``bench_result``
POST     ``/v1/protect``            ``live_protect_request`` ->
                                    ``live_protect_result`` (live repair)
POST     ``/v1/jobs``               any request kind -> ``job`` (202) or
                                    429 ``queue-full`` when the durable
                                    queue is at ``max_queue_depth``
GET      ``/v1/jobs``               ``{"jobs": [job, ...]}``
GET      ``/v1/jobs/<id>``          ``job`` (status, events, stored result)
POST     ``/v1/jobs/<id>/cancel``   cooperative cancel -> ``{"id",
                                    "status"}`` (queued jobs cancel
                                    immediately; running jobs stop at
                                    their next progress event)
GET      ``/v1/jobs/<id>/events``   chunked NDJSON progress-event stream
                                    (idle streams carry ``{"kind":
                                    "heartbeat"}`` keep-alive lines)
POST     ``/v1/tenants/<id>/suspend``  operator kill-switch: shed every
                                    mutating request from ``<id>`` with
                                    429 ``tenant-suspended``
POST     ``/v1/tenants/<id>/resume``   lift a suspension (and any open
                                    circuit-breaker cooldown)
GET      ``/v1/health``             ``{"status": "ok", "version", ...}``
GET      ``/v1/stats``              cache/session/job/admission counters
                                    plus per-tenant ``service.tenants``
=======  =========================  =========================================

Multi-tenancy: requests carrying an ``X-Repro-Tenant`` header (or a
``tenant`` field on the job envelope) act as that tenant; everything
else is keyed by client address.  Tenants get their own rate bucket,
an optional queued-jobs share (``max_queued_per_tenant``), an optional
running cap (``max_running_per_tenant``), deficit-weighted-fair claim
scheduling across the worker fleet (``tenant_weights``), and a circuit
breaker that sheds a tenant whose recent jobs keep failing.

The topology (see DESIGN.md for the diagram, OPERATIONS.md for the
runbook): this process parses, validates, and *admits*; accepted jobs
are rows in a sqlite :class:`~repro.service.store.JobStore`; worker
processes (:class:`~repro.service.workers.WorkerPool`, ``workers=N``)
or an in-process thread (``workers=0``) claim and run them.  Sync
endpoints still execute on the shared in-process workspace -- they are
the low-latency path for small programs; jobs are the scalable path.

Admission control (:mod:`repro.service.admission`) refuses work with
stable codes before it costs anything: 429 ``rate-limited`` /
``queue-full`` (with ``Retry-After``), 413 ``request-too-large``, 503
``draining``.  SIGTERM starts a graceful drain: stop admitting, finish
in-flight jobs, checkpoint caches, exit.  All other errors serialize as
``{"error": {"code", "message"}}`` with the status each error class
declares; unexpected faults become ``internal-error`` 500s without
leaking a traceback.

Results are byte-identical to direct library calls -- on the sync path
*and* through the worker processes -- by differential test gate.
"""

from __future__ import annotations

import json
import shutil
import signal
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.api.errors import (
    ApiError,
    InvalidRequestError,
    QueueFullError,
    TenantQueueFullError,
    error_payload,
    http_status_of,
)
from repro.api.types import (
    SCHEMA_VERSION,
    AnalyzeRequest,
    BenchRequest,
    LiveProtectRequest,
    RepairRequest,
    decode_request,
)
from repro.api.workspace import Workspace, WorkspaceConfig
from repro.errors import ReproError
from repro.service.admission import (
    BREAKER_SAMPLE,
    BREAKER_WINDOW_S,
    DEFAULT_MAX_QUEUE_DEPTH,
    AdmissionController,
    resolve_tenant,
)
from repro.service.store import DEFAULT_TENANT, JobStore
from repro.service.workers import InlineRunner, WorkerPool

#: How often the event stream polls the store for new rows.
STREAM_POLL_INTERVAL = 0.05

#: Idle seconds before an event stream emits a ``{"kind": "heartbeat"}``
#: keep-alive line (documented in ``schemas/job_event.v1.json``), so
#: proxies and client read-timeouts don't sever a quiet long stream.
HEARTBEAT_INTERVAL = 15.0

#: How often the server-side timer prunes finished jobs past the
#: retention window (finished includes terminal ``cancelled``).
PRUNE_INTERVAL = 60.0

#: Statuses a job can never leave (the event stream's end condition).
TERMINAL_STATUSES = ("done", "failed", "cancelled")


class NotFoundError(ApiError):
    """No route matches the request path."""

    code = "not-found"
    http_status = 404


class MethodNotAllowedError(ApiError):
    """The route exists but not under this HTTP method."""

    code = "method-not-allowed"
    http_status = 405


def _headers_of(exc: BaseException) -> Dict[str, str]:
    """Extra response headers an error wants sent (``Retry-After``)."""
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        return {"Retry-After": str(retry_after)}
    return {}


class ReproService:
    """Transport-independent request router over one workspace + store.

    Separating routing from :class:`http.server` keeps the whole
    surface unit-testable without sockets: :meth:`handle` is the JSON
    request/response path, :meth:`open_event_stream` the streaming one.

    ``workers=0`` (default) runs jobs on an in-process thread against
    the shared workspace; ``workers=N`` spawns N worker processes, each
    building its own workspace from ``worker_config``.  ``job_db`` is
    the sqlite queue path -- pass a real path to survive restarts; the
    default is a private temp file deleted on :meth:`close` (durable
    against worker crashes, not against losing the server's temp dir).
    """

    def __init__(
        self,
        workspace: Optional[Workspace] = None,
        *,
        job_db: Optional[str] = None,
        workers: int = 0,
        worker_config: Optional[WorkspaceConfig] = None,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        rate_limit: Optional[float] = None,
        rate_burst: Optional[float] = None,
        max_request_bytes: Optional[int] = None,
        jitter_seed: Optional[int] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        max_queued_per_tenant: Optional[int] = None,
        max_running_per_tenant: Optional[int] = None,
        start_runner: bool = True,
    ):
        self._owns_workspace = workspace is None
        self.workspace = workspace if workspace is not None else Workspace()
        self._tmpdir = None
        if job_db is None:
            self._tmpdir = tempfile.mkdtemp(prefix="repro-jobs-")
            job_db = f"{self._tmpdir}/jobs.sqlite"
        self.store = JobStore(job_db)
        self.max_queue_depth = max_queue_depth
        self.tenant_weights = dict(tenant_weights or {})
        self.max_queued_per_tenant = max_queued_per_tenant
        self.max_running_per_tenant = max_running_per_tenant
        admission_kwargs = {}
        if max_request_bytes is not None:
            admission_kwargs["max_request_bytes"] = max_request_bytes
        self.admission = AdmissionController(
            rate_limit=rate_limit, rate_burst=rate_burst,
            jitter_seed=jitter_seed,
            failure_probe=lambda tenant: self.store.tenant_failure_window(
                tenant, BREAKER_WINDOW_S, BREAKER_SAMPLE
            ),
            **admission_kwargs,
        )
        self.workers = workers
        if workers > 0:
            config = worker_config or WorkspaceConfig(strategy="incremental")
            self.runner = WorkerPool(
                job_db, config, workers,
                tenant_weights=self.tenant_weights,
                max_running_per_tenant=max_running_per_tenant,
            )
        else:
            self.runner = InlineRunner(
                self.store, self.workspace,
                tenant_weights=self.tenant_weights,
                max_running_per_tenant=max_running_per_tenant,
            )
        # Anything still `running` in a reopened store belongs to a
        # previous process generation: re-enqueue before workers start,
        # so a restart loses zero accepted jobs.
        requeued, _ = self.store.recover(set())
        self.recovered_jobs = len(requeued)
        if start_runner:
            self.runner.start()
        self._started_runner = start_runner
        self._closed = False
        # Retention is a policy, not an accident of traffic: prune on a
        # timer too, so a server that stops receiving jobs still honours
        # the window (satellite fix: cancelled rows are now pruned).
        self._prune_stop = threading.Event()
        self._prune_thread = threading.Thread(
            target=self._prune_loop, name="repro-prune", daemon=True
        )
        if start_runner:
            self._prune_thread.start()

    def _prune_loop(self) -> None:
        while not self._prune_stop.wait(PRUNE_INTERVAL):
            try:
                self.store.prune()
            except Exception:  # noqa: BLE001 - maintenance must not die
                pass

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: float = 60.0) -> bool:
        """Graceful shutdown, phase one: stop admitting (503
        ``draining``), let workers finish in-flight jobs and checkpoint
        their caches.  Read endpoints stay up throughout so operators
        can watch the queue empty via ``/v1/stats``."""
        self.admission.draining = True
        return self.runner.drain(timeout=timeout)

    def close(self) -> None:
        """Release everything: runner, store, owned workspace (closing
        the workspace checkpoints the server-side persistent cache)."""
        if self._closed:
            return
        self._closed = True
        self._prune_stop.set()
        if self._prune_thread.is_alive():
            self._prune_thread.join(timeout=5)
        if self._started_runner:
            if self.admission.draining:
                self.runner.drain(timeout=5)
            else:
                self.runner.stop()
        self.store.close()
        if self._owns_workspace:
            self.workspace.close()
        if self._tmpdir is not None:
            shutil.rmtree(self._tmpdir, ignore_errors=True)

    # -- routing -----------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes,
        client: Optional[str] = None,
        tenant_header: Optional[str] = None,
    ) -> Tuple[int, dict, Dict[str, str]]:
        """(status, JSON-ready payload, extra headers) for one request.

        ``tenant_header`` is the raw ``X-Repro-Tenant`` value (or
        ``None``); :func:`resolve_tenant` maps it -- with degradation,
        never an error -- to the identity every gate below keys on.
        """
        tenant = resolve_tenant(tenant_header, client)
        # Tenant-scoped error codes only apply to explicitly identified
        # tenants; address-derived identities keep the pre-tenancy codes
        # so header-less clients see an unchanged wire surface.
        explicit = (
            tenant_header is not None and tenant == tenant_header.strip()
        )
        try:
            if method == "POST" and not self._is_admission_exempt(path):
                # Cancels and tenant suspend/resume bypass admission
                # entirely: they *shed* work, so refusing them while
                # draining or rate-limited would be backwards.
                self.admission.admit(tenant, len(body), explicit_tenant=explicit)
            status, payload = self._dispatch(method, path, body, tenant, explicit)
            return status, payload, {}
        except ReproError as exc:
            return http_status_of(exc), error_payload(exc), _headers_of(exc)
        except Exception as exc:  # noqa: BLE001 - service boundary
            return 500, error_payload(exc), {}

    def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        tenant: str = DEFAULT_TENANT,
        explicit: bool = False,
    ) -> Tuple[int, dict]:
        parts = [p for p in urlparse(path).path.split("/") if p]
        if not parts or parts[0] != "v1":
            raise NotFoundError(f"no such endpoint: {path} (try /v1/health)")
        route = parts[1:]
        if route == ["health"]:
            self._require(method, "GET", path)
            return 200, self.health()
        if route == ["stats"]:
            self._require(method, "GET", path)
            return 200, self.stats()
        if route == ["analyze"]:
            self._require(method, "POST", path)
            request = AnalyzeRequest.from_json(self._json(body))
            return 200, self.workspace.analyze(request).to_json()
        if route == ["repair"]:
            self._require(method, "POST", path)
            request = RepairRequest.from_json(self._json(body))
            return 200, self.workspace.repair(request).to_json()
        if route == ["bench"]:
            self._require(method, "POST", path)
            request = BenchRequest.from_json(self._json(body))
            return 200, self.workspace.bench(request).to_json()
        if route == ["protect"]:
            self._require(method, "POST", path)
            request = LiveProtectRequest.from_json(self._json(body))
            return 200, self.workspace.protect(request).to_json()
        if route == ["jobs"]:
            if method == "POST":
                request = decode_request(self._json(body))
                return 202, self.submit_job(
                    request, tenant=tenant, explicit=explicit
                ).to_json()
            self._require(method, "GET", path)
            query = parse_qs(urlparse(path).query)
            tenant_filter = (query.get("tenant") or [None])[0]
            jobs = self.store.list(tenant=tenant_filter)
            return 200, {"jobs": [j.to_json() for j in jobs]}
        if len(route) == 3 and route[0] == "jobs" and route[2] == "cancel":
            self._require(method, "POST", path)
            status = self.store.request_cancel(route[1])
            return 200, {"id": route[1], "status": status}
        if len(route) == 2 and route[0] == "jobs":
            self._require(method, "GET", path)
            return 200, self.store.get(route[1]).to_json()
        if (
            len(route) == 3
            and route[0] == "tenants"
            and route[2] in ("suspend", "resume")
        ):
            self._require(method, "POST", path)
            if route[2] == "suspend":
                self.admission.suspend(route[1])
            else:
                self.admission.resume(route[1])
            return 200, {
                "tenant": route[1],
                "suspended": self.admission.is_suspended(route[1]),
            }
        raise NotFoundError(f"no such endpoint: {path}")

    @staticmethod
    def _is_admission_exempt(path: str) -> bool:
        """POSTs that shed or govern load -- job cancels and tenant
        suspend/resume -- bypass admission: refusing a cancel while
        rate-limited, or a resume while that tenant's breaker is open,
        would be backwards."""
        parts = [p for p in urlparse(path).path.split("/") if p]
        return len(parts) == 4 and (
            (parts[:2] == ["v1", "jobs"] and parts[3] == "cancel")
            or (parts[:2] == ["v1", "tenants"]
                and parts[3] in ("suspend", "resume"))
        )

    def submit_job(
        self,
        request,
        tenant: Optional[str] = None,
        explicit: bool = False,
    ):
        """Admit one job into the durable queue (the queue-depth gates
        live here because they need the store).

        Identity precedence: ``X-Repro-Tenant`` header, then the
        ``tenant`` field on the request envelope, then the resolved
        fallback (client address / default).  The per-tenant share gate
        -- opt-in via ``max_queued_per_tenant`` -- fires before the
        global cap, so one tenant's backlog refuses *that tenant*, not
        everyone.
        """
        if not explicit:
            body_tenant = getattr(request, "tenant", None)
            if body_tenant:
                tenant, explicit = body_tenant, True
        tenant = tenant or DEFAULT_TENANT
        if self.max_queued_per_tenant is not None:
            tenant_depth = self.store.depth(tenant=tenant)
            if tenant_depth >= self.max_queued_per_tenant:
                self.admission.note_queue_full(tenant)
                raise TenantQueueFullError(
                    f"tenant {tenant} already has {tenant_depth} queued "
                    f"jobs (per-tenant cap {self.max_queued_per_tenant}); "
                    "other tenants are unaffected",
                    retry_after=self.admission.retry_after(2),
                )
        depth = self.store.depth()
        if depth >= self.max_queue_depth:
            self.admission.note_queue_full(tenant)
            raise QueueFullError(
                f"job queue is full ({depth} waiting, cap "
                f"{self.max_queue_depth}); retry later",
                retry_after=self.admission.retry_after(2),
            )
        return self.store.submit(request, tenant=tenant)

    # -- streaming ---------------------------------------------------------

    def match_event_stream(self, path: str) -> Optional[str]:
        """The job id iff ``path`` is ``/v1/jobs/<id>/events``."""
        parts = [p for p in urlparse(path).path.split("/") if p]
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] and parts[3] == "events":
            return parts[2]
        return None

    def open_event_stream(
        self, job_id: str, poll: float = STREAM_POLL_INTERVAL,
        timeout: float = 3600.0,
        heartbeat: float = HEARTBEAT_INTERVAL,
    ) -> Iterator[bytes]:
        """NDJSON lines: every stored progress event as it lands, then a
        terminal ``job.end`` line once the job reaches a terminal status
        (``done``/``failed``/``cancelled``).  A stream idle for
        ``heartbeat`` seconds emits ``{"kind": "heartbeat"}`` keep-alive
        lines so intermediaries don't time the connection out.  Raises
        :class:`~repro.api.errors.JobNotFoundError` before the first
        byte, so the HTTP layer can still answer 404."""
        self.store.get(job_id)  # 404 now, not mid-stream

        def lines() -> Iterator[bytes]:
            after = 0
            deadline = time.monotonic() + timeout
            last_line = time.monotonic()
            while True:
                events, status = self.store.events_since(job_id, after)
                for seq, event in events:
                    after = seq
                    last_line = time.monotonic()
                    yield json.dumps(event, sort_keys=True).encode() + b"\n"
                if status in TERMINAL_STATUSES:
                    end = {"stage": "job.end", "detail": {"status": status}}
                    yield json.dumps(end, sort_keys=True).encode() + b"\n"
                    return
                now = time.monotonic()
                if now > deadline:
                    end = {"stage": "job.end", "detail": {"status": "timeout"}}
                    yield json.dumps(end, sort_keys=True).encode() + b"\n"
                    return
                if now - last_line >= heartbeat:
                    last_line = now
                    yield json.dumps({"kind": "heartbeat"}).encode() + b"\n"
                time.sleep(poll)

        return lines()

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise MethodNotAllowedError(f"{path} only accepts {expected}")

    @staticmethod
    def _json(body: bytes) -> object:
        if not body:
            raise InvalidRequestError("request body must be a JSON object")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidRequestError(f"request body is not valid JSON: {exc}")

    # -- leaf endpoints ----------------------------------------------------

    def health(self) -> dict:
        from repro import __version__

        return {
            "status": "draining" if self.admission.draining else "ok",
            "version": __version__,
            "protocol": SCHEMA_VERSION,
            "strategy": self.workspace.strategy_name,
        }

    def stats(self) -> dict:
        payload = self.workspace.stats()
        payload["jobs"] = self.store.counters()
        runner = self.runner.counters()
        payload["service"] = {
            "workers": runner.get("workers", 0),
            "workers_alive": runner.get("alive", 0),
            "worker_restarts": runner.get("restarts", 0),
            "breaker_trips": runner.get("breaker_trips", 0),
            "queue_depth": self.store.depth(),
            "max_queue_depth": self.max_queue_depth,
            "draining": self.admission.draining,
            "recovered_jobs": self.recovered_jobs,
            "admission": self.admission.counters(),
            "tenants": self._tenant_stats(),
        }
        return payload

    def _tenant_stats(self) -> Dict[str, dict]:
        """Per-tenant view for ``stats.service.tenants``: job-state
        counts from the store merged with admission shed/breaker
        counters and the suspension flag."""
        tenants: Dict[str, dict] = {}
        for tenant, counts in self.store.tenant_counters().items():
            tenants[tenant] = dict(counts)
        for tenant, counts in self.admission.tenant_counters().items():
            tenants.setdefault(tenant, {}).update(counts)
        for tenant, entry in tenants.items():
            if self.admission.is_suspended(tenant):
                entry["suspended"] = True
        return tenants


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    quiet = True

    @property
    def service(self) -> ReproService:
        return self.server.service  # type: ignore[attr-defined]

    def version_string(self) -> str:
        from repro import __version__

        return f"repro/{__version__}"

    def log_message(self, fmt, *args):  # noqa: A002
        if not self.quiet:  # pragma: no cover - operator mode
            super().log_message(fmt, *args)

    def _respond(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _stream(self, chunks: "Iterator[bytes]") -> None:
        """Chunked transfer: one NDJSON line per chunk, flushed as it
        happens, so a client sees events live, not on job completion."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for chunk in chunks:
                self.wfile.write(f"{len(chunk):x}\r\n".encode())
                self.wfile.write(chunk)
                self.wfile.write(b"\r\n")
                self.wfile.flush()
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-stream; nothing to clean up

    def _handle(self, method: str) -> None:
        if method == "GET":
            job_id = self.service.match_event_stream(self.path)
            if job_id is not None:
                try:
                    chunks = self.service.open_event_stream(job_id)
                except ReproError as exc:
                    self._respond(http_status_of(exc), error_payload(exc))
                    return
                self._stream(chunks)
                return
        length = int(self.headers.get("Content-Length") or 0)
        cap = self.service.admission.max_request_bytes
        # Never buffer more than the cap: read one byte past it so the
        # oversized request is detected without swallowing gigabytes.
        body = self.rfile.read(min(length, cap + 1)) if length else b""
        if length > len(body):
            # Part of the body is still on the socket; this connection
            # cannot be reused.
            self.close_connection = True
        status, payload, headers = self.service.handle(
            method, self.path, body, client=self.client_address[0],
            tenant_header=self.headers.get("X-Repro-Tenant"),
        )
        self._respond(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")


class ReproHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer owning a :class:`ReproService`."""

    daemon_threads = True

    def __init__(self, address, service: ReproService, quiet: bool = True):
        self.service = service
        handler = type("_BoundHandler", (_Handler,), {"quiet": quiet})
        super().__init__(address, handler)

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.service.close()


def make_server(
    workspace: Optional[Workspace] = None,
    host: str = "127.0.0.1",
    port: int = 8472,
    quiet: bool = True,
    **service_options,
) -> ReproHTTPServer:
    """Bind (but do not run) a service; ``port=0`` picks a free port
    (read it back from ``server.server_address``).  ``service_options``
    are forwarded to :class:`ReproService` (``workers=``, ``job_db=``,
    ``max_queue_depth=``, ``rate_limit=``, ...)."""
    return ReproHTTPServer(
        (host, port), ReproService(workspace, **service_options), quiet=quiet
    )


def serve(
    workspace: Optional[Workspace] = None,
    host: str = "127.0.0.1",
    port: int = 8472,
    quiet: bool = False,
    drain_timeout: float = 60.0,
    **service_options,
) -> None:
    """Run the service until SIGTERM/SIGINT (the ``repro serve``
    command).  SIGTERM drains gracefully: admission flips to 503
    ``draining``, in-flight jobs finish and caches checkpoint, then the
    listener stops."""
    server = make_server(workspace, host, port, quiet=quiet, **service_options)
    service = server.service
    bound_host, bound_port = server.server_address[:2]
    print(
        f"repro service on http://{bound_host}:{bound_port}/v1/health "
        f"(strategy: {service.workspace.strategy_name}; "
        f"workers: {service.workers or 'in-process'}; "
        f"queue: {service.store.path}; SIGTERM drains, Ctrl-C stops)"
    )

    def _drain_and_stop(signum, frame):  # pragma: no cover - signal path
        import threading

        def run():
            service.drain(timeout=drain_timeout)
            server.shutdown()

        threading.Thread(target=run, daemon=True).start()

    previous = signal.signal(signal.SIGTERM, _drain_and_stop)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
