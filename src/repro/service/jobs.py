"""Async jobs: long repairs over HTTP without holding the connection.

``POST /v1/jobs`` enqueues a request (any wire kind -- analyze, repair,
bench) and returns immediately with a job id; ``GET /v1/jobs/<id>``
polls status, the progress-event stream, and -- once ``done`` -- the
full result document, identical to what the synchronous endpoint would
have returned.  One daemon worker thread drains the queue in FIFO
order; since the workspace serializes execution on its own lock anyway
(the solver sessions are single-threaded), more job workers would add
contention, not throughput.

Jobs are held in memory: this service is an operational front door for
one workspace process, not a durable task store -- restarting the
server forgets finished jobs, exactly like restarting a CLI run.  A
bounded history (:data:`JobQueue.max_finished`) keeps a long-lived
server from accumulating every result ever computed.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.errors import InvalidRequestError, JobNotFoundError, error_payload
from repro.api.events import ProgressEvent
from repro.api.types import AnalyzeRequest, BenchRequest, RepairRequest

#: wire kind -> the short job kind reported in the job document.
_JOB_KINDS = {
    AnalyzeRequest.kind: "analyze",
    RepairRequest.kind: "repair",
    BenchRequest.kind: "bench",
}

#: Cap on progress events retained per job (a runaway search must not
#: grow a job document without bound; the newest events win).
_MAX_EVENTS = 500


@dataclass
class Job:
    """One queued/running/finished unit of work."""

    id: str
    kind: str  # analyze | repair | bench
    request: object
    status: str = "queued"  # queued | running | done | failed
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    events: List[dict] = field(default_factory=list)
    result: Optional[dict] = None
    error: Optional[dict] = None

    def to_json(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": list(self.events),
            "result": self.result,
            "error": self.error,
        }


class JobQueue:
    """FIFO job runner over one shared :class:`~repro.api.Workspace`."""

    def __init__(self, workspace, max_finished: int = 256):
        self.workspace = workspace
        self.max_finished = max_finished
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._worker: Optional[threading.Thread] = None
        self._closed = False

    # -- public API --------------------------------------------------------

    def submit(self, request) -> Job:
        """Enqueue a decoded wire request; returns the queued job."""
        kind = _JOB_KINDS.get(getattr(request, "kind", None))
        if kind is None:
            raise InvalidRequestError(
                f"cannot run {type(request).__name__} as a job"
            )
        job = Job(
            id=f"job-{next(self._counter):04d}-{uuid.uuid4().hex[:8]}",
            kind=kind,
            request=request,
        )
        with self._lock:
            if self._closed:
                raise InvalidRequestError("job queue is shut down")
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._trim_locked()
            self._ensure_worker_locked()
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id}")
        return job

    def list(self) -> List[Job]:
        with self._lock:
            return [self._jobs[jid] for jid in self._order if jid in self._jobs]

    def close(self) -> None:
        """Stop the worker after the current job; still-queued jobs are
        abandoned in ``queued`` state (the process is going away with
        them), never started against a workspace that is being torn
        down."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        # Drain the backlog before the stop sentinel so the worker
        # cannot start another job; drained jobs simply stay "queued".
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._queue.put(None)
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=5)

    # -- internals ---------------------------------------------------------

    def _ensure_worker_locked(self) -> None:
        """Start the single drainer thread; caller holds ``_lock`` (two
        concurrent submits must not each spawn a worker)."""
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._run, name="repro-job-worker", daemon=True
            )
            self._worker.start()

    def _trim_locked(self) -> None:
        finished = [
            jid
            for jid in self._order
            if self._jobs[jid].status in ("done", "failed")
        ]
        while len(finished) > self.max_finished:
            victim = finished.pop(0)
            self._jobs.pop(victim, None)
            self._order.remove(victim)

    def _record_event(self, job: Job, event: ProgressEvent) -> None:
        job.events.append(event.to_json())
        if len(job.events) > _MAX_EVENTS:
            del job.events[: len(job.events) - _MAX_EVENTS]

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.status = "running"
            job.started_at = time.time()
            try:
                result = self._execute(job)
                job.result = result.to_json()
                job.status = "done"
            except Exception as exc:  # noqa: BLE001 - job boundary
                job.error = error_payload(exc)
                job.status = "failed"
            finally:
                job.finished_at = time.time()

    def _execute(self, job: Job):
        on_progress = lambda event: self._record_event(job, event)  # noqa: E731
        if job.kind == "analyze":
            return self.workspace.analyze(job.request, on_progress=on_progress)
        if job.kind == "repair":
            return self.workspace.repair(job.request, on_progress=on_progress)
        return self.workspace.bench(job.request, on_progress=on_progress)

    def counters(self) -> Dict[str, int]:
        """Job totals by status, for ``/v1/stats``."""
        with self._lock:
            totals: Dict[str, int] = {
                "queued": 0, "running": 0, "done": 0, "failed": 0,
            }
            for job in self._jobs.values():
                totals[job.status] = totals.get(job.status, 0) + 1
            totals["total"] = len(self._jobs)
            return totals
