"""The chaos harness: run the service under a seeded fault plan and
check the invariants that make the durability story true.

One :func:`run_chaos` call is one experiment:

1. compute the **fault-free baseline** -- every analyze verdict on the
   serial seed workspace, no faults active;
2. warm a persistent query cache on disk (so ``cache.read`` failpoints
   actually sit on the read path -- a cold cache never touches disk);
3. boot a :class:`~repro.service.server.ReproService` over a durable
   job db with a :func:`default_plan` of seeded faults active, submit
   the job mix, cancel one probe job, and wait for quiescence;
4. check the **gates**:

   - *no lost or duplicated jobs*: the store holds exactly one row per
     accepted submission;
   - *every job terminal*: ``done``/``failed``/``cancelled``, nothing
     stuck ``queued``/``running``;
   - *results unchanged*: every ``done`` analyze job's verdict (level +
     anomalous pairs) is identical to the fault-free baseline --
     injected corruption may cost retries and quarantines, never
     wrong answers.

The return value is a JSON-ready report (seed, rules, fired-fault
schedule, per-job statuses, violations).  ``repro chaos --seed N``
prints it; ``tests/test_chaos.py`` asserts ``report["ok"]`` over a
fixed seed matrix plus a fresh seed per CI run.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time
from typing import List, Optional

from repro.api import AnalyzeRequest, Workspace
from repro.api.workspace import WorkspaceConfig
from repro.faults import ENV_VAR, FaultPlan, FaultRule, activate, deactivate
from repro.service.server import ReproService

#: Benchmarks the chaos mix draws from: small enough that a full run
#: with retries stays in CI-smoke territory, distinct enough to spread
#: across shards and cache lines.
CHAOS_BENCHMARKS = ("SIBench", "Courseware", "SmallBank")

#: Per-site actions a generated plan may use.  ``crash`` is reserved
#: for explicit worker-process plans (see tests); a generated plan must
#: stay safe for the inline runner.
_SITE_ACTIONS = {
    "jobstore.claim": ("raise", "busy", "delay"),
    "cache.read": ("corrupt", "delay"),
    "worker.pre_result": ("raise", "busy"),
    "events.write": ("raise", "busy"),
    "solver.propagate": ("raise", "delay"),
    # Tenant resolution failing must cost isolation, never availability:
    # a raise here makes resolve_tenant fall back to the address-keyed
    # default (asserted directly in tests/test_chaos.py).
    "admission.tenant_lookup": ("raise", "delay"),
}


def default_plan(seed: int, log_path: Optional[str] = None) -> FaultPlan:
    """A seeded, generated fault plan: 4-7 rules over the failpoint
    sites, mixing exact ``nth``-hit triggers with probabilistic ones.
    The same seed always yields the same rules *and* (via the plan's
    private RNG) the same probabilistic firing schedule."""
    rng = random.Random(seed)
    sites = sorted(_SITE_ACTIONS)
    rules: List[FaultRule] = []
    # One guaranteed corruption: the quarantine path must be exercised
    # by every seed, not just the lucky ones.
    rules.append(
        FaultRule(site="cache.read", action="corrupt", nth=rng.randint(1, 3))
    )
    for _ in range(rng.randint(3, 6)):
        site = rng.choice(sites)
        action = rng.choice(_SITE_ACTIONS[site])
        if rng.random() < 0.5:
            rules.append(
                FaultRule(
                    site=site, action=action,
                    nth=rng.randint(1, 10), delay_s=0.01,
                )
            )
        else:
            rules.append(
                FaultRule(
                    site=site, action=action,
                    p=rng.uniform(0.05, 0.25),
                    times=rng.randint(1, 3), delay_s=0.01,
                )
            )
    return FaultPlan(seed, rules, log_path=log_path)


def _essence(result_doc: dict) -> dict:
    """The deterministic core of an analyze result: the verdict.
    Timings and cache counters legitimately vary run to run (and under
    faults); the level and the anomalous pairs may not."""
    return {
        "level": result_doc.get("level"),
        "pairs": result_doc.get("pairs"),
    }


def run_chaos(
    seed: int,
    jobs: int = 6,
    workers: int = 0,
    job_db: Optional[str] = None,
    log_path: Optional[str] = None,
    plan: Optional[FaultPlan] = None,
    timeout: float = 300.0,
) -> dict:
    """Run one seeded chaos experiment; returns the gate report.

    ``workers=0`` (default) exercises the inline tier in-process --
    crash actions degrade to raises.  ``workers=N`` spawns real worker
    processes which inherit the plan through ``$REPRO_FAULTS`` (crash
    actions enabled there).  ``plan`` overrides :func:`default_plan`
    for hand-written schedules.
    """
    benches = [CHAOS_BENCHMARKS[i % len(CHAOS_BENCHMARKS)] for i in range(jobs)]
    requests = [AnalyzeRequest(benchmark=name) for name in benches]

    # 1. Fault-free baseline on the serial seed oracle.
    baseline = {}
    with Workspace(strategy="serial") as ws:
        for name in sorted(set(benches)):
            baseline[name] = _essence(
                ws.analyze(AnalyzeRequest(benchmark=name)).to_json()
            )

    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-")
    if job_db is None:
        job_db = os.path.join(tmpdir, "jobs.sqlite")
    cache_dir = os.path.join(tmpdir, "cache")

    # 2. Warm the persistent cache so cache.read failpoints sit on a
    #    real disk-read path (a fresh cache never consults disk).
    with Workspace(strategy="incremental", cache_dir=cache_dir) as ws:
        for name in sorted(set(benches)):
            ws.analyze(AnalyzeRequest(benchmark=name))

    plan = plan if plan is not None else default_plan(seed, log_path=log_path)
    violations: List[str] = []
    statuses = {}
    cancel_status = None
    saved_env = os.environ.get(ENV_VAR)
    activate(plan, allow_crash=False)
    if workers:
        os.environ[ENV_VAR] = plan.to_spec()
    service = None
    try:
        service = ReproService(
            Workspace(strategy="incremental", cache_dir=cache_dir),
            job_db=job_db,
            workers=workers,
            worker_config=WorkspaceConfig(
                strategy="incremental", cache_dir=cache_dir
            ),
            jitter_seed=seed,
        )
        job_ids = []
        for request in requests:
            status, payload, _ = service.handle(
                "POST", "/v1/jobs", json.dumps(request.to_json()).encode()
            )
            if status != 202:
                violations.append(f"submit refused: {status} {payload}")
                continue
            job_ids.append(payload["id"])

        # The cancel probe: one extra job, cancelled right away.
        status, payload, _ = service.handle(
            "POST", "/v1/jobs",
            json.dumps(AnalyzeRequest(benchmark=benches[0]).to_json()).encode(),
        )
        cancel_id = payload["id"] if status == 202 else None
        if cancel_id is not None:
            job_ids.append(cancel_id)
            status, payload, _ = service.handle(
                "POST", f"/v1/jobs/{cancel_id}/cancel", b""
            )
            if status != 200:
                violations.append(f"cancel refused: {status} {payload}")

        if len(set(job_ids)) != len(job_ids):
            violations.append("duplicate job ids returned at submission")

        # 3. Wait for quiescence: every accepted job terminal.
        deadline = time.monotonic() + timeout
        docs = {}
        pending = set(job_ids)
        while pending and time.monotonic() < deadline:
            for job_id in sorted(pending):
                status, doc, _ = service.handle(
                    "GET", f"/v1/jobs/{job_id}", b""
                )
                if status == 200 and doc["status"] in (
                    "done", "failed", "cancelled",
                ):
                    docs[job_id] = doc
                    pending.discard(job_id)
            if pending:
                time.sleep(0.05)
        for job_id in sorted(pending):
            status, doc, _ = service.handle("GET", f"/v1/jobs/{job_id}", b"")
            violations.append(
                f"job {job_id} not terminal after {timeout}s "
                f"(status {doc.get('status') if status == 200 else status})"
            )

        # 4. Gates.
        counters = service.store.counters()
        if counters["total"] != len(job_ids):
            violations.append(
                f"store holds {counters['total']} jobs for "
                f"{len(job_ids)} accepted submissions (lost or duplicated)"
            )
        statuses = {
            job_id: doc["status"] for job_id, doc in sorted(docs.items())
        }
        if cancel_id is not None and cancel_id in docs:
            cancel_status = docs[cancel_id]["status"]
            if cancel_status not in ("cancelled", "done"):
                violations.append(
                    f"cancel probe landed {cancel_status!r}, expected "
                    "cancelled (or done, if it outran the cancel)"
                )
        for job_id, name in zip(job_ids, benches):
            doc = docs.get(job_id)
            if doc is None or doc["status"] != "done":
                continue
            if _essence(doc["result"] or {}) != baseline[name]:
                violations.append(
                    f"job {job_id} ({name}) diverged from the fault-free "
                    "baseline under faults"
                )
        quarantined = 0
        cache = service.workspace.cache
        if cache is not None:
            quarantined = getattr(cache, "quarantined", 0)
    finally:
        deactivate()
        if workers:
            if saved_env is None:
                os.environ.pop(ENV_VAR, None)
            else:
                os.environ[ENV_VAR] = saved_env
        if service is not None:
            service.close()
        shutil.rmtree(tmpdir, ignore_errors=True)

    return {
        "ok": not violations,
        "seed": seed,
        "workers": workers,
        "jobs_submitted": jobs + 1,
        "statuses": statuses,
        "cancel_status": cancel_status,
        "rules": [rule.to_json() for rule in plan.rules],
        "schedule": plan.schedule,
        "faults_fired": len(plan.schedule),
        "cache_quarantined": quarantined,
        "violations": violations,
    }


def _tenant_source(tag: str, index: int, txns: int = 2) -> str:
    """A unique-by-construction DSL program for the isolation scenario.

    Distinct identifiers per (tenant tag, index) keep every job out of
    the memo cache -- an aggressor whose 50 jobs all hit one cache line
    drains instantly and proves nothing about scheduling.
    """
    parts = [
        f"schema T{tag}{index} {{\n"
        f"  key t{tag}{index}_id;\n"
        f"  field t{tag}{index}_a;\n"
        f"  field t{tag}{index}_b;\n"
        f"}}\n"
    ]
    for t in range(txns):
        parts.append(
            f"txn T{tag}{index}x{t}(k) {{\n"
            f"  x := select t{tag}{index}_a from T{tag}{index}"
            f" where t{tag}{index}_id = k;\n"
            f"  update T{tag}{index} set t{tag}{index}_a ="
            f" x.t{tag}{index}_a + {t} where t{tag}{index}_id = k;\n"
            f"}}\n"
        )
    return "\n".join(parts)


def _victim_pass(service: ReproService, jobs: int, timeout: float,
                 violations: List[str], label: str) -> List[float]:
    """Trickle ``jobs`` victim jobs through ``service`` one at a time
    (closed loop, one in flight) and return per-job latencies."""
    latencies: List[float] = []
    for index in range(jobs):
        body = json.dumps({
            "version": 1, "kind": "analyze_request",
            "source": _tenant_source("v", index),
        }).encode()
        started = time.monotonic()
        status, payload, _ = service.handle(
            "POST", "/v1/jobs", body, tenant_header="victim"
        )
        if status != 202:
            violations.append(
                f"{label}: victim submit {index} refused: {status} {payload}"
            )
            continue
        job_id = payload["id"]
        deadline = time.monotonic() + timeout
        while True:
            status, doc, _ = service.handle("GET", f"/v1/jobs/{job_id}", b"")
            if status == 200 and doc["status"] in (
                "done", "failed", "cancelled",
            ):
                break
            if time.monotonic() > deadline:
                doc = {"status": "stuck"}
                break
            time.sleep(0.02)
        if doc["status"] != "done":
            violations.append(
                f"{label}: victim job {index} landed {doc['status']!r}"
            )
            continue
        latencies.append(time.monotonic() - started)
    return latencies


def run_tenant_isolation(
    seed: int,
    aggressor_jobs: int = 50,
    victim_jobs: int = 5,
    workers: int = 0,
    timeout: float = 120.0,
) -> dict:
    """The aggressor/victim fairness experiment (no injected faults --
    the "fault" is a noisy neighbour).

    Tenant ``aggressor`` floods the queue with ``aggressor_jobs``
    distinct analyze jobs; tenant ``victim`` then trickles
    ``victim_jobs`` jobs one at a time.  With equal weights, the
    deficit-weighted claim loop must interleave the two queues, so each
    victim job waits behind at most one in-flight aggressor job --
    never behind the whole backlog.

    Gates: every victim job completes ``done``; the victim's p99
    latency under flood stays within ``max(3x solo, solo + 1s)`` of a
    solo baseline measured on an identical fresh service; the store
    holds exactly one row per accepted submission (no lost or
    duplicated work).  Returns a JSON-ready report.
    """
    def percentile(values: List[float], q: float) -> float:
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
        return ordered[min(rank, len(ordered)) - 1]

    violations: List[str] = []
    service_kwargs = dict(
        workers=workers,
        worker_config=WorkspaceConfig(strategy="incremental"),
        max_queue_depth=aggressor_jobs + victim_jobs + 8,
        jitter_seed=seed,
    )
    # 1. Solo baseline: the victim alone on a fresh service.
    solo_service = ReproService(
        Workspace(strategy="incremental"), **service_kwargs
    )
    try:
        solo = _victim_pass(
            solo_service, victim_jobs, timeout, violations, "solo"
        )
    finally:
        solo_service.close()

    # 2. Contended run: flood as the aggressor, then trickle the
    #    victim through the same (equal-weight) service.
    service = ReproService(
        Workspace(strategy="incremental"), **service_kwargs
    )
    try:
        for index in range(aggressor_jobs):
            body = json.dumps({
                "version": 1, "kind": "analyze_request",
                "source": _tenant_source("a", index),
            }).encode()
            status, payload, _ = service.handle(
                "POST", "/v1/jobs", body, tenant_header="aggressor"
            )
            if status != 202:
                violations.append(
                    f"aggressor submit {index} refused: {status} {payload}"
                )
        contended = _victim_pass(
            service, victim_jobs, timeout, violations, "contended"
        )
        counters = service.store.counters()
        submitted = aggressor_jobs + victim_jobs - sum(
            1 for v in violations if "refused" in v
        )
        if counters["total"] != submitted:
            violations.append(
                f"store holds {counters['total']} rows for "
                f"{submitted} accepted submissions (lost or duplicated)"
            )
        tenants = service.store.tenant_counters()
    finally:
        service.close()

    solo_p99 = percentile(solo, 99)
    contended_p99 = percentile(contended, 99)
    # The absolute floor keeps CI timing noise out of the gate: on a
    # loaded runner a 0.05s solo baseline would make 3x a 0.15s trap.
    threshold = max(3.0 * solo_p99, solo_p99 + 1.0)
    if len(contended) == victim_jobs and contended_p99 > threshold:
        violations.append(
            f"victim p99 {contended_p99:.3f}s exceeds fairness threshold "
            f"{threshold:.3f}s (solo p99 {solo_p99:.3f}s): the aggressor "
            "backlog is starving the victim"
        )

    return {
        "ok": not violations,
        "seed": seed,
        "workers": workers,
        "aggressor_jobs": aggressor_jobs,
        "victim_jobs": victim_jobs,
        "victim_completed": len(contended),
        "solo_p50_s": round(percentile(solo, 50), 4),
        "solo_p99_s": round(solo_p99, 4),
        "contended_p50_s": round(percentile(contended, 50), 4),
        "contended_p99_s": round(contended_p99, 4),
        "threshold_s": round(threshold, 4),
        "tenants": tenants,
        "violations": violations,
    }


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------

#: Every named scenario ``repro chaos --scenario`` accepts, with the
#: one-line description the CLI help derives.  Registering a scenario
#: here is all it takes to surface it on the CLI and in the
#: unknown-scenario error message.
SCENARIOS = {
    "faults": (
        run_chaos,
        "the seeded fault-plan experiment (crash/corruption injection "
        "against the durability gates)",
    ),
    "tenant-isolation": (
        run_tenant_isolation,
        "the aggressor/victim fairness experiment (no injected faults; "
        "the fault is a noisy neighbour)",
    ),
}


def scenario_help() -> str:
    """The CLI help text enumerating every registered scenario."""
    return "; ".join(
        f"'{name}': {description}"
        for name, (_, description) in sorted(SCENARIOS.items())
    )


def run_scenario(name: str, **kwargs) -> dict:
    """Dispatch one named scenario; keyword arguments pass through to
    its runner.  Unknown names raise with the full registry listed, so
    callers never have to read the source to learn what exists."""
    from repro.errors import ReproError

    entry = SCENARIOS.get(name)
    if entry is None:
        known = ", ".join(sorted(SCENARIOS))
        raise ReproError(
            f"unknown chaos scenario {name!r} (valid scenarios: {known})"
        )
    runner, _ = entry
    return runner(**kwargs)
