"""``repro.api``: the versioned façade every caller goes through.

One :class:`Workspace` (corpus + cache + execution strategy) answers
four operations -- **analyze**, **repair**, **bench**, **protect**
(live repair; see :mod:`repro.live`) -- over frozen,
versioned request/response dataclasses with ``to_json``/``from_json``
(see :mod:`repro.api.types`; wire shapes are pinned by the golden
documents under ``schemas/``).  Errors are :class:`~repro.errors.
ReproError` subclasses with stable machine-readable codes
(:mod:`repro.api.errors`); long operations narrate themselves through
:class:`~repro.api.events.ProgressEvent` callbacks.

The package shortcuts (:func:`repro.detect_anomalies`,
:func:`repro.repair`), the :mod:`repro.exp` drivers, the CLI, and the
HTTP service (:mod:`repro.service`) are all thin wrappers over this
module::

    from repro.api import Workspace, AnalyzeRequest, RepairRequest

    with Workspace(strategy="auto", cache_dir=".cache") as ws:
        verdict = ws.analyze(AnalyzeRequest(benchmark="Courseware"))
        fix = ws.repair(RepairRequest(benchmark="Courseware"))
        print(fix.repaired_program)
        payload = fix.to_json()          # versioned, schema-validated

When a workspace must be built in another process -- the service's
worker pool does this for every worker -- describe it with a picklable
:class:`WorkspaceConfig` and call :meth:`WorkspaceConfig.build` on the
far side::

    from repro.api import WorkspaceConfig

    config = WorkspaceConfig(strategy="incremental", cache_dir=".cache")
    ws = config.for_worker(3).build()    # private cache subdir worker-3

Browse this surface with ``python -m pydoc repro.api`` (every exported
name carries reference-grade docs); the service's own additions --
admission-control errors like :class:`QueueFullError` -- live here too
so clients never import from :mod:`repro.service` just to catch them.
"""

from repro.api.errors import (
    ApiError,
    BackpressureError,
    BudgetExhaustedError,
    DeadlineExceededError,
    InvalidRequestError,
    JobCancelledError,
    JobNotFoundError,
    QueueFullError,
    RateLimitedError,
    RequestTooLargeError,
    SchemaVersionError,
    ServiceDrainingError,
    UnknownBenchmarkError,
    error_payload,
    http_status_of,
)
from repro.budget import Budget
from repro.api.events import ProgressCallback, ProgressEvent, emit
from repro.api.schema import all_schemas, check_schemas, dump_schemas, validate
from repro.api.types import (
    LEVELS,
    SCHEMA_VERSION,
    SEARCHES,
    AnalyzeRequest,
    AnalyzeResult,
    BenchRequest,
    BenchResult,
    BenchRow,
    LiveProtectRequest,
    LiveProtectResult,
    OutcomeData,
    PairData,
    RepairRequest,
    RepairResult,
    decode_request,
)
from repro.api.workspace import (
    DEFAULT_STRATEGY,
    STRATEGIES,
    Workspace,
    WorkspaceConfig,
    requested_strategy,
)

__all__ = [
    "Workspace",
    "WorkspaceConfig",
    "DEFAULT_STRATEGY",
    "STRATEGIES",
    "requested_strategy",
    "SCHEMA_VERSION",
    "LEVELS",
    "SEARCHES",
    "AnalyzeRequest",
    "AnalyzeResult",
    "RepairRequest",
    "RepairResult",
    "BenchRequest",
    "BenchResult",
    "BenchRow",
    "LiveProtectRequest",
    "LiveProtectResult",
    "PairData",
    "OutcomeData",
    "decode_request",
    "ApiError",
    "Budget",
    "BudgetExhaustedError",
    "DeadlineExceededError",
    "InvalidRequestError",
    "SchemaVersionError",
    "UnknownBenchmarkError",
    "JobCancelledError",
    "JobNotFoundError",
    "BackpressureError",
    "QueueFullError",
    "RateLimitedError",
    "RequestTooLargeError",
    "ServiceDrainingError",
    "error_payload",
    "http_status_of",
    "ProgressEvent",
    "ProgressCallback",
    "emit",
    "all_schemas",
    "dump_schemas",
    "check_schemas",
    "validate",
]
