"""Versioned JSON schemas for every wire type, plus a tiny validator.

The documents returned by :func:`all_schemas` are the contract of the
``/v1`` HTTP surface.  They are dumped to the committed ``schemas/``
directory (``repro schemas --out schemas``) and CI regenerates and
diffs them (``repro schemas --check``): any change to a wire shape
either bumps :data:`~repro.api.types.SCHEMA_VERSION` (producing new
``*.v2.json`` files next to the frozen v1 ones) or is a build failure.
That is the whole drift gate -- no schema review by eyeball.

The validator implements the subset of JSON Schema the documents use
(``type``, ``properties``, ``required``, ``additionalProperties``,
``items``, ``enum``, nullable via type lists) so the test suite can
validate live service responses without a third-party dependency.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.api.types import LEVELS, SCHEMA_VERSION, SEARCHES

# ---------------------------------------------------------------------------
# Schema documents
# ---------------------------------------------------------------------------


def _envelope(kind: str, extra_props: dict, required: List[str]) -> dict:
    """The shared request/response envelope: pinned version + kind."""
    props = {
        "version": {"enum": [SCHEMA_VERSION]},
        "kind": {"enum": [kind]},
    }
    props.update(extra_props)
    return {
        "type": "object",
        "properties": props,
        "required": ["version", "kind"] + required,
        "additionalProperties": False,
    }


_STR = {"type": "string"}
_OPT_STR = {"type": ["string", "null"]}
_INT = {"type": "integer"}
_NUM = {"type": "number"}
_BOOL = {"type": "boolean"}
_STR_LIST = {"type": "array", "items": _STR}
_LEVEL = {"enum": list(LEVELS)}
_SEARCH = {"enum": list(SEARCHES)}

#: Plan documents have their own internal version (RewritePlan JSON);
#: the API schema treats them as opaque objects with a version+steps.
_PLAN = {
    "type": "object",
    "properties": {
        "version": _INT,
        "steps": {"type": "array", "items": {"type": "object"}},
    },
    "required": ["version", "steps"],
    "additionalProperties": False,
}

_PAIR = {
    "type": "object",
    "properties": {
        "txn": _STR,
        "c1": _STR,
        "fields1": _STR_LIST,
        "c2": _STR,
        "fields2": _STR_LIST,
        "interferers": _STR_LIST,
        "patterns": _STR_LIST,
    },
    "required": ["txn", "c1", "fields1", "c2", "fields2"],
    "additionalProperties": False,
}

_PAIR_LIST = {"type": "array", "items": _PAIR}

#: Budget documents accepted by analyze/repair requests; today the only
#: knob is a solver conflict cap (wall-clock lives in ``deadline_ms``).
_BUDGET = {
    "type": "object",
    "properties": {"max_conflicts": _INT},
    "additionalProperties": False,
}

#: Partial results attached to a ``deadline-exceeded`` error payload:
#: every pair confirmed anomalous before the deadline, plus how far the
#: sweep got (``pairs_checked`` of ``pairs_total`` candidate pairs).
_PARTIAL = {
    "type": "object",
    "properties": {
        "level": _STR,
        "pairs": _PAIR_LIST,
        "pairs_checked": _INT,
        "pairs_total": _INT,
    },
    "required": ["pairs", "pairs_checked", "pairs_total"],
    "additionalProperties": False,
}

_OUTCOME = {
    "type": "object",
    "properties": {"action": _STR, "pair": _PAIR},
    "required": ["action", "pair"],
    "additionalProperties": False,
}

_BENCH_ROW = {
    "type": "object",
    "properties": {
        "name": _STR,
        "txns": _INT,
        "tables_before": _INT,
        "tables_after": _INT,
        "ec": _INT,
        "at": _INT,
        "cc": _INT,
        "rr": _INT,
        "time_s": _NUM,
        "repair_seconds": _NUM,
        "plan_steps": _INT,
        "plan": _PLAN,
    },
    "required": ["name", "ec", "at", "cc", "rr", "plan_steps"],
    "additionalProperties": False,
}

_COUNTERS = {"type": "object", "additionalProperties": _INT}

#: One tenant's entry in ``stats.service.tenants``: job totals from the
#: store plus the admission-side shed/breaker counters.
_TENANT_STATS = {
    "type": "object",
    "properties": {
        "queued": _INT,
        "running": _INT,
        "done": _INT,
        "failed": _INT,
        "cancelled": _INT,
        "shed": _INT,
        "breaker_trips": _INT,
        "suspended": _BOOL,
    },
    "additionalProperties": False,
}

_EVENT = {
    "type": "object",
    "properties": {"stage": _STR, "detail": {"type": "object"}},
    "required": ["stage", "detail"],
    "additionalProperties": False,
}

#: One seeded weak-exploration count in a live-protect result.
_EXPLORATION = {
    "type": "object",
    "properties": {"anomalies": _INT, "errors": _INT, "samples": _INT},
    "required": ["anomalies", "errors", "samples"],
    "additionalProperties": False,
}

#: One compiled mutation rule's wire row (match + serving + counters).
_RULE_ROW = {
    "type": "object",
    "properties": {
        "txn": _STR,
        "label": _STR,
        "op": {"enum": ["select", "update", "insert"]},
        "table": _STR,
        "fields": _STR_LIST,
        "serving": _STR_LIST,
        "identity": _BOOL,
        "hits": _INT,
        "rewrites": _INT,
        "skips": _INT,
    },
    "required": ["txn", "label", "op", "table", "serving", "identity"],
    "additionalProperties": False,
}

#: A plan step the live compiler could not lower, with its reason.
_UNSUPPORTED_STEP = {
    "type": "object",
    "properties": {"step": {"type": "object"}, "reason": _STR},
    "required": ["step", "reason"],
    "additionalProperties": False,
}

#: The simulated overhead measurement document (see
#: :mod:`repro.live.overhead`).
_OVERHEAD = {
    "type": "object",
    "properties": {
        "benchmark": _STR,
        "clients": _INT,
        "scale": _INT,
        "seed": _INT,
        "predicted_throughput": _NUM,
        "live_throughput": _NUM,
        "overhead_ratio": _NUM,
        "live_avg_latency_ms": _NUM,
        "live_p95_latency_ms": _NUM,
        "rules": _INT,
        "rewritten_rules": _INT,
        "unsupported": _INT,
    },
    "required": ["benchmark", "predicted_throughput", "live_throughput",
                 "overhead_ratio"],
    "additionalProperties": False,
}


def all_schemas() -> Dict[str, dict]:
    """``name -> schema document`` for the current protocol version.
    Names map to files ``schemas/<name>.v<version>.json``."""
    analyze_request = _envelope(
        "analyze_request",
        {
            "source": _OPT_STR,
            "benchmark": _OPT_STR,
            "level": _LEVEL,
            "use_prefilter": _BOOL,
            "distinct_args": _BOOL,
            "deadline_ms": _INT,
            "budget": _BUDGET,
            "tenant": _STR,
        },
        [],
    )
    analyze_result = _envelope(
        "analyze_result",
        {
            "level": _LEVEL,
            "pairs": _PAIR_LIST,
            "pairs_checked": _INT,
            "sat_queries": _INT,
            "cache_hits": _INT,
            "cache_misses": _INT,
            "strategy": _STR,
            "elapsed_seconds": _NUM,
        },
        ["level", "pairs"],
    )
    repair_request = _envelope(
        "repair_request",
        {
            "source": _OPT_STR,
            "benchmark": _OPT_STR,
            "level": _LEVEL,
            "search": _SEARCH,
            "use_prefilter": _BOOL,
            "plan": _PLAN,
            "deadline_ms": _INT,
            "budget": _BUDGET,
            "tenant": _STR,
        },
        [],
    )
    repair_result = _envelope(
        "repair_result",
        {
            "initial_pairs": _PAIR_LIST,
            "residual_pairs": _PAIR_LIST,
            "outcomes": {"type": "array", "items": _OUTCOME},
            "plan": _PLAN,
            "repaired_program": _STR,
            "serializable_variant": _STR,
            "tables_before": _INT,
            "tables_after": _INT,
            "search": _STR,
            "strategy": _STR,
            "elapsed_seconds": _NUM,
        },
        ["initial_pairs", "residual_pairs", "plan", "repaired_program"],
    )
    bench_request = _envelope(
        "bench_request",
        {"benchmarks": _STR_LIST, "search": _SEARCH, "tenant": _STR},
        [],
    )
    bench_result = _envelope(
        "bench_result",
        {
            "rows": {"type": "array", "items": _BENCH_ROW},
            "search": _STR,
            "strategy": _STR,
            "elapsed_seconds": _NUM,
        },
        ["rows"],
    )
    live_protect_request = _envelope(
        "live_protect_request",
        {
            "benchmark": _STR,
            "plan": _PLAN,
            "samples": _INT,
            "seed": _INT,
            "scale": _INT,
            "measure": _BOOL,
            "clients": _INT,
            "tenant": _STR,
        },
        ["benchmark"],
    )
    live_protect_result = _envelope(
        "live_protect_result",
        {
            "benchmark": _STR,
            "rules": _INT,
            "identity_rules": _INT,
            "unsupported": _INT,
            "unsupported_steps": {"type": "array", "items": _UNSUPPORTED_STEP},
            "serial_match": _BOOL,
            "verdict_match": _BOOL,
            "passed": _BOOL,
            "samples": _INT,
            "seed": _INT,
            "scale": _INT,
            "anomalies": {
                "type": "object",
                "properties": {
                    "original": _EXPLORATION,
                    "static": _EXPLORATION,
                    "target": _EXPLORATION,
                    "live": _EXPLORATION,
                },
                "required": ["original", "static", "target", "live"],
                "additionalProperties": False,
            },
            "rule_summary": {"type": "array", "items": _RULE_ROW},
            "overhead": _OVERHEAD,
            "elapsed_seconds": _NUM,
        },
        ["benchmark", "rules", "serial_match", "verdict_match", "passed",
         "anomalies"],
    )
    error = {
        "type": "object",
        "properties": {
            "error": {
                "type": "object",
                "properties": {
                    "code": _STR,
                    "message": _STR,
                    "partial": _PARTIAL,
                },
                "required": ["code", "message"],
                "additionalProperties": False,
            }
        },
        "required": ["error"],
        "additionalProperties": False,
    }
    health = {
        "type": "object",
        "properties": {
            "status": {"enum": ["ok", "draining"]},
            "version": _STR,
            "protocol": {"enum": [SCHEMA_VERSION]},
            "strategy": _STR,
        },
        "required": ["status", "version", "protocol"],
        "additionalProperties": False,
    }
    stats = {
        "type": "object",
        "properties": {
            "version": _STR,
            "strategy": _STR,
            "uptime_seconds": _NUM,
            "requests": _COUNTERS,
            "cache": {
                "type": ["object", "null"],
                "properties": {
                    "hits": _INT,
                    "misses": _INT,
                    "hit_rate": _NUM,
                    "persistent_hits": _INT,
                    "entries": _INT,
                },
                "required": ["hits", "misses", "hit_rate"],
                "additionalProperties": False,
            },
            "sessions": _COUNTERS,
            "jobs": _COUNTERS,
            "service": {
                "type": "object",
                "properties": {
                    "workers": _INT,
                    "workers_alive": _INT,
                    "worker_restarts": _INT,
                    "queue_depth": _INT,
                    "max_queue_depth": _INT,
                    "draining": _BOOL,
                    "recovered_jobs": _INT,
                    "breaker_trips": _INT,
                    "admission": _COUNTERS,
                    "tenants": {
                        "type": "object",
                        "additionalProperties": _TENANT_STATS,
                    },
                },
                "required": [
                    "workers", "queue_depth", "draining", "admission",
                ],
                "additionalProperties": False,
            },
        },
        "required": ["version", "strategy", "requests"],
        "additionalProperties": False,
    }
    job = {
        "type": "object",
        "properties": {
            "id": _STR,
            "kind": {"enum": ["analyze", "repair", "bench", "protect"]},
            "status": {
                "enum": ["queued", "running", "done", "failed", "cancelled"]
            },
            "tenant": _STR,
            "created_at": _NUM,
            "started_at": {"type": ["number", "null"]},
            "finished_at": {"type": ["number", "null"]},
            "attempts": _INT,
            "worker": _OPT_STR,
            "events": {"type": "array", "items": _EVENT},
            "result": {"type": ["object", "null"]},
            "error": {"type": ["object", "null"]},
        },
        "required": ["id", "kind", "status", "events"],
        "additionalProperties": False,
    }
    # One NDJSON line on a ``GET /v1/jobs/<id>/events?stream=1`` body:
    # either a progress event (``stage`` + ``detail``) or, when the
    # stream has been idle for the heartbeat interval, a keep-alive
    # ``{"kind": "heartbeat"}`` that clients must ignore.
    job_event = {
        "type": "object",
        "properties": {
            "stage": _STR,
            "detail": {"type": "object"},
            "kind": {"enum": ["heartbeat"]},
        },
        "additionalProperties": False,
    }
    return {
        "analyze_request": analyze_request,
        "analyze_result": analyze_result,
        "repair_request": repair_request,
        "repair_result": repair_result,
        "bench_request": bench_request,
        "bench_result": bench_result,
        "live_protect_request": live_protect_request,
        "live_protect_result": live_protect_result,
        "error": error,
        "health": health,
        "stats": stats,
        "job": job,
        "job_event": job_event,
    }


def schema_filename(name: str, version: int = SCHEMA_VERSION) -> str:
    return f"{name}.v{version}.json"


def dump_schemas(out_dir: str) -> List[str]:
    """Write every schema document under ``out_dir``; returns the file
    names written.  Documents are serialized with sorted keys so the
    golden diff is stable."""
    import os

    os.makedirs(out_dir, exist_ok=True)
    written = []
    for name, doc in sorted(all_schemas().items()):
        filename = schema_filename(name)
        with open(os.path.join(out_dir, filename), "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        written.append(filename)
    return written


def check_schemas(out_dir: str) -> List[str]:
    """Compare the committed golden files against the live documents;
    returns a list of human-readable drift descriptions (empty = clean)."""
    import os

    problems = []
    for name, doc in sorted(all_schemas().items()):
        path = os.path.join(out_dir, schema_filename(name))
        if not os.path.exists(path):
            problems.append(f"{schema_filename(name)}: missing (run `repro schemas --out {out_dir}`)")
            continue
        with open(path) as fh:
            try:
                committed = json.load(fh)
            except json.JSONDecodeError as exc:
                problems.append(f"{schema_filename(name)}: unreadable ({exc})")
                continue
        if committed != doc:
            problems.append(
                f"{schema_filename(name)}: drift -- the live schema differs from "
                "the committed golden; bump SCHEMA_VERSION or fix the change"
            )
    return problems


# ---------------------------------------------------------------------------
# Mini validator
# ---------------------------------------------------------------------------

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: object, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("integer", "number") and isinstance(value, bool):
        return False
    return isinstance(value, expected)


def iter_violations(value: object, schema: dict, path: str = "$") -> Iterator[str]:
    """Yield every violation of ``schema`` by ``value`` (subset validator
    -- see the module docstring for the supported keywords)."""
    if "enum" in schema:
        if value not in schema["enum"]:
            yield f"{path}: {value!r} not in enum {schema['enum']}"
        return
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(value, n) for n in names):
            yield (
                f"{path}: expected {'/'.join(names)}, "
                f"got {type(value).__name__}"
            )
            return
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for req in schema.get("required", []):
            if req not in value:
                yield f"{path}: missing required property {req!r}"
        additional = schema.get("additionalProperties", True)
        for key, sub in value.items():
            if key in props:
                yield from iter_violations(sub, props[key], f"{path}.{key}")
            elif additional is False:
                yield f"{path}: unexpected property {key!r}"
            elif isinstance(additional, dict):
                yield from iter_violations(sub, additional, f"{path}.{key}")
    elif isinstance(value, list):
        items = schema.get("items")
        if items is not None:
            for i, sub in enumerate(value):
                yield from iter_violations(sub, items, f"{path}[{i}]")


def validate(value: object, schema: dict) -> Tuple[bool, Optional[str]]:
    """(ok, first violation) -- convenience over :func:`iter_violations`."""
    for violation in iter_violations(value, schema):
        return False, violation
    return True, None
