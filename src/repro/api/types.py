"""The façade's wire types: frozen, versioned request/response objects.

Every public operation of :class:`~repro.api.workspace.Workspace` is a
pure function from a frozen request dataclass to a frozen result
dataclass.  Each type serializes through ``to_json``/``from_json`` under
an explicit envelope -- ``{"version": 1, "kind": "analyze_request", ...}``
-- and the JSON shapes are pinned by the golden documents under
``schemas/`` (see :mod:`repro.api.schema`): changing a shape without
bumping :data:`SCHEMA_VERSION` fails the drift gate in CI.

Decoding is strict: a missing required field, an unknown field, a value
of the wrong type, or a value outside its enum raises
:class:`~repro.api.errors.InvalidRequestError`; a different ``version``
raises :class:`~repro.api.errors.SchemaVersionError`.  Strictness is the
point -- the service must never half-understand a request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Type

from repro.api.errors import InvalidRequestError, SchemaVersionError

#: The one protocol version this build speaks (the ``v1`` in ``/v1/...``).
SCHEMA_VERSION = 1

LEVELS = ("EC", "CC", "RR", "SC")
SEARCHES = ("greedy", "beam", "random")


# ---------------------------------------------------------------------------
# Envelope + field decoding helpers
# ---------------------------------------------------------------------------


def _check_envelope(data: object, kind: str) -> Dict[str, object]:
    if not isinstance(data, dict):
        raise InvalidRequestError(
            f"expected a JSON object for {kind}, got {type(data).__name__}"
        )
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"unsupported schema version {version!r} "
            f"(this server speaks version {SCHEMA_VERSION})"
        )
    got_kind = data.get("kind")
    if got_kind != kind:
        raise InvalidRequestError(f"expected kind {kind!r}, got {got_kind!r}")
    return {k: v for k, v in data.items() if k not in ("version", "kind")}


def _no_extras(kind: str, body: Dict[str, object], known: Tuple[str, ...]) -> None:
    extras = sorted(set(body) - set(known))
    if extras:
        raise InvalidRequestError(f"unknown field(s) for {kind}: {', '.join(extras)}")


def _field(kind, body, name, types, default, required=False, enum=None):
    if name not in body:
        if required:
            raise InvalidRequestError(f"{kind} is missing required field {name!r}")
        return default
    value = body[name]
    # JSON true/false must not satisfy integer/number fields (bool is an
    # int subclass in Python); the shipped validator agrees (_type_ok).
    if not isinstance(value, types) or (
        isinstance(value, bool) and bool not in types
    ):
        raise InvalidRequestError(
            f"{kind}.{name} must be {'/'.join(t.__name__ for t in types)}, "
            f"got {type(value).__name__}"
        )
    if enum is not None and value not in enum:
        raise InvalidRequestError(
            f"{kind}.{name} must be one of {', '.join(enum)}; got {value!r}"
        )
    return value


def _str_tuple(kind: str, body: Dict[str, object], name: str) -> Tuple[str, ...]:
    value = body.get(name, [])
    if not isinstance(value, list) or any(not isinstance(v, str) for v in value):
        raise InvalidRequestError(f"{kind}.{name} must be a list of strings")
    return tuple(value)


# ---------------------------------------------------------------------------
# Shared payload fragments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PairData:
    """One anomalous access pair (the paper's chi tuple), wire form.

    Field sets are sorted tuples so the JSON is canonical -- two runs
    that find the same anomalies serialize byte-identically.
    """

    txn: str
    c1: str
    fields1: Tuple[str, ...]
    c2: str
    fields2: Tuple[str, ...]
    interferers: Tuple[str, ...]
    patterns: Tuple[str, ...]

    @classmethod
    def from_pair(cls, pair) -> "PairData":
        """From an :class:`~repro.analysis.oracle.AccessPair`."""
        return cls(
            txn=pair.txn,
            c1=pair.c1,
            fields1=tuple(sorted(pair.fields1)),
            c2=pair.c2,
            fields2=tuple(sorted(pair.fields2)),
            interferers=tuple(pair.interferers),
            patterns=tuple(pair.patterns),
        )

    def describe(self) -> str:
        f1 = "{" + ", ".join(self.fields1) + "}"
        f2 = "{" + ", ".join(self.fields2) + "}"
        return f"{self.txn}: ({self.c1}, {f1}, {self.c2}, {f2})"

    def to_json(self) -> dict:
        return {
            "txn": self.txn,
            "c1": self.c1,
            "fields1": list(self.fields1),
            "c2": self.c2,
            "fields2": list(self.fields2),
            "interferers": list(self.interferers),
            "patterns": list(self.patterns),
        }

    @classmethod
    def from_json(cls, data: dict) -> "PairData":
        kind = "pair"
        if not isinstance(data, dict):
            raise InvalidRequestError(f"{kind} must be a JSON object")
        _no_extras(kind, data, ("txn", "c1", "fields1", "c2", "fields2",
                                "interferers", "patterns"))
        for name in ("fields1", "fields2"):
            if name not in data:
                raise InvalidRequestError(
                    f"{kind} is missing required field {name!r}"
                )
        return cls(
            txn=_field(kind, data, "txn", (str,), "", required=True),
            c1=_field(kind, data, "c1", (str,), "", required=True),
            fields1=_str_tuple(kind, data, "fields1"),
            c2=_field(kind, data, "c2", (str,), "", required=True),
            fields2=_str_tuple(kind, data, "fields2"),
            interferers=_str_tuple(kind, data, "interferers"),
            patterns=_str_tuple(kind, data, "patterns"),
        )


@dataclass(frozen=True)
class OutcomeData:
    """What the search did to one anomalous pair."""

    action: str
    pair: PairData

    def to_json(self) -> dict:
        return {"action": self.action, "pair": self.pair.to_json()}

    @classmethod
    def from_json(cls, data: dict) -> "OutcomeData":
        if not isinstance(data, dict):
            raise InvalidRequestError("outcome must be a JSON object")
        _no_extras("outcome", data, ("action", "pair"))
        return cls(
            action=_field("outcome", data, "action", (str,), "", required=True),
            pair=PairData.from_json(
                _field("outcome", data, "pair", (dict,), {}, required=True)
            ),
        )


# ---------------------------------------------------------------------------
# analyze
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AnalyzeRequest:
    """Run the anomaly oracle on a program.

    Exactly one of ``source`` (DSL text) or ``benchmark`` (a corpus name
    such as ``"Courseware"``) selects the program.
    """

    source: Optional[str] = None
    benchmark: Optional[str] = None
    level: str = "EC"
    use_prefilter: bool = True
    distinct_args: bool = True
    deadline_ms: Optional[int] = None
    budget: Optional[dict] = None
    tenant: Optional[str] = None

    kind = "analyze_request"

    def to_json(self) -> dict:
        out = {"version": SCHEMA_VERSION, "kind": self.kind, "level": self.level,
               "use_prefilter": self.use_prefilter,
               "distinct_args": self.distinct_args}
        if self.source is not None:
            out["source"] = self.source
        if self.benchmark is not None:
            out["benchmark"] = self.benchmark
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        if self.budget is not None:
            out["budget"] = self.budget
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_json(cls, data: object) -> "AnalyzeRequest":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("source", "benchmark", "level",
                                    "use_prefilter", "distinct_args",
                                    "deadline_ms", "budget", "tenant"))
        return cls(
            source=_field(cls.kind, body, "source", (str,), None),
            benchmark=_field(cls.kind, body, "benchmark", (str,), None),
            level=_field(cls.kind, body, "level", (str,), "EC", enum=LEVELS),
            use_prefilter=_field(cls.kind, body, "use_prefilter", (bool,), True),
            distinct_args=_field(cls.kind, body, "distinct_args", (bool,), True),
            deadline_ms=_field(cls.kind, body, "deadline_ms", (int,), None),
            budget=_field(cls.kind, body, "budget", (dict,), None),
            tenant=_field(cls.kind, body, "tenant", (str,), None),
        )


@dataclass(frozen=True)
class AnalyzeResult:
    """The oracle's verdict plus execution bookkeeping."""

    level: str
    pairs: Tuple[PairData, ...]
    pairs_checked: int
    sat_queries: int
    cache_hits: int
    cache_misses: int
    strategy: str
    elapsed_seconds: float

    kind = "analyze_result"

    @classmethod
    def from_report(cls, report) -> "AnalyzeResult":
        """From an :class:`~repro.analysis.oracle.AnalysisReport`."""
        return cls(
            level=report.level,
            pairs=tuple(PairData.from_pair(p) for p in report.pairs),
            pairs_checked=report.pairs_checked,
            sat_queries=report.sat_queries,
            cache_hits=report.cache_hits,
            cache_misses=report.cache_misses,
            strategy=report.strategy,
            elapsed_seconds=report.elapsed_seconds,
        )

    def to_json(self) -> dict:
        return {
            "version": SCHEMA_VERSION,
            "kind": self.kind,
            "level": self.level,
            "pairs": [p.to_json() for p in self.pairs],
            "pairs_checked": self.pairs_checked,
            "sat_queries": self.sat_queries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "strategy": self.strategy,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_json(cls, data: object) -> "AnalyzeResult":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("level", "pairs", "pairs_checked",
                                    "sat_queries", "cache_hits",
                                    "cache_misses", "strategy",
                                    "elapsed_seconds"))
        pairs = _field(cls.kind, body, "pairs", (list,), [], required=True)
        return cls(
            level=_field(cls.kind, body, "level", (str,), "", required=True),
            pairs=tuple(PairData.from_json(p) for p in pairs),
            pairs_checked=_field(cls.kind, body, "pairs_checked", (int,), 0),
            sat_queries=_field(cls.kind, body, "sat_queries", (int,), 0),
            cache_hits=_field(cls.kind, body, "cache_hits", (int,), 0),
            cache_misses=_field(cls.kind, body, "cache_misses", (int,), 0),
            strategy=_field(cls.kind, body, "strategy", (str,), ""),
            elapsed_seconds=_field(cls.kind, body, "elapsed_seconds",
                                   (int, float), 0.0),
        )


# ---------------------------------------------------------------------------
# repair
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RepairRequest:
    """Repair a program (or replay a saved plan on it).

    ``plan`` -- a serialized :class:`~repro.repair.plan.RewritePlan`
    document -- switches the call to replay mode: the plan is applied
    verbatim and no oracle work runs.
    """

    source: Optional[str] = None
    benchmark: Optional[str] = None
    level: str = "EC"
    search: str = "greedy"
    use_prefilter: bool = True
    plan: Optional[dict] = None
    deadline_ms: Optional[int] = None
    budget: Optional[dict] = None
    tenant: Optional[str] = None

    kind = "repair_request"

    def to_json(self) -> dict:
        out = {"version": SCHEMA_VERSION, "kind": self.kind, "level": self.level,
               "search": self.search, "use_prefilter": self.use_prefilter}
        if self.source is not None:
            out["source"] = self.source
        if self.benchmark is not None:
            out["benchmark"] = self.benchmark
        if self.plan is not None:
            out["plan"] = self.plan
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        if self.budget is not None:
            out["budget"] = self.budget
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_json(cls, data: object) -> "RepairRequest":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("source", "benchmark", "level", "search",
                                    "use_prefilter", "plan",
                                    "deadline_ms", "budget", "tenant"))
        return cls(
            source=_field(cls.kind, body, "source", (str,), None),
            benchmark=_field(cls.kind, body, "benchmark", (str,), None),
            level=_field(cls.kind, body, "level", (str,), "EC", enum=LEVELS),
            search=_field(cls.kind, body, "search", (str,), "greedy",
                          enum=SEARCHES),
            use_prefilter=_field(cls.kind, body, "use_prefilter", (bool,), True),
            plan=_field(cls.kind, body, "plan", (dict,), None),
            deadline_ms=_field(cls.kind, body, "deadline_ms", (int,), None),
            budget=_field(cls.kind, body, "budget", (dict,), None),
            tenant=_field(cls.kind, body, "tenant", (str,), None),
        )


@dataclass(frozen=True)
class RepairResult:
    """A repair's full verdict.

    ``repaired_program`` and ``serializable_variant`` are printed DSL
    text (the printer is deterministic, so equality is byte equality);
    ``plan`` is the versioned plan document replayable via
    :class:`~repro.repair.plan.RewritePlan` or a ``RepairRequest`` with
    ``plan`` set.
    """

    initial_pairs: Tuple[PairData, ...]
    residual_pairs: Tuple[PairData, ...]
    outcomes: Tuple[OutcomeData, ...]
    plan: dict
    repaired_program: str
    serializable_variant: str
    tables_before: int
    tables_after: int
    search: str
    strategy: str
    elapsed_seconds: float

    kind = "repair_result"

    @classmethod
    def from_report(cls, report, strategy: str = "serial") -> "RepairResult":
        """From a :class:`~repro.repair.engine.RepairReport`;
        ``strategy`` names the oracle execution strategy used."""
        from repro.lang import print_program

        return cls(
            initial_pairs=tuple(
                PairData.from_pair(p) for p in report.initial_pairs
            ),
            residual_pairs=tuple(
                PairData.from_pair(p) for p in report.residual_pairs
            ),
            outcomes=tuple(
                OutcomeData(action=o.action, pair=PairData.from_pair(o.pair))
                for o in report.outcomes
            ),
            plan=report.plan.to_json(),
            repaired_program=print_program(report.repaired_program),
            serializable_variant=print_program(report.serializable_variant()),
            tables_before=len(report.original_program.schemas),
            tables_after=len(report.repaired_program.schemas),
            search=report.strategy,
            strategy=strategy,
            elapsed_seconds=report.elapsed_seconds,
        )

    @property
    def repaired_count(self) -> int:
        return len(self.initial_pairs) - len(self.residual_pairs)

    def to_json(self) -> dict:
        return {
            "version": SCHEMA_VERSION,
            "kind": self.kind,
            "initial_pairs": [p.to_json() for p in self.initial_pairs],
            "residual_pairs": [p.to_json() for p in self.residual_pairs],
            "outcomes": [o.to_json() for o in self.outcomes],
            "plan": self.plan,
            "repaired_program": self.repaired_program,
            "serializable_variant": self.serializable_variant,
            "tables_before": self.tables_before,
            "tables_after": self.tables_after,
            "search": self.search,
            "strategy": self.strategy,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_json(cls, data: object) -> "RepairResult":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("initial_pairs", "residual_pairs",
                                    "outcomes", "plan", "repaired_program",
                                    "serializable_variant", "tables_before",
                                    "tables_after", "search", "strategy",
                                    "elapsed_seconds"))

        def pair_list(name):
            value = _field(cls.kind, body, name, (list,), [], required=True)
            return tuple(PairData.from_json(p) for p in value)

        outcomes = _field(cls.kind, body, "outcomes", (list,), [])
        return cls(
            initial_pairs=pair_list("initial_pairs"),
            residual_pairs=pair_list("residual_pairs"),
            outcomes=tuple(OutcomeData.from_json(o) for o in outcomes),
            plan=_field(cls.kind, body, "plan", (dict,), {}, required=True),
            repaired_program=_field(cls.kind, body, "repaired_program", (str,),
                                    "", required=True),
            serializable_variant=_field(cls.kind, body, "serializable_variant",
                                        (str,), ""),
            tables_before=_field(cls.kind, body, "tables_before", (int,), 0),
            tables_after=_field(cls.kind, body, "tables_after", (int,), 0),
            search=_field(cls.kind, body, "search", (str,), ""),
            strategy=_field(cls.kind, body, "strategy", (str,), ""),
            elapsed_seconds=_field(cls.kind, body, "elapsed_seconds",
                                   (int, float), 0.0),
        )


# ---------------------------------------------------------------------------
# bench
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchRequest:
    """Measure the Table-1 workload (repair + CC/RR sweeps) per benchmark.

    ``benchmarks`` is a list of corpus names; empty means the full corpus.
    """

    benchmarks: Tuple[str, ...] = ()
    search: str = "greedy"
    tenant: Optional[str] = None

    kind = "bench_request"

    def to_json(self) -> dict:
        out = {"version": SCHEMA_VERSION, "kind": self.kind,
               "benchmarks": list(self.benchmarks), "search": self.search}
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_json(cls, data: object) -> "BenchRequest":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("benchmarks", "search", "tenant"))
        return cls(
            benchmarks=_str_tuple(cls.kind, body, "benchmarks"),
            search=_field(cls.kind, body, "search", (str,), "greedy",
                          enum=SEARCHES),
            tenant=_field(cls.kind, body, "tenant", (str,), None),
        )


@dataclass(frozen=True)
class BenchRow:
    """One benchmark's Table-1 measurements."""

    name: str
    txns: int
    tables_before: int
    tables_after: int
    ec: int
    at: int
    cc: int
    rr: int
    time_s: float
    repair_seconds: float
    plan_steps: int
    plan: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "txns": self.txns,
            "tables_before": self.tables_before,
            "tables_after": self.tables_after,
            "ec": self.ec,
            "at": self.at,
            "cc": self.cc,
            "rr": self.rr,
            "time_s": self.time_s,
            "repair_seconds": self.repair_seconds,
            "plan_steps": self.plan_steps,
            "plan": self.plan,
        }

    @classmethod
    def from_json(cls, data: dict) -> "BenchRow":
        kind = "bench_row"
        if not isinstance(data, dict):
            raise InvalidRequestError(f"{kind} must be a JSON object")
        _no_extras(kind, data, ("name", "txns", "tables_before",
                                "tables_after", "ec", "at", "cc", "rr",
                                "time_s", "repair_seconds", "plan_steps",
                                "plan"))
        return cls(
            name=_field(kind, data, "name", (str,), "", required=True),
            txns=_field(kind, data, "txns", (int,), 0),
            tables_before=_field(kind, data, "tables_before", (int,), 0),
            tables_after=_field(kind, data, "tables_after", (int,), 0),
            ec=_field(kind, data, "ec", (int,), 0),
            at=_field(kind, data, "at", (int,), 0),
            cc=_field(kind, data, "cc", (int,), 0),
            rr=_field(kind, data, "rr", (int,), 0),
            time_s=_field(kind, data, "time_s", (int, float), 0.0),
            repair_seconds=_field(kind, data, "repair_seconds",
                                  (int, float), 0.0),
            plan_steps=_field(kind, data, "plan_steps", (int,), 0),
            plan=_field(kind, data, "plan", (dict,), {}),
        )


@dataclass(frozen=True)
class BenchResult:
    """A bench sweep's rows plus the execution configuration used."""

    rows: Tuple[BenchRow, ...]
    search: str
    strategy: str
    elapsed_seconds: float

    kind = "bench_result"

    def to_json(self) -> dict:
        return {
            "version": SCHEMA_VERSION,
            "kind": self.kind,
            "rows": [r.to_json() for r in self.rows],
            "search": self.search,
            "strategy": self.strategy,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_json(cls, data: object) -> "BenchResult":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("rows", "search", "strategy",
                                    "elapsed_seconds"))
        rows = _field(cls.kind, body, "rows", (list,), [], required=True)
        return cls(
            rows=tuple(BenchRow.from_json(r) for r in rows),
            search=_field(cls.kind, body, "search", (str,), ""),
            strategy=_field(cls.kind, body, "strategy", (str,), ""),
            elapsed_seconds=_field(cls.kind, body, "elapsed_seconds",
                                   (int, float), 0.0),
        )


# ---------------------------------------------------------------------------
# protect (live repair)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LiveProtectRequest:
    """Compile a rewrite plan into live mutation rules and validate them.

    Live protection replays a corpus benchmark's transaction mix, so
    ``benchmark`` is required (a free-form ``source`` program has no
    workload to validate against).  ``plan`` -- a serialized
    :class:`~repro.repair.plan.RewritePlan` document -- protects with an
    externally produced plan; by default the benchmark's own greedy
    repair supplies it.  ``measure`` additionally runs the simulated
    overhead point (heavier; compare against ``BENCH_live.json``).
    """

    benchmark: str
    plan: Optional[dict] = None
    samples: int = 120
    seed: int = 11
    scale: int = 2
    measure: bool = False
    clients: int = 16
    tenant: Optional[str] = None

    kind = "live_protect_request"

    def to_json(self) -> dict:
        out = {
            "version": SCHEMA_VERSION,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "samples": self.samples,
            "seed": self.seed,
            "scale": self.scale,
            "measure": self.measure,
            "clients": self.clients,
        }
        if self.plan is not None:
            out["plan"] = self.plan
        if self.tenant is not None:
            out["tenant"] = self.tenant
        return out

    @classmethod
    def from_json(cls, data: object) -> "LiveProtectRequest":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("benchmark", "plan", "samples", "seed",
                                    "scale", "measure", "clients", "tenant"))
        samples = _field(cls.kind, body, "samples", (int,), 120)
        scale = _field(cls.kind, body, "scale", (int,), 2)
        clients = _field(cls.kind, body, "clients", (int,), 16)
        if samples <= 0:
            raise InvalidRequestError(f"{cls.kind}.samples must be positive")
        if scale <= 0:
            raise InvalidRequestError(f"{cls.kind}.scale must be positive")
        if clients <= 0:
            raise InvalidRequestError(f"{cls.kind}.clients must be positive")
        return cls(
            benchmark=_field(cls.kind, body, "benchmark", (str,), "",
                             required=True),
            plan=_field(cls.kind, body, "plan", (dict,), None),
            samples=samples,
            seed=_field(cls.kind, body, "seed", (int,), 11),
            scale=scale,
            measure=_field(cls.kind, body, "measure", (bool,), False),
            clients=clients,
            tenant=_field(cls.kind, body, "tenant", (str,), None),
        )


@dataclass(frozen=True)
class LiveProtectResult:
    """A live-protection rollout report: rules, differential, overhead.

    ``anomalies`` holds the four seeded weak-exploration counts
    (``original``/``static``/``target``/``live``; see
    :mod:`repro.live.validate` for why the enforcement *target* -- the
    pre-postprocess repaired program -- is the gated comparison).
    ``overhead`` is the simulated measurement document when the request
    asked for one, else absent.
    """

    benchmark: str
    rules: int
    identity_rules: int
    unsupported: int
    unsupported_steps: Tuple[dict, ...]
    serial_match: bool
    verdict_match: bool
    passed: bool
    samples: int
    seed: int
    scale: int
    anomalies: dict
    rule_summary: Tuple[dict, ...]
    overhead: Optional[dict] = None
    elapsed_seconds: float = 0.0

    kind = "live_protect_result"

    def to_json(self) -> dict:
        out = {
            "version": SCHEMA_VERSION,
            "kind": self.kind,
            "benchmark": self.benchmark,
            "rules": self.rules,
            "identity_rules": self.identity_rules,
            "unsupported": self.unsupported,
            "unsupported_steps": [dict(s) for s in self.unsupported_steps],
            "serial_match": self.serial_match,
            "verdict_match": self.verdict_match,
            "passed": self.passed,
            "samples": self.samples,
            "seed": self.seed,
            "scale": self.scale,
            "anomalies": self.anomalies,
            "rule_summary": [dict(r) for r in self.rule_summary],
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.overhead is not None:
            out["overhead"] = self.overhead
        return out

    @classmethod
    def from_json(cls, data: object) -> "LiveProtectResult":
        body = _check_envelope(data, cls.kind)
        _no_extras(cls.kind, body, ("benchmark", "rules", "identity_rules",
                                    "unsupported", "unsupported_steps",
                                    "serial_match", "verdict_match", "passed",
                                    "samples", "seed", "scale", "anomalies",
                                    "rule_summary", "overhead",
                                    "elapsed_seconds"))
        unsupported_steps = _field(cls.kind, body, "unsupported_steps",
                                   (list,), [])
        rule_summary = _field(cls.kind, body, "rule_summary", (list,), [])
        for name, value in (("unsupported_steps", unsupported_steps),
                            ("rule_summary", rule_summary)):
            if any(not isinstance(v, dict) for v in value):
                raise InvalidRequestError(
                    f"{cls.kind}.{name} must be a list of objects"
                )
        return cls(
            benchmark=_field(cls.kind, body, "benchmark", (str,), "",
                             required=True),
            rules=_field(cls.kind, body, "rules", (int,), 0, required=True),
            identity_rules=_field(cls.kind, body, "identity_rules", (int,), 0),
            unsupported=_field(cls.kind, body, "unsupported", (int,), 0),
            unsupported_steps=tuple(unsupported_steps),
            serial_match=_field(cls.kind, body, "serial_match", (bool,), False,
                                required=True),
            verdict_match=_field(cls.kind, body, "verdict_match", (bool,),
                                 False, required=True),
            passed=_field(cls.kind, body, "passed", (bool,), False,
                          required=True),
            samples=_field(cls.kind, body, "samples", (int,), 0),
            seed=_field(cls.kind, body, "seed", (int,), 0),
            scale=_field(cls.kind, body, "scale", (int,), 0),
            anomalies=_field(cls.kind, body, "anomalies", (dict,), {},
                             required=True),
            rule_summary=tuple(rule_summary),
            overhead=_field(cls.kind, body, "overhead", (dict,), None),
            elapsed_seconds=_field(cls.kind, body, "elapsed_seconds",
                                   (int, float), 0.0),
        )


#: kind -> request class, for envelope-dispatched decoders (the service's
#: job endpoint accepts any request kind).
REQUEST_KINDS: Dict[str, Type] = {
    AnalyzeRequest.kind: AnalyzeRequest,
    RepairRequest.kind: RepairRequest,
    BenchRequest.kind: BenchRequest,
    LiveProtectRequest.kind: LiveProtectRequest,
}


def decode_request(data: object):
    """Decode any request envelope by its ``kind``."""
    if not isinstance(data, dict):
        raise InvalidRequestError("request body must be a JSON object")
    kind = data.get("kind")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(REQUEST_KINDS))
        raise InvalidRequestError(f"unknown request kind {kind!r} (known: {known})")
    return cls.from_json(data)
