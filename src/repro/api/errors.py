"""Façade-level errors: request decoding and service faults.

These extend the library hierarchy (:mod:`repro.errors`) with the
categories that only exist at the API boundary -- a malformed request
envelope, an unknown benchmark name, an unsupported schema version, a
job id that never existed.  Like every :class:`~repro.errors.ReproError`
they carry a stable machine-readable ``code``; additionally each class
maps to the HTTP status the service answers with (``http_status``), so
:mod:`repro.service` never invents status codes ad hoc.
"""

from __future__ import annotations

from repro.errors import BudgetExhaustedError, DeadlineExceededError, ReproError

__all__ = [
    "ApiError",
    "BackpressureError",
    "BudgetExhaustedError",
    "DeadlineExceededError",
    "InvalidRequestError",
    "JobCancelledError",
    "JobNotFoundError",
    "QueueFullError",
    "RateLimitedError",
    "RequestTooLargeError",
    "SchemaVersionError",
    "ServiceDrainingError",
    "TenantQueueFullError",
    "TenantRateLimitedError",
    "TenantSuspendedError",
    "UnknownBenchmarkError",
    "error_payload",
    "http_status_of",
]


class ApiError(ReproError):
    """Base class for errors raised at the façade boundary."""

    code = "api-error"
    http_status = 400


class InvalidRequestError(ApiError):
    """The request envelope is malformed: missing/extra fields, a field
    of the wrong type, or a value outside its enum."""

    code = "invalid-request"


class SchemaVersionError(InvalidRequestError):
    """The request names a schema version this server does not speak."""

    code = "unsupported-version"


class UnknownBenchmarkError(InvalidRequestError):
    """The request names a corpus benchmark that does not exist."""

    code = "unknown-benchmark"


class JobNotFoundError(ApiError):
    """``GET /v1/jobs/<id>`` for an id that was never issued (or whose
    row aged out of the job store's retention window)."""

    code = "job-not-found"
    http_status = 404


class BackpressureError(ApiError):
    """Base class for admission-control refusals (the service is
    protecting itself, not blaming the request).  ``retry_after`` is the
    suggested client backoff in seconds; the HTTP layer sends it as a
    ``Retry-After`` header."""

    code = "backpressure"
    http_status = 429

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = retry_after


class QueueFullError(BackpressureError):
    """``POST /v1/jobs`` while the durable queue already holds
    ``max_queue_depth`` waiting jobs: the work is refused, not silently
    enqueued into an unbounded backlog."""

    code = "queue-full"


class RateLimitedError(BackpressureError):
    """The per-client token bucket is empty; retry after the indicated
    backoff."""

    code = "rate-limited"


class TenantQueueFullError(QueueFullError):
    """The queue holds this *tenant's* full ``max_queued_per_tenant``
    share; other tenants' submissions are still admitted.  Tenant-scoped
    refusals subclass their global counterparts so clients dispatching
    on the class hierarchy keep working."""

    code = "tenant-queue-full"


class TenantRateLimitedError(RateLimitedError):
    """The per-tenant token bucket (keyed by the ``X-Repro-Tenant``
    identity, not the client address) is empty."""

    code = "tenant-rate-limited"


class TenantSuspendedError(BackpressureError):
    """The tenant is shedding load: either an operator suspended it, or
    its per-tenant circuit breaker opened because its recent jobs keep
    failing.  ``Retry-After`` carries the breaker cooldown."""

    code = "tenant-suspended"


class RequestTooLargeError(ApiError):
    """The request body exceeds the service's size cap; it was refused
    before parsing."""

    code = "request-too-large"
    http_status = 413


class ServiceDrainingError(BackpressureError):
    """The server received SIGTERM and is finishing in-flight work; it
    admits no new mutating requests.  Retry against a live instance."""

    code = "draining"
    http_status = 503


class JobCancelledError(ApiError):
    """Internal control-flow signal: a running job's ``cancel_requested``
    flag was observed by the worker's progress hook.

    Raised *from inside* a progress callback (the events contract makes
    a raising callback abort the operation -- that is the designed
    cancellation lever) and caught by ``service.workers.execute_job``,
    which lands the job in the terminal ``cancelled`` state.  Clients
    never see this on the sync endpoints.
    """

    code = "job-cancelled"
    http_status = 409


def http_status_of(exc: BaseException) -> int:
    """The HTTP status an error serializes under: ``ApiError`` subclasses
    declare theirs, a deadline cut is a timeout (504), any other library
    error is the client's fault (400), anything else is ours (500)."""
    if isinstance(exc, ApiError):
        return exc.http_status
    if isinstance(exc, DeadlineExceededError):
        return 504
    if isinstance(exc, ReproError):
        return 400
    return 500


def error_payload(exc: BaseException) -> dict:
    """The wire form of any exception (``schemas/error.v1.json``);
    non-library errors are masked behind a generic ``internal-error``."""
    if isinstance(exc, ReproError):
        return exc.to_payload()
    return {
        "error": {
            "code": "internal-error",
            "message": f"{type(exc).__name__}: {exc}",
        }
    }
