"""The one front door: a :class:`Workspace` owning corpus, cache, and
execution strategy.

Every supported way of invoking the system -- the ``repro`` package
shortcuts (:func:`repro.detect_anomalies` / :func:`repro.repair`), the
experiment drivers under :mod:`repro.exp`, the CLI, and the HTTP service
-- is a thin wrapper over a workspace.  The workspace owns exactly the
state worth sharing between calls:

- one resolved oracle **execution strategy** (for the warm strategies
  that means the long-lived :class:`~repro.analysis.oracle.OracleSession`
  pools / shard workers survive across requests);
- one **memo cache** (optionally a
  :class:`~repro.analysis.pipeline.PersistentQueryCache` under
  ``cache_dir``, shared by every analysis the workspace runs);
- request counters and uptime for ``/v1/stats``.

Two API tiers coexist deliberately:

- the **object tier** -- :meth:`analyze_program` / :meth:`repair_program`
  take and return library objects (:class:`~repro.lang.ast.Program`,
  :class:`~repro.analysis.oracle.AnalysisReport`,
  :class:`~repro.repair.engine.RepairReport`) for in-process callers;
- the **wire tier** -- :meth:`analyze` / :meth:`repair` / :meth:`bench`
  take and return the frozen, versioned dataclasses of
  :mod:`repro.api.types`, which is what the service serializes.

A workspace is thread-safe: calls serialize on an internal lock (the
solver sessions and memo cache are single-threaded structures; the
parallelism lives *inside* a strategy's worker processes, not across
API callers).  Results are independent of the execution strategy by
hard test gate, so any two workspaces agree on every verdict and plan.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.errors import InvalidRequestError, UnknownBenchmarkError
from repro.api.events import ProgressCallback, emit
from repro.api.types import (
    AnalyzeRequest,
    AnalyzeResult,
    BenchRequest,
    BenchResult,
    BenchRow,
    LiveProtectRequest,
    LiveProtectResult,
    PairData,
    RepairRequest,
    RepairResult,
)
from repro.analysis.consistency import EC, ConsistencyLevel, by_name
from repro.budget import Budget
from repro.errors import DeadlineExceededError

#: Strategy names the façade accepts (``None`` means :data:`DEFAULT_STRATEGY`).
STRATEGIES = (
    "serial",
    "cached",
    "parallel",
    "incremental",
    "parallel-incremental",
    "auto",
)

#: What a workspace runs when the caller does not choose: ``"auto"``
#: picks the fastest strategy for the host and records its pick.
DEFAULT_STRATEGY = "auto"


def requested_strategy(
    strategy: Optional[str],
    cache_dir: Optional[str] = None,
    workers: Optional[int] = None,
) -> Tuple[str, Optional[str]]:
    """The CLI/default strategy contract, in one place.

    Returns ``(effective_strategy, note)``.  The seed ``"serial"`` loop
    has no cache and no pool, so ``--cache-dir``/``--workers`` silently
    doing nothing under the *implicit* default would betray their
    contract: an unset strategy upgrades to ``"auto"`` (with a note
    saying so) whenever either flag is given.  An **explicit**
    ``"serial"`` is always respected -- the flags are then genuinely
    unused, the note says so, and the caller must not open a cache or a
    pool on their behalf.
    """
    flags = [
        flag
        for flag, value in (("--cache-dir", cache_dir), ("--workers", workers))
        if value
    ]
    if flags:
        joined = "/".join(flags)
        if strategy is None:
            return "auto", (
                f"note: {joined} needs a caching strategy; "
                "using --strategy auto (pass --strategy to override)"
            )
        if strategy == "serial":
            return "serial", (
                "note: --strategy serial runs the uncached, single-"
                f"threaded seed loop; {joined} ignored"
            )
    return strategy or "serial", None


@dataclass(frozen=True)
class WorkspaceConfig:
    """A picklable recipe for building a :class:`Workspace`.

    The multi-process service ships one of these to every worker
    process (:mod:`repro.service.workers`): the config crosses the
    process boundary, the workspace it :meth:`build`\\ s -- warm solver
    sessions, caches, locks -- never does.  Fields mirror the
    :class:`Workspace` constructor's keyword arguments; everything is a
    plain value, so a config is safe to pickle, hash into logs, or
    embed in an operator playbook.

    ``for_worker`` derives the per-worker variant: when a persistent
    ``cache_dir`` is set, each worker gets its own subdirectory
    (``<cache_dir>/worker-<i>``), because the sqlite memo cache batches
    writes in long transactions and is not built for concurrent
    writers.  Shard affinity makes the split cheap: worker *i* keeps
    seeing the same requests, so its private cache warms just as well.
    """

    strategy: str = DEFAULT_STRATEGY
    cache_dir: Optional[str] = None
    max_workers: Optional[int] = None
    search: str = "greedy"
    use_prefilter: bool = True
    distinct_args: bool = True

    def build(self) -> "Workspace":
        """Construct the workspace this config describes."""
        return Workspace(
            strategy=self.strategy,
            cache_dir=self.cache_dir,
            max_workers=self.max_workers,
            search=self.search,
            use_prefilter=self.use_prefilter,
            distinct_args=self.distinct_args,
        )

    def for_worker(self, index: int) -> "WorkspaceConfig":
        """The variant worker ``index`` should build (private cache
        subdirectory; everything else shared)."""
        if self.cache_dir is None:
            return self
        import dataclasses
        import os

        return dataclasses.replace(
            self, cache_dir=os.path.join(self.cache_dir, f"worker-{index}")
        )

    def for_tenant(self, tenant: str) -> "WorkspaceConfig":
        """The variant serving ``tenant``: its own ``tenant-<id>`` cache
        subdirectory, so one tenant's persistent cache entries can
        neither serve nor poison another's.  Identity-free configs
        (``cache_dir=None``) have nothing durable to isolate and are
        returned unchanged."""
        if self.cache_dir is None:
            return self
        import dataclasses
        import os
        import re

        safe = re.sub(r"[^A-Za-z0-9._-]", "_", tenant) or "_"
        return dataclasses.replace(
            self, cache_dir=os.path.join(self.cache_dir, f"tenant-{safe}")
        )


class Workspace:
    """Shared execution context for analyze/repair/bench calls.

    ``strategy`` is a name from :data:`STRATEGIES` or a strategy
    *instance* (anything with ``run``/``close``); named strategies are
    resolved once and owned by the workspace (torn down on
    :meth:`close`), instances stay the caller's.  ``cache`` follows the
    same ownership rule; without one, a caching strategy gets a fresh
    memo cache -- persistent under ``cache_dir`` when given.

    ``strategy="serial"`` selects the seed oracle loop: no pipeline, no
    cache, no pool -- the reference configuration the differential tests
    compare everything else against.
    """

    def __init__(
        self,
        strategy: object = DEFAULT_STRATEGY,
        cache: Optional[object] = None,
        cache_dir: Optional[str] = None,
        max_workers: Optional[int] = None,
        search: object = "greedy",
        use_prefilter: bool = True,
        distinct_args: bool = True,
    ):
        from repro.analysis.pipeline import make_query_cache, resolve_strategy

        if isinstance(strategy, str) and strategy not in STRATEGIES:
            raise InvalidRequestError(
                f"unknown strategy {strategy!r} "
                f"(expected one of {', '.join(STRATEGIES)})"
            )
        self.search = search
        self.use_prefilter = use_prefilter
        self.distinct_args = distinct_args
        self.max_workers = max_workers
        self._serial = strategy == "serial"
        self._owns_runner = isinstance(strategy, str) and not self._serial
        self._owns_cache = False
        if self._serial:
            self._runner = None
            self.cache = None
        else:
            self._runner = (
                resolve_strategy(strategy, max_workers)
                if self._owns_runner
                else strategy
            )
            if cache is None:
                try:
                    cache = make_query_cache(cache_dir)
                except BaseException:
                    # A failed cache open (unwritable cache_dir) must not
                    # orphan the worker pool the line above spawned.
                    if self._owns_runner:
                        self._runner.close()
                    raise
                self._owns_cache = True
            self.cache = cache
        self._lock = threading.RLock()
        self._started = time.time()
        self._requests: Dict[str, int] = {
            "analyze": 0, "repair": 0, "bench": 0, "protect": 0,
        }
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def strategy_name(self) -> str:
        """The resolved strategy's reported name (``"serial"`` for the
        seed loop)."""
        if self._runner is None:
            return "serial"
        return getattr(self._runner, "name", type(self._runner).__name__)

    def close(self) -> None:
        """Release owned resources (worker pools, the persistent cache).
        Caller-provided strategy/cache instances are left running."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._owns_runner and self._runner is not None:
                self._runner.close()
            if self._owns_cache and self.cache is not None:
                self.cache.close()

    def __enter__(self) -> "Workspace":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- object tier -------------------------------------------------------

    def analyze_program(
        self,
        program,
        level: ConsistencyLevel = EC,
        use_prefilter: Optional[bool] = None,
        distinct_args: Optional[bool] = None,
        on_progress: Optional[ProgressCallback] = None,
        budget: Optional[Budget] = None,
    ):
        """Run the anomaly oracle; returns an
        :class:`~repro.analysis.oracle.AnalysisReport`."""
        with self._lock:
            self._requests["analyze"] += 1
        return self._analyze(
            program, level, use_prefilter, distinct_args, on_progress,
            budget=budget,
        )

    def _analyze(
        self,
        program,
        level: ConsistencyLevel = EC,
        use_prefilter: Optional[bool] = None,
        distinct_args: Optional[bool] = None,
        on_progress: Optional[ProgressCallback] = None,
        budget: Optional[Budget] = None,
    ):
        """Uncounted core of :meth:`analyze_program` (bench rows go
        through here so one bench request does not inflate the
        analyze/repair counters in ``/v1/stats``)."""
        from repro.analysis.oracle import AnomalyOracle

        with self._lock:
            oracle = AnomalyOracle(
                level,
                use_prefilter=self.use_prefilter
                if use_prefilter is None
                else use_prefilter,
                distinct_args=self.distinct_args
                if distinct_args is None
                else distinct_args,
                strategy="serial" if self._serial else self._runner,
                cache=self.cache,
                progress=on_progress,
                budget=budget,
            )
            return oracle.analyze(program)

    def analyze_program_levels(
        self,
        program,
        levels,
        use_prefilter: Optional[bool] = None,
        distinct_args: Optional[bool] = None,
        on_progress: Optional[ProgressCallback] = None,
        budget: Optional[Budget] = None,
    ):
        """Run the anomaly oracle at several consistency levels in one
        sweep; returns one report per level, in order.

        On a warm strategy every focus triple's levels are discharged
        as one incremental solve sequence (:meth:`~repro.analysis.
        pipeline.AnalysisPipeline.analyze_levels`); the seed serial loop
        simply analyzes level by level.  One call counts once per level
        in the ``/v1/stats`` analyze counter, matching what it
        replaces."""
        levels = list(levels)
        with self._lock:
            self._requests["analyze"] += len(levels)
        return self._analyze_levels(
            program, levels, use_prefilter, distinct_args, on_progress,
            budget=budget,
        )

    def _analyze_levels(
        self,
        program,
        levels,
        use_prefilter: Optional[bool] = None,
        distinct_args: Optional[bool] = None,
        on_progress: Optional[ProgressCallback] = None,
        budget: Optional[Budget] = None,
    ):
        """Uncounted core of :meth:`analyze_program_levels` (bench rows
        go through here)."""
        if self._serial:
            return [
                self._analyze(
                    program, level, use_prefilter, distinct_args,
                    on_progress, budget=budget,
                )
                for level in levels
            ]
        from repro.analysis.oracle import AnomalyOracle

        with self._lock:
            oracle = AnomalyOracle(
                levels[0] if levels else EC,
                use_prefilter=self.use_prefilter
                if use_prefilter is None
                else use_prefilter,
                distinct_args=self.distinct_args
                if distinct_args is None
                else distinct_args,
                strategy=self._runner,
                cache=self.cache,
                progress=on_progress,
                budget=budget,
            )
            return oracle.analyze_levels(program, levels)

    def repair_program(
        self,
        program,
        level: ConsistencyLevel = EC,
        search: object = None,
        use_prefilter: Optional[bool] = None,
        on_progress: Optional[ProgressCallback] = None,
        budget: Optional[Budget] = None,
        **search_options,
    ):
        """Run the full repair pipeline; returns a
        :class:`~repro.repair.engine.RepairReport`."""
        with self._lock:
            self._requests["repair"] += 1
        return self._repair(
            program, level, search, use_prefilter, on_progress,
            budget=budget, **search_options
        )

    def _repair(
        self,
        program,
        level: ConsistencyLevel = EC,
        search: object = None,
        use_prefilter: Optional[bool] = None,
        on_progress: Optional[ProgressCallback] = None,
        budget: Optional[Budget] = None,
        **search_options,
    ):
        """Uncounted core of :meth:`repair_program`."""
        from repro.repair.engine import RepairEngine

        with self._lock:
            engine = RepairEngine(
                level,
                self.use_prefilter if use_prefilter is None else use_prefilter,
                strategy="serial" if self._serial else self._runner,
                cache=self.cache,
                search=self.search if search is None else search,
                max_workers=self.max_workers,
                progress=on_progress,
                budget=budget,
                **search_options,
            )
            # The engine borrowed the workspace's runner/cache; nothing
            # to tear down here -- close() owns that.
            return engine.repair(program)

    def protect_program(
        self,
        benchmark,
        plan=None,
        *,
        samples: int = 120,
        seed: int = 11,
        scale: int = 2,
        measure: bool = False,
        clients: int = 16,
        on_progress: Optional[ProgressCallback] = None,
    ):
        """Compile a rewrite plan into live mutation rules and run the
        live-vs-static differential (:mod:`repro.live`).

        ``benchmark`` is a corpus name or Benchmark; ``plan`` an
        optional :class:`~repro.repair.plan.RewritePlan` (the
        benchmark's own repair -- through this workspace's strategy --
        supplies it by default).  Returns ``(ruleset, verdict,
        overhead)``: the compiled :class:`~repro.live.rules.RuleSet`,
        the :class:`~repro.live.validate.BenchmarkVerdict`, and an
        :class:`~repro.live.overhead.OverheadMeasurement` when
        ``measure`` is set (else ``None``).
        """
        from repro.live import compile_plan, measure_overhead, validate_benchmark

        with self._lock:
            self._requests["protect"] += 1
        if isinstance(benchmark, str):
            benchmark = self._resolve_benchmarks((benchmark,))[0]
        program = benchmark.program()
        if plan is None:
            plan = self._repair(program, on_progress=on_progress).plan
        emit(on_progress, "protect.compile", benchmark=benchmark.name,
             steps=len(plan))
        ruleset = compile_plan(program, plan)
        emit(on_progress, "protect.validate", benchmark=benchmark.name,
             rules=len(ruleset.rules),
             unsupported=len(ruleset.unsupported), samples=samples)
        verdict = validate_benchmark(
            benchmark, plan=plan, samples=samples, seed=seed, scale=scale
        )
        overhead = None
        if measure:
            emit(on_progress, "protect.measure", benchmark=benchmark.name,
                 clients=clients)
            overhead = measure_overhead(benchmark, clients=clients)
        emit(on_progress, "protect.done", benchmark=benchmark.name,
             passed=verdict.passed)
        return ruleset, verdict, overhead

    # -- wire tier ---------------------------------------------------------

    def analyze(
        self,
        request: AnalyzeRequest,
        on_progress: Optional[ProgressCallback] = None,
    ) -> AnalyzeResult:
        program, _ = self._resolve_program(
            request.source, request.benchmark, request.kind
        )
        try:
            report = self.analyze_program(
                program,
                level=_level(request.level),
                use_prefilter=request.use_prefilter,
                distinct_args=request.distinct_args,
                on_progress=on_progress,
                budget=Budget.start(request.deadline_ms, request.budget),
            )
        except DeadlineExceededError as exc:
            raise _with_partial(exc)
        return AnalyzeResult.from_report(report)

    def repair(
        self,
        request: RepairRequest,
        on_progress: Optional[ProgressCallback] = None,
    ) -> RepairResult:
        program, _ = self._resolve_program(
            request.source, request.benchmark, request.kind
        )
        if request.plan is not None:
            from repro.repair.engine import replay_plan
            from repro.repair.plan import RewritePlan

            with self._lock:
                self._requests["repair"] += 1
                emit(on_progress, "search.start", mode="replay",
                     steps=len(request.plan.get("steps", [])))
                report = replay_plan(program, RewritePlan.from_json(request.plan))
                emit(on_progress, "search.done", mode="replay",
                     steps=len(report.plan))
            return RepairResult.from_report(report, strategy="replay")
        try:
            report = self.repair_program(
                program,
                level=_level(request.level),
                search=request.search,
                use_prefilter=request.use_prefilter,
                on_progress=on_progress,
                budget=Budget.start(request.deadline_ms, request.budget),
            )
        except DeadlineExceededError as exc:
            raise _with_partial(exc)
        return RepairResult.from_report(report, strategy=self.strategy_name)

    def protect(
        self,
        request: LiveProtectRequest,
        on_progress: Optional[ProgressCallback] = None,
    ) -> LiveProtectResult:
        start = time.perf_counter()
        bench = self._resolve_benchmarks((request.benchmark,))[0]
        plan = None
        if request.plan is not None:
            from repro.repair.plan import RewritePlan

            plan = RewritePlan.from_json(request.plan)
        ruleset, verdict, overhead = self.protect_program(
            bench,
            plan,
            samples=request.samples,
            seed=request.seed,
            scale=request.scale,
            measure=request.measure,
            clients=request.clients,
            on_progress=on_progress,
        )
        # The summary rows come from the compiled rule set (zeroed
        # counters); splice in the validation run's counters so the wire
        # document shows what actually fired.
        summary = []
        for row in ruleset.summary():
            row.update(verdict.counters.get(f"{row['txn']}/{row['label']}", {}))
            summary.append(row)
        return LiveProtectResult(
            benchmark=bench.name,
            rules=verdict.rules,
            identity_rules=verdict.identity_rules,
            unsupported=verdict.unsupported,
            unsupported_steps=tuple(u.to_json() for u in ruleset.unsupported),
            serial_match=verdict.serial_match,
            verdict_match=verdict.verdict_match,
            passed=verdict.passed,
            samples=request.samples,
            seed=request.seed,
            scale=request.scale,
            anomalies={
                "original": verdict.original.to_json(),
                "static": verdict.static.to_json(),
                "target": verdict.target.to_json(),
                "live": verdict.live.to_json(),
            },
            rule_summary=tuple(summary),
            overhead=overhead.to_json() if overhead is not None else None,
            elapsed_seconds=round(time.perf_counter() - start, 6),
        )

    def bench(
        self,
        request: BenchRequest,
        on_progress: Optional[ProgressCallback] = None,
    ) -> BenchResult:
        """The Table-1 workload per benchmark: repair at EC plus the
        CC/RR sweeps, all through this workspace's shared strategy.

        Deliberately *not* one long critical section: each inner
        repair/analyze call takes the workspace lock on its own, so
        concurrent API callers (``/v1/stats``, a sync analyze) interleave
        between rows of a minutes-long sweep instead of queueing behind
        it."""
        benches = self._resolve_benchmarks(request.benchmarks)
        with self._lock:
            self._requests["bench"] += 1
        start = time.perf_counter()
        rows: List[BenchRow] = []
        from repro.analysis.consistency import CC, RR

        for bench in benches:
            row_start = time.perf_counter()
            program = bench.program()
            report = self._repair(
                program, search=request.search, on_progress=on_progress
            )
            cc, rr = self._analyze_levels(
                program, (CC, RR), on_progress=on_progress
            )
            rows.append(
                BenchRow(
                    name=bench.name,
                    txns=len(program.transactions),
                    tables_before=len(program.schemas),
                    tables_after=len(report.repaired_program.schemas),
                    ec=len(report.initial_pairs),
                    at=len(report.residual_pairs),
                    cc=cc.count,
                    rr=rr.count,
                    time_s=time.perf_counter() - row_start,
                    repair_seconds=report.elapsed_seconds,
                    plan_steps=len(report.plan),
                    plan=report.plan.to_json(),
                )
            )
            emit(on_progress, "bench.row", benchmark=bench.name,
                 ec=rows[-1].ec, at=rows[-1].at,
                 plan_steps=rows[-1].plan_steps)
        return BenchResult(
            rows=tuple(rows),
            search=request.search,
            strategy=self.strategy_name,
            elapsed_seconds=time.perf_counter() - start,
        )

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Operational counters for ``/v1/stats``: cache hit rates,
        warm-session/shard counters, request totals."""
        from repro import __version__

        with self._lock:
            cache = self.cache
            cache_stats = None
            if cache is not None:
                cache_stats = {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "hit_rate": round(cache.hit_rate, 4),
                    "persistent_hits": getattr(cache, "persistent_hits", 0),
                    "entries": len(cache),
                }
            sessions: Dict[str, int] = {}
            counters = getattr(self._runner, "counters", None)
            if callable(counters):
                sessions = dict(counters())
            pool = getattr(self._runner, "pool", None)
            if not sessions and pool is not None and hasattr(pool, "counters"):
                sessions = dict(pool.counters())
            return {
                "version": __version__,
                "strategy": self.strategy_name,
                "uptime_seconds": round(time.time() - self._started, 3),
                "requests": dict(self._requests),
                "cache": cache_stats,
                "sessions": sessions,
            }

    # -- helpers -----------------------------------------------------------

    def _resolve_program(self, source, benchmark, kind):
        """(program, label) from a request's source/benchmark fields."""
        if (source is None) == (benchmark is None):
            raise InvalidRequestError(
                f"{kind} needs exactly one of 'source' or 'benchmark'"
            )
        if benchmark is not None:
            bench = self._resolve_benchmarks((benchmark,))[0]
            return bench.program(), bench.name
        from repro.lang import parse_program

        return parse_program(source), "<source>"

    @staticmethod
    def _resolve_benchmarks(names: Tuple[str, ...]):
        from repro.corpus import ALL_BENCHMARKS, BY_NAME

        if not names:
            return list(ALL_BENCHMARKS)
        picked = []
        for name in names:
            if name not in BY_NAME:
                known = ", ".join(sorted(BY_NAME))
                raise UnknownBenchmarkError(
                    f"unknown benchmark {name!r} (known: {known})"
                )
            picked.append(BY_NAME[name])
        return picked


def _with_partial(exc: DeadlineExceededError) -> DeadlineExceededError:
    """Attach the wire form of a deadline error's partial result.

    The oracle tags the exception with library objects (AccessPair
    lists); the wire tier converts them once, here, so every surface
    (HTTP 504 body, CLI error report) shows the same document.
    """
    exc.partial = {
        "level": getattr(exc, "level", ""),
        "pairs": [
            PairData.from_pair(p).to_json()
            for p in getattr(exc, "partial_pairs", None) or []
        ],
        "pairs_checked": getattr(exc, "pairs_checked", 0),
        "pairs_total": getattr(exc, "pairs_total", 0),
    }
    return exc


def _level(name: str) -> ConsistencyLevel:
    try:
        return by_name(name)
    except (KeyError, ValueError) as exc:
        raise InvalidRequestError(f"unknown consistency level {name!r}") from exc
