"""Re-export of :mod:`repro.events` under the façade's namespace.

The event types live below the façade (:mod:`repro.events`) so the
low-level layers (:mod:`repro.analysis`, :mod:`repro.repair`) can emit
them without importing ``repro.api`` -- the documented layering puts
the façade above those layers, and this shim keeps
``from repro.api.events import ProgressEvent`` as the public spelling.
"""

from repro.events import Detail, ProgressCallback, ProgressEvent, emit

__all__ = ["Detail", "ProgressCallback", "ProgressEvent", "emit"]
