"""Progress events: how long-running façade calls narrate themselves.

Every :class:`~repro.api.workspace.Workspace` operation accepts an
``on_progress`` callback -- any callable taking one
:class:`ProgressEvent`.  The callback is threaded down through the
analysis pipeline (:class:`~repro.analysis.pipeline.AnalysisPipeline`)
and the plan search strategies (:mod:`repro.repair.search`), so a
caller -- the HTTP service's job queue, a CLI progress line, a test --
observes the same stream regardless of which surface invoked the work.

Stages are dotted names, coarse by design (a handful of events per
analysis, one per repaired pair -- never one per SAT query, which would
turn a hot loop into a callback storm):

- ``analyze.start`` / ``analyze.solved`` / ``analyze.done`` -- one
  oracle batch: queries planned, cache hits/misses, pairs found;
- ``search.start`` / ``search.pair`` / ``search.done`` -- the plan
  search: one event per anomalous pair with the action taken;
- ``bench.row`` -- one per benchmark in a bench sweep.

Callbacks run synchronously on the working thread; they must be cheap
and must not raise (a raising callback aborts the operation -- that is
deliberate, so a cancelling callback can stop a runaway job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

Detail = Dict[str, Union[str, int, float]]

#: The callback type every ``on_progress`` parameter accepts.
ProgressCallback = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """One narration step of a long-running operation."""

    stage: str
    detail: Detail = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"stage": self.stage, "detail": dict(self.detail)}

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"{self.stage}({body})"


def emit(progress: Optional[ProgressCallback], stage: str, **detail) -> None:
    """Fire ``progress`` if set; the one helper the library layers use,
    so a ``None`` callback costs a single falsy check."""
    if progress is not None:
        progress(ProgressEvent(stage=stage, detail=detail))
