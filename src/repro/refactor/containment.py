"""Concrete containment checking (the ``<=_V`` relation of Section 4.1).

Given materialised table states of an original and a refactored program
and the value correspondences accumulated by the refactoring, verify that
every field of every original record is recoverable:

- fields with an explicit correspondence are recomputed through theta and
  the fold alpha (``sum`` folds, ``any`` checks set membership, matching
  the paper's nondeterministic-choice semantics);
- all other fields must survive identically in a same-named table.

The property-based refinement tests (Theorem 4.1/4.2) execute original
and refactored programs side by side and call :func:`check_containment`
on the final states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.lang import ast
from repro.refactor.correspondence import Aggregator, ValueCorrespondence

# table -> key -> field -> value (matches DatabaseState.materialize()).
TableData = Dict[str, Dict[Tuple[Any, ...], Dict[str, Any]]]


@dataclass(frozen=True)
class ContainmentViolation:
    """One unrecoverable original field value."""

    table: str
    key: Tuple[Any, ...]
    field: str
    expected: Any
    got: Any
    reason: str

    def describe(self) -> str:
        return (
            f"{self.table}{self.key}.{self.field}: expected {self.expected!r}, "
            f"{self.reason} (got {self.got!r})"
        )


def check_containment(
    original_program: ast.Program,
    original: TableData,
    refactored: TableData,
    correspondences: List[ValueCorrespondence],
) -> List[ContainmentViolation]:
    """All containment violations; an empty list means contained."""
    by_source: Dict[Tuple[str, str], ValueCorrespondence] = {}
    for corr in correspondences:
        by_source[(corr.src_table, corr.src_field)] = corr

    violations: List[ContainmentViolation] = []
    for schema in original_program.schemas:
        table = original.get(schema.name, {})
        for key, fields in table.items():
            if fields.get("alive") is False:
                continue
            for field in schema.fields:
                expected = fields.get(field)
                corr = by_source.get((schema.name, field))
                if corr is not None:
                    violation = _check_corresponded(
                        schema, key, field, expected, refactored, corr
                    )
                elif field in schema.key:
                    # Key values are recoverable from any correspondence
                    # target (or the surviving table); skip when the table
                    # was dissolved but some field had a correspondence.
                    violation = _check_identity(
                        schema, key, field, expected, refactored,
                        required=not _table_dissolved(schema, refactored, by_source),
                    )
                else:
                    violation = _check_identity(
                        schema, key, field, expected, refactored, required=True
                    )
                if violation is not None:
                    violations.append(violation)
    return violations


def _table_dissolved(
    schema: ast.Schema,
    refactored: TableData,
    by_source: Dict[Tuple[str, str], ValueCorrespondence],
) -> bool:
    if schema.name in refactored:
        return False
    return any(t == schema.name for t, _ in by_source)


def _check_identity(
    schema: ast.Schema,
    key: Tuple[Any, ...],
    field: str,
    expected: Any,
    refactored: TableData,
    required: bool,
) -> Optional[ContainmentViolation]:
    table = refactored.get(schema.name)
    if table is None:
        if not required:
            return None
        return ContainmentViolation(
            schema.name, key, field, expected, None, "table missing in refactored state"
        )
    record = table.get(key)
    if record is None:
        return ContainmentViolation(
            schema.name, key, field, expected, None, "record missing"
        )
    got = record.get(field)
    if got != expected:
        return ContainmentViolation(
            schema.name, key, field, expected, got, "identity mismatch"
        )
    return None


def _check_corresponded(
    schema: ast.Schema,
    key: Tuple[Any, ...],
    field: str,
    expected: Any,
    refactored: TableData,
    corr: ValueCorrespondence,
) -> Optional[ContainmentViolation]:
    dst_records = refactored.get(corr.dst_table, {})
    dst_keys = corr.theta.theta(schema.key, key, dst_records)
    values = [dst_records[k].get(corr.dst_field) for k in dst_keys]
    if corr.alpha is Aggregator.SUM:
        got = sum(v for v in values if v is not None)
        baseline = expected if expected is not None else 0
        if got != baseline:
            return ContainmentViolation(
                schema.name, key, field, expected, got, "sum fold mismatch"
            )
        return None
    # ANY: the original value must be obtainable as a choice from theta(r).
    if expected is None and not values:
        return None
    if not dst_keys:
        # The appendix's containment definition ties record presence to
        # theta(r) being non-empty: when the last referencing target row
        # moves away, the source record dissolves from the reconstruction
        # rather than violating containment.  (A real deployment would
        # keep a tombstone; the paper's formal model does not.)
        return None
    if expected not in values:
        return ContainmentViolation(
            schema.name, key, field, expected, values, "value not among theta(r) copies"
        )
    return None
