"""Data migration from an original database to a refactored layout.

A refactoring changes where values live; to execute the original and
refactored programs side by side (refinement tests, the performance
study) the initial population must be migrated along the same value
correspondences:

- **redirect** rewrites copy each moved field's value into every target
  record that theta maps the source record to;
- **logger** rewrites seed the logging table with one initial record per
  source record carrying the field's starting value (so the program-level
  ``sum`` reconstructs it).

Tables absent from the refactored program's schema list are dropped.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple, Union

from repro.errors import RefactoringError
from repro.lang import ast
from repro.refactor.logger import LoggerRewrite
from repro.refactor.redirect import RedirectRewrite
from repro.semantics.state import Database

Rewrite = Union[RedirectRewrite, LoggerRewrite]


def migrate_database(
    original_db: Database,
    refactored_program: ast.Program,
    rewrites: List[Rewrite],
) -> Database:
    """Build an initial database for ``refactored_program`` whose state is
    contained in (recoverable from) ``original_db``."""
    # Working copy of plain table data keyed the same way as Database.
    data: Dict[str, Dict[Tuple[Any, ...], Dict[str, Any]]] = {
        table: {k: dict(v) for k, v in records.items()}
        for table, records in original_db.tables.items()
    }
    src_program = original_db.program
    for rewrite in rewrites:
        if isinstance(rewrite, RedirectRewrite):
            _migrate_redirect(data, src_program, rewrite)
        elif isinstance(rewrite, LoggerRewrite):
            _migrate_logger(data, src_program, rewrite)
        else:
            raise RefactoringError(f"unknown rewrite {rewrite!r}")

    out = Database(refactored_program)
    for schema in refactored_program.schemas:
        for key, fields in data.get(schema.name, {}).items():
            out.insert(
                schema.name,
                **{f: fields.get(f) for f in schema.fields},
            )
    return out


def _migrate_redirect(
    data: Dict[str, Dict[Tuple[Any, ...], Dict[str, Any]]],
    src_program: ast.Program,
    rewrite: RedirectRewrite,
) -> None:
    src_schema = src_program.schema(rewrite.src_table)
    theta = rewrite.theta.map()
    fmap = rewrite.fields()
    src_records = data.get(rewrite.src_table, {})
    dst_records = data.setdefault(rewrite.dst_table, {})
    # Index source records by key for the reverse lookup.
    for dst_key, dst_fields in dst_records.items():
        src_key = tuple(
            dst_fields.get(theta[k]) for k in src_schema.key
        )
        src_fields = src_records.get(src_key)
        for f, target in fmap.items():
            if f in src_schema.key:
                continue
            dst_fields[target] = None if src_fields is None else src_fields.get(f)


def _migrate_logger(
    data: Dict[str, Dict[Tuple[Any, ...], Dict[str, Any]]],
    src_program: ast.Program,
    rewrite: LoggerRewrite,
) -> None:
    src_schema = src_program.schema(rewrite.src_table)
    src_records = data.get(rewrite.src_table, {})
    log_records: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for i, (src_key, fields) in enumerate(sorted(src_records.items(), key=repr)):
        log_id = f"init-{i}"
        log_key = src_key + (log_id,)
        record = {k: v for k, v in zip(src_schema.key, src_key)}
        record["log_id"] = log_id
        record[rewrite.log_field] = fields.get(rewrite.field)
        log_records[log_key] = record
    data[rewrite.log_table] = log_records
