"""The logger rule (Section 4.2.2): turn updates into log inserts.

A :class:`LoggerRewrite` retargets one numeric field of a source schema
to a fresh *logging schema* whose primary key extends the source key with
a ``log_id``.  Every increment-style update of the field becomes an
insert of the increment; every read becomes a program-level ``sum`` over
the matching log records:

    UPDATE R SET f = at_1(x.f) + e WHERE phi
      ==>  INSERT INTO Log_R (k = phi[k]_exp, log_id = uuid(), f_log = e)

    at_1(x.f)  ==>  sum(x.f_log)      (x now selected from Log_R)

The transformation removes the write-write race on ``f``: concurrent
increments insert distinct fresh records (uuid keys never collide), so
both survive under any consistency level -- the functional-update idea
of Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import RefactoringError
from repro.lang import ast
from repro.lang.validate import well_formed_where
from repro.refactor.correspondence import (
    Aggregator,
    RecordCorrespondence,
    ValueCorrespondence,
)

LOG_ID_FIELD = "log_id"


@dataclass(frozen=True)
class LoggerRewrite:
    """Log-table refactoring of one source field."""

    src_table: str
    field: str
    log_table: str
    log_field: str

    def theta(self, program: ast.Program) -> RecordCorrespondence:
        src = program.schema(self.src_table)
        return RecordCorrespondence(
            src_table=self.src_table,
            dst_table=self.log_table,
            key_map=tuple((k, k) for k in src.key),
        )

    def correspondence(self, program: ast.Program) -> ValueCorrespondence:
        return ValueCorrespondence(
            src_table=self.src_table,
            dst_table=self.log_table,
            src_field=self.field,
            dst_field=self.log_field,
            theta=self.theta(program),
            alpha=Aggregator.SUM,
        )


def build_logger(program: ast.Program, src_table: str, field: str) -> LoggerRewrite:
    """Name the logging schema following the paper's convention
    (``COURSE_CO_ST_CNT_LOG`` for ``COURSE.co_st_cnt``)."""
    base = f"{src_table}_{field.upper()}_LOG"
    name = base
    suffix = 2
    while program.has_schema(name):
        name = f"{base}{suffix}"
        suffix += 1
    return LoggerRewrite(
        src_table=src_table,
        field=field,
        log_table=name,
        log_field=f"{field}_log",
    )


def increment_delta(expr: ast.Expr, var_field: Tuple[str, str]) -> Optional[ast.Expr]:
    """Extract ``delta`` from ``at_1(x.f) + delta`` (commuted and
    subtraction forms included); None when the expression is not an
    increment of the read value."""
    var, field = var_field
    def is_self_read(e: ast.Expr) -> bool:
        return (
            isinstance(e, ast.At)
            and e.var == var
            and e.field == field
            and e.index == ast.Const(1)
        )

    if isinstance(expr, ast.BinOp) and expr.op == "+":
        if is_self_read(expr.left):
            return expr.right
        if is_self_read(expr.right):
            return expr.left
    if isinstance(expr, ast.BinOp) and expr.op == "-" and is_self_read(expr.left):
        return ast.BinOp("-", ast.Const(0), expr.right)
    return None


def logger_applicable(program: ast.Program, rewrite: LoggerRewrite) -> Optional[str]:
    """Reason the rewrite cannot be applied, or None.

    Requirements over *every* access to the field in the program:

    - updates assign only this field, with a well-formed where clause and
      an increment-form expression reading the field through ``at_1`` of
      a variable selected from the source table;
    - selects retrieving the field have where clauses that are
      conjunctions of equalities over key fields only (the clause is
      transplanted verbatim onto the log schema's shared key prefix), and
      all expression uses of the field are ``at_1(x.f)`` or ``sum(x.f)``.
    """
    src = program.schema(rewrite.src_table)
    if rewrite.field in src.key:
        return f"{rewrite.src_table}.{rewrite.field} is a key field"
    if LOG_ID_FIELD in src.key:
        return f"{rewrite.src_table} is already a logging schema"
    for txn in program.transactions:
        select_vars: Set[str] = set()
        for cmd in ast.iter_db_commands(txn):
            if isinstance(cmd, ast.Select) and cmd.table == rewrite.src_table:
                if rewrite.field in cmd.selected_fields(src):
                    select_vars.add(cmd.var)
                    if not _key_only_where(src, cmd.where):
                        return (
                            f"{txn.name}/{cmd.label}: where clause uses "
                            "non-key fields"
                        )
            elif isinstance(cmd, ast.Update) and cmd.table == rewrite.src_table:
                written = set(cmd.written_fields)
                if rewrite.field not in written:
                    continue
                if written != {rewrite.field}:
                    return (
                        f"{txn.name}/{cmd.label}: update writes other fields "
                        "besides the logged one"
                    )
                if well_formed_where(src, cmd.where) is None:
                    return f"{txn.name}/{cmd.label}: where clause not well-formed"
                (field, expr), = cmd.assignments
                if not any(
                    increment_delta(expr, (v, rewrite.field)) is not None
                    for v in select_vars
                ):
                    return (
                        f"{txn.name}/{cmd.label}: assignment is not an "
                        "increment of the read value"
                    )
            elif isinstance(cmd, ast.Insert) and cmd.table == rewrite.src_table:
                # Inserts may initialise the field: a zero initialisation
                # is simply dropped (empty log sums to 0), a non-zero one
                # becomes a companion log insert.  Both are handled by the
                # rewrite, so no applicability restriction here.
                continue
        violation = _check_field_uses(program, txn, rewrite, select_vars)
        if violation:
            return violation
    return None


def _key_only_where(schema: ast.Schema, where: ast.Where) -> bool:
    conjuncts = ast.where_conjuncts(where)
    if conjuncts is None:
        return False
    return all(c.field in schema.key and c.op == "=" for c in conjuncts)


def _check_field_uses(
    program: ast.Program,
    txn: ast.Transaction,
    rewrite: LoggerRewrite,
    select_vars: Set[str],
) -> Optional[str]:
    """All expression uses of the field must be at_1 or sum accesses."""
    from repro.lang.traverse import iter_subexpressions

    def scan(expr: ast.Expr) -> Optional[str]:
        for sub in iter_subexpressions(expr):
            if isinstance(sub, ast.At):
                if sub.var in select_vars and sub.field == rewrite.field:
                    if sub.index != ast.Const(1):
                        return (
                            f"{txn.name}: at_k access (k != 1) to "
                            f"{rewrite.field} cannot be logged"
                        )
            if isinstance(sub, ast.Agg):
                if sub.var in select_vars and sub.field == rewrite.field:
                    if sub.func != "sum":
                        return (
                            f"{txn.name}: {sub.func} aggregation of "
                            f"{rewrite.field} cannot be logged"
                        )
        return None

    for cmd in ast.iter_db_commands(txn):
        if isinstance(cmd, ast.Update):
            for _, e in cmd.assignments:
                reason = scan(e)
                if reason:
                    return reason
        if isinstance(cmd, ast.Insert):
            for _, e in cmd.assignments:
                reason = scan(e)
                if reason:
                    return reason
    if txn.ret is not None:
        return scan(txn.ret)
    return None


def apply_logger(
    program: ast.Program, rewrite: LoggerRewrite
) -> Tuple[ast.Program, List[ValueCorrespondence]]:
    """Apply the rewrite; raises RefactoringError when inapplicable."""
    reason = logger_applicable(program, rewrite)
    if reason is not None:
        raise RefactoringError(f"logger not applicable: {reason}")
    src = program.schema(rewrite.src_table)
    # intro rho + intro rho.f: the logging schema.
    log_schema = ast.Schema(
        name=rewrite.log_table,
        fields=src.key + (LOG_ID_FIELD, rewrite.log_field),
        key=src.key + (LOG_ID_FIELD,),
    )
    program = program.with_schema(log_schema)
    new_txns = tuple(
        _rewrite_transaction(program, txn, rewrite, src)
        for txn in program.transactions
    )
    program = replace(program, transactions=new_txns)
    return program, [rewrite.correspondence(program)]


def _rewrite_transaction(
    program: ast.Program,
    txn: ast.Transaction,
    rewrite: LoggerRewrite,
    src: ast.Schema,
) -> ast.Transaction:
    # Variables whose select retrieved the logged field, mapped to the
    # replacement log-select variable.
    log_vars: Dict[str, str] = {}

    def rewrite_expr(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, (ast.BinOp, ast.Cmp, ast.BoolOp)):
            return replace(
                expr, left=rewrite_expr(expr.left), right=rewrite_expr(expr.right)
            )
        if isinstance(expr, ast.Not):
            return replace(expr, operand=rewrite_expr(expr.operand))
        if isinstance(expr, ast.At):
            if expr.var in log_vars and expr.field == rewrite.field:
                return ast.Agg("sum", log_vars[expr.var], rewrite.log_field)
            return replace(expr, index=rewrite_expr(expr.index))
        if isinstance(expr, ast.Agg):
            if expr.var in log_vars and expr.field == rewrite.field:
                return replace(
                    expr, var=log_vars[expr.var], field=rewrite.log_field
                )
            return expr
        return expr

    def rewrite_where(where: ast.Where) -> ast.Where:
        if isinstance(where, ast.WhereTrue):
            return where
        if isinstance(where, ast.WhereCond):
            return replace(where, expr=rewrite_expr(where.expr))
        if isinstance(where, ast.WhereBool):
            return replace(
                where, left=rewrite_where(where.left), right=rewrite_where(where.right)
            )
        raise RefactoringError(f"unknown where clause {where!r}")

    def walk(body: Sequence[ast.Command]) -> Tuple[ast.Command, ...]:
        out: List[ast.Command] = []
        for cmd in body:
            if isinstance(cmd, ast.Select) and cmd.table == rewrite.src_table:
                selected = cmd.selected_fields(src)
                if rewrite.field in selected:
                    others = tuple(f for f in selected if f != rewrite.field)
                    log_var = f"{cmd.var}_{rewrite.log_field}"
                    if others and set(others) - set(src.key):
                        # Keep a narrowed select for the remaining fields.
                        out.append(
                            replace(
                                cmd,
                                fields=others,
                                where=rewrite_where(cmd.where),
                            )
                        )
                        label = f"{cmd.label}L"
                    else:
                        label = cmd.label
                    out.append(
                        ast.Select(
                            var=log_var,
                            fields=(rewrite.log_field,),
                            table=rewrite.log_table,
                            where=rewrite_where(cmd.where),
                            label=label,
                        )
                    )
                    log_vars[cmd.var] = log_var
                else:
                    out.append(replace(cmd, where=rewrite_where(cmd.where)))
            elif isinstance(cmd, ast.Update) and cmd.table == rewrite.src_table and rewrite.field in cmd.written_fields:
                (field, expr), = cmd.assignments
                delta = None
                for var in list(log_vars) + [
                    v for v, _ in _select_bindings(txn) if v not in log_vars
                ]:
                    delta = increment_delta(expr, (var, rewrite.field))
                    if delta is not None:
                        break
                assert delta is not None  # guaranteed by applicability
                key_exprs = well_formed_where(src, cmd.where)
                assert key_exprs is not None
                assignments = tuple(
                    (k, rewrite_expr(e)) for k, e in sorted(key_exprs.items())
                ) + (
                    (LOG_ID_FIELD, ast.Uuid()),
                    (rewrite.log_field, rewrite_expr(delta)),
                )
                out.append(
                    ast.Insert(
                        table=rewrite.log_table,
                        assignments=assignments,
                        label=cmd.label,
                    )
                )
            elif isinstance(cmd, ast.Update):
                assignments = tuple((f, rewrite_expr(e)) for f, e in cmd.assignments)
                out.append(
                    replace(cmd, assignments=assignments, where=rewrite_where(cmd.where))
                )
            elif isinstance(cmd, ast.Insert):
                assignments = tuple((f, rewrite_expr(e)) for f, e in cmd.assignments)
                if cmd.table == rewrite.src_table and rewrite.field in cmd.written_fields:
                    init_value = dict(assignments)[rewrite.field]
                    kept = tuple(
                        (f, e) for f, e in assignments if f != rewrite.field
                    )
                    out.append(replace(cmd, assignments=kept))
                    if init_value != ast.Const(0):
                        # Non-zero initialisation: seed the log so the sum
                        # reconstructs the starting value.
                        key_assignments = tuple(
                            (k, dict(assignments)[k]) for k in src.key
                        )
                        out.append(
                            ast.Insert(
                                table=rewrite.log_table,
                                assignments=key_assignments
                                + ((LOG_ID_FIELD, ast.Uuid()),
                                   (rewrite.log_field, init_value)),
                                label=f"{cmd.label}L",
                            )
                        )
                else:
                    out.append(replace(cmd, assignments=assignments))
            elif isinstance(cmd, ast.If):
                out.append(replace(cmd, cond=rewrite_expr(cmd.cond), body=walk(cmd.body)))
            elif isinstance(cmd, ast.Iterate):
                out.append(replace(cmd, count=rewrite_expr(cmd.count), body=walk(cmd.body)))
            else:
                out.append(cmd)
        return tuple(out)

    new_body = walk(txn.body)
    new_ret = rewrite_expr(txn.ret) if txn.ret is not None else None
    return replace(txn, body=new_body, ret=new_ret)


def _select_bindings(txn: ast.Transaction) -> List[Tuple[str, str]]:
    out = []
    for cmd in ast.iter_db_commands(txn):
        if isinstance(cmd, ast.Select):
            out.append((cmd.var, cmd.label))
    return out
