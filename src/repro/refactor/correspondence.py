"""Value correspondences (Section 4.1).

A value correspondence ``(R, R', f, f', theta, alpha)`` explains how to
recover field ``f`` of source schema ``R`` from field ``f'`` of target
schema ``R'``:

- the *record correspondence* ``theta`` maps a source record to the set
  of target records that carry its data.  Atropos only uses *lifted*
  correspondences (the paper's ``theta-hat``): the source primary key is
  matched against named target fields, so ``theta`` is representable as a
  field map and evaluable on concrete table instances;
- the *fold* ``alpha`` aggregates the values found in the target records
  (``any`` for plain relocation, ``sum`` for logging schemas).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Tuple


class Aggregator(enum.Enum):
    """The fold function alpha of a value correspondence."""

    ANY = "any"
    SUM = "sum"

    def fold(self, values: List[Any]) -> Any:
        if self is Aggregator.SUM:
            return sum(v for v in values if v is not None)
        # ANY: nondeterministic choice; concrete evaluation returns the
        # value set so callers can check membership (see containment).
        raise NotImplementedError("ANY is checked set-wise, not folded")


@dataclass(frozen=True)
class RecordCorrespondence:
    """The lifted theta-hat: source key field -> target field.

    ``theta(r)`` for a source record with key values ``(n_1, ..., n_k)``
    is the set of target records whose field ``key_map[f_i]`` equals
    ``n_i`` for every source key field ``f_i``.
    """

    src_table: str
    dst_table: str
    key_map: Tuple[Tuple[str, str], ...]

    def map(self) -> Mapping[str, str]:
        return dict(self.key_map)

    def theta(
        self,
        src_key_fields: Tuple[str, ...],
        src_key: Tuple[Any, ...],
        dst_records: Dict[Tuple[Any, ...], Dict[str, Any]],
    ) -> List[Tuple[Any, ...]]:
        """Evaluate theta(r) on a concrete target table instance."""
        key_map = self.map()
        want = {key_map[f]: v for f, v in zip(src_key_fields, src_key)}
        out = []
        for dst_key, fields in dst_records.items():
            if all(fields.get(g) == v for g, v in want.items()):
                out.append(dst_key)
        return out


@dataclass(frozen=True)
class ValueCorrespondence:
    """One value correspondence ``(R, R', f, f', theta, alpha)``."""

    src_table: str
    dst_table: str
    src_field: str
    dst_field: str
    theta: RecordCorrespondence
    alpha: Aggregator

    def describe(self) -> str:
        return (
            f"({self.src_table}, {self.dst_table}, {self.src_field}, "
            f"{self.dst_field}, theta-hat{dict(self.theta.key_map)}, "
            f"{self.alpha.value})"
        )
