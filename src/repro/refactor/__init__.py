"""Schema refactoring calculus (Section 4).

The three rule templates of Figure 8 are implemented as operations on
programs plus a set of :class:`~repro.refactor.correspondence.ValueCorrespondence`
records:

- ``intro rho``  -- :func:`repro.refactor.rules.intro_schema`;
- ``intro rho.f`` -- :func:`repro.refactor.rules.intro_field`;
- ``intro v``     -- the two instantiations of the rewrite ``[[.]]_v``:
  the **redirect** rule (:mod:`repro.refactor.redirect`, aggregator
  ``any``) and the **logger** rule (:mod:`repro.refactor.logger`,
  aggregator ``sum``).

:mod:`repro.refactor.containment` implements the containment relation
``<=_V`` on concrete table states, used by the property-based refinement
tests; :mod:`repro.refactor.migrate` converts initial databases to the
refactored layout so original and refactored programs can be executed
side by side.
"""

from repro.refactor.correspondence import (
    Aggregator,
    RecordCorrespondence,
    ValueCorrespondence,
)
from repro.refactor.redirect import RedirectRewrite, apply_redirect
from repro.refactor.logger import LoggerRewrite, apply_logger
from repro.refactor.rules import intro_field, intro_schema
from repro.refactor.containment import check_containment, ContainmentViolation
from repro.refactor.migrate import migrate_database

__all__ = [
    "Aggregator",
    "RecordCorrespondence",
    "ValueCorrespondence",
    "RedirectRewrite",
    "apply_redirect",
    "LoggerRewrite",
    "apply_logger",
    "intro_field",
    "intro_schema",
    "check_containment",
    "ContainmentViolation",
    "migrate_database",
]
