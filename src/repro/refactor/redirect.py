"""The redirect rule (Section 4.2.1): relocate fields between schemas.

A :class:`RedirectRewrite` moves a set of fields from a source schema
into a target schema along a lifted record correspondence theta-hat, and
rewrites every program access accordingly:

- ``SELECT f FROM R WHERE phi`` becomes ``SELECT f' FROM R' WHERE
  redirect(phi, theta-hat)`` where ``redirect`` conjoins
  ``this.theta-hat(k) = phi[k]_exp`` over the source key fields;
- ``UPDATE R SET f = e WHERE phi`` is redirected the same way;
- expressions over redirected result variables substitute the new field
  names (``[[at_1(x.f)]] = at_1(x.f')``).

Applicability (checked before any rewriting): every program command that
touches a moved field must have a well-formed where clause -- a
conjunction of equalities covering the source schema's full primary key
-- because only single-record addressing can be re-expressed through
theta-hat.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import RefactoringError
from repro.lang import ast
from repro.lang.validate import well_formed_where
from repro.refactor.correspondence import (
    Aggregator,
    RecordCorrespondence,
    ValueCorrespondence,
)
from repro.refactor.rules import intro_field


@dataclass(frozen=True)
class RedirectRewrite:
    """A bundle of redirect-rule applications sharing one theta-hat.

    Attributes:
        src_table / dst_table: source and target schemas.
        field_map: source field -> target field.  Includes the source key
            fields, mapped to the theta-hat target fields, so ``SELECT *``
            results remain fully addressable after the rewrite.
        theta: the lifted record correspondence (source key field ->
            target field holding that key's value).
    """

    src_table: str
    dst_table: str
    field_map: Tuple[Tuple[str, str], ...]
    theta: RecordCorrespondence

    def fields(self) -> Mapping[str, str]:
        return dict(self.field_map)

    def moved_non_key_fields(self, program: ast.Program) -> List[str]:
        schema = program.schema(self.src_table)
        return [f for f, _ in self.field_map if f not in schema.key]

    def correspondences(self, program: ast.Program) -> List[ValueCorrespondence]:
        fmap = self.fields()
        return [
            ValueCorrespondence(
                src_table=self.src_table,
                dst_table=self.dst_table,
                src_field=f,
                dst_field=fmap[f],
                theta=self.theta,
                alpha=Aggregator.ANY,
            )
            for f in self.moved_non_key_fields(program)
        ]


def build_redirect(
    program: ast.Program, src_table: str, dst_table: str, fields: Sequence[str]
) -> Optional[RedirectRewrite]:
    """Construct a redirect moving ``fields`` of ``src_table`` into
    ``dst_table``, if the target declares reference fields covering the
    source's primary key; returns None when no theta-hat exists."""
    src = program.schema(src_table)
    dst = program.schema(dst_table)
    key_map: Dict[str, str] = {}
    # Forward references: a target field declares `ref src.key` (the
    # STUDENT.st_em_id -> EMAIL.em_id shape of the paper).
    for dst_field, (rtable, rfield) in dst.ref_map.items():
        if rtable == src_table and rfield in src.key:
            key_map.setdefault(rfield, dst_field)
    # Reverse references: the source's own key declares `ref dst.field`
    # (one-to-one keyed satellite tables, e.g. CHECKING.custid ref
    # ACCOUNTS.custid); the target field holding the key value is the
    # referenced field itself.
    for src_field, (rtable, rfield) in src.ref_map.items():
        if src_field in src.key and rtable == dst_table and rfield in dst.fields:
            key_map.setdefault(src_field, rfield)
    if set(key_map) != set(src.key):
        return None
    field_map: Dict[str, str] = dict(key_map)
    for f in fields:
        if f in src.key:
            continue
        field_map[f] = _target_field_name(dst, key_map, src, f)
    theta = RecordCorrespondence(
        src_table=src_table,
        dst_table=dst_table,
        key_map=tuple(sorted(key_map.items())),
    )
    return RedirectRewrite(
        src_table=src_table,
        dst_table=dst_table,
        field_map=tuple(sorted(field_map.items())),
        theta=theta,
    )


def _target_field_name(
    dst: ast.Schema, key_map: Mapping[str, str], src: ast.Schema, field: str
) -> str:
    """Pick a fresh target field name, preferring the paper's convention:
    ``st_em_id ref em_id`` + ``em_addr`` yields ``st_em_addr``."""
    ref_field = key_map[src.key[0]]
    src_key = src.key[0]
    candidate = None
    if ref_field.endswith(src_key):
        prefix = ref_field[: -len(src_key)]
        candidate = prefix + field
    if not candidate or candidate in dst.fields:
        candidate = f"{dst.name.lower()}_{field}"
    base = candidate
    suffix = 2
    while candidate in dst.fields:
        candidate = f"{base}{suffix}"
        suffix += 1
    return candidate


def redirect_applicable(
    program: ast.Program, rewrite: RedirectRewrite
) -> Optional[str]:
    """Return a reason the rewrite cannot be applied, or None if it can."""
    src = program.schema(rewrite.src_table)
    moved = set(rewrite.moved_non_key_fields(program))
    fmap = rewrite.fields()
    for txn in program.transactions:
        for cmd in ast.iter_db_commands(txn):
            if getattr(cmd, "table", None) != rewrite.src_table:
                continue
            if isinstance(cmd, ast.Select):
                accessed = set(cmd.selected_fields(src))
                if not (accessed & moved):
                    continue
                if not (accessed <= set(fmap)):
                    return (
                        f"{txn.name}/{cmd.label}: selects unmoved fields "
                        f"{sorted(accessed - set(fmap))}"
                    )
                if well_formed_where(src, cmd.where) is None:
                    return f"{txn.name}/{cmd.label}: where clause not well-formed"
            elif isinstance(cmd, ast.Update):
                written = set(cmd.written_fields)
                if not (written & moved):
                    continue
                if not (written <= moved):
                    return (
                        f"{txn.name}/{cmd.label}: updates unmoved fields "
                        f"{sorted(written - moved)}"
                    )
                if well_formed_where(src, cmd.where) is None:
                    return f"{txn.name}/{cmd.label}: where clause not well-formed"
            elif isinstance(cmd, ast.Insert):
                written = set(cmd.written_fields)
                if written & moved:
                    return f"{txn.name}/{cmd.label}: inserts into moved fields"
    return None


def apply_redirect(
    program: ast.Program, rewrite: RedirectRewrite
) -> Tuple[ast.Program, List[ValueCorrespondence]]:
    """Apply the rewrite; returns the refactored program and the value
    correspondences it introduces.  Raises
    :class:`~repro.errors.RefactoringError` when inapplicable."""
    reason = redirect_applicable(program, rewrite)
    if reason is not None:
        raise RefactoringError(f"redirect not applicable: {reason}")
    correspondences = rewrite.correspondences(program)
    # intro rho.f for each fresh target field.
    dst = program.schema(rewrite.dst_table)
    for corr in correspondences:
        if corr.dst_field not in program.schema(rewrite.dst_table).fields:
            program = intro_field(program, rewrite.dst_table, corr.dst_field)
    # Rewrite every transaction.
    new_txns = [
        _rewrite_transaction(program, txn, rewrite)
        for txn in program.transactions
    ]
    program = replace(program, transactions=tuple(new_txns))
    return program, correspondences


def _rewrite_transaction(
    program: ast.Program, txn: ast.Transaction, rewrite: RedirectRewrite
) -> ast.Transaction:
    src = program.schema(rewrite.src_table)
    moved = set(rewrite.moved_non_key_fields(program))
    fmap = rewrite.fields()
    theta = rewrite.theta.map()
    redirected_vars: Set[str] = set()

    def rewrite_expr(expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, (ast.BinOp, ast.Cmp, ast.BoolOp)):
            return replace(
                expr, left=rewrite_expr(expr.left), right=rewrite_expr(expr.right)
            )
        if isinstance(expr, ast.Not):
            return replace(expr, operand=rewrite_expr(expr.operand))
        if isinstance(expr, ast.At):
            expr = replace(expr, index=rewrite_expr(expr.index))
            if expr.var in redirected_vars and expr.field in fmap:
                return replace(expr, field=fmap[expr.field])
            return expr
        if isinstance(expr, ast.Agg):
            if expr.var in redirected_vars and expr.field in fmap:
                return replace(expr, field=fmap[expr.field])
            return expr
        return expr

    def rewrite_plain_where(where: ast.Where) -> ast.Where:
        if isinstance(where, ast.WhereTrue):
            return where
        if isinstance(where, ast.WhereCond):
            return replace(where, expr=rewrite_expr(where.expr))
        if isinstance(where, ast.WhereBool):
            return replace(
                where,
                left=rewrite_plain_where(where.left),
                right=rewrite_plain_where(where.right),
            )
        raise RefactoringError(f"unknown where clause {where!r}")

    def redirect_where(where: ast.Where) -> ast.Where:
        key_exprs = well_formed_where(src, where)
        assert key_exprs is not None  # guaranteed by applicability check
        conds = [
            ast.WhereCond(field=theta[k], op="=", expr=rewrite_expr(e))
            for k, e in sorted(key_exprs.items())
        ]
        return ast.make_conjunction(conds)

    def walk(body: Sequence[ast.Command]) -> Tuple[ast.Command, ...]:
        out: List[ast.Command] = []
        for cmd in body:
            if isinstance(cmd, ast.Select):
                accessed = set(cmd.selected_fields(src)) if cmd.table == rewrite.src_table else set()
                if cmd.table == rewrite.src_table and accessed & moved:
                    fields = tuple(
                        fmap[f] for f in cmd.selected_fields(src)
                    )
                    out.append(
                        replace(
                            cmd,
                            table=rewrite.dst_table,
                            fields=fields,
                            where=redirect_where(cmd.where),
                        )
                    )
                    redirected_vars.add(cmd.var)
                else:
                    out.append(replace(cmd, where=rewrite_plain_where(cmd.where)))
            elif isinstance(cmd, ast.Update):
                if cmd.table == rewrite.src_table and set(cmd.written_fields) & moved:
                    assignments = tuple(
                        (fmap[f], rewrite_expr(e)) for f, e in cmd.assignments
                    )
                    out.append(
                        replace(
                            cmd,
                            table=rewrite.dst_table,
                            assignments=assignments,
                            where=redirect_where(cmd.where),
                        )
                    )
                else:
                    assignments = tuple(
                        (f, rewrite_expr(e)) for f, e in cmd.assignments
                    )
                    out.append(
                        replace(
                            cmd,
                            assignments=assignments,
                            where=rewrite_plain_where(cmd.where),
                        )
                    )
            elif isinstance(cmd, ast.Insert):
                assignments = tuple(
                    (f, rewrite_expr(e)) for f, e in cmd.assignments
                )
                out.append(replace(cmd, assignments=assignments))
            elif isinstance(cmd, ast.If):
                out.append(
                    replace(cmd, cond=rewrite_expr(cmd.cond), body=walk(cmd.body))
                )
            elif isinstance(cmd, ast.Iterate):
                out.append(
                    replace(cmd, count=rewrite_expr(cmd.count), body=walk(cmd.body))
                )
            else:
                out.append(cmd)
        return tuple(out)

    new_body = walk(txn.body)
    new_ret = rewrite_expr(txn.ret) if txn.ret is not None else None
    return replace(txn, body=new_body, ret=new_ret)
