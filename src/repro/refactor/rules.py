"""The schema-extension rules ``intro rho`` and ``intro rho.f``.

These two rules only grow the schema component of a program; the
companion ``intro v`` rule (redirect/logger rewrites) changes the
transactions.  Kept as standalone functions so the repair engine and the
random-refactoring baseline (Appendix A.3) share one implementation.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import RefactoringError
from repro.lang import ast


def intro_schema(
    program: ast.Program,
    name: str,
    key: Tuple[str, ...],
    fields: Tuple[str, ...] = (),
) -> ast.Program:
    """``intro rho``: add a fresh schema to the program.

    The paper's rule adds an empty schema; since our :class:`Schema`
    requires a primary key, the key fields are supplied at creation and
    further fields arrive via :func:`intro_field`.
    """
    if program.has_schema(name):
        raise RefactoringError(f"schema {name} already exists")
    schema = ast.Schema(name=name, fields=key + fields, key=key)
    return program.with_schema(schema)


def intro_field(
    program: ast.Program,
    table: str,
    field: str,
    ref: Optional[Tuple[str, str]] = None,
) -> ast.Program:
    """``intro rho.f``: add a fresh (non-key) field to an existing schema."""
    if not program.has_schema(table):
        raise RefactoringError(f"no schema named {table}")
    schema = program.schema(table)
    if field in schema.fields:
        raise RefactoringError(f"{table}.{field} already exists")
    return program.replace_schema(schema.with_field(field, ref))
