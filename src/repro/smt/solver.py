"""A CDCL SAT solver.

Implements the standard modern architecture:

- literals are encoded as ``2*var`` (positive) / ``2*var + 1`` (negative),
  variables are dense non-negative integers allocated by the caller;
- unit propagation with two watched literals per clause;
- conflict analysis producing first-UIP learned clauses with
  non-chronological backjumping;
- exponential-moving-average variable activity (VSIDS flavour) with a
  binary-heap decision queue;
- Luby-sequence restarts;
- learned-clause deletion driven by clause activity.

The solver is deliberately dependency-free and deterministic: given the
same clause set it always makes the same decisions, which keeps the
anomaly detector's output stable across runs.

The solver is *incremental* in the MiniSat sense: clauses may be added
after prior :meth:`Solver.solve` calls without resetting any state, and
learned clauses, variable activity, and saved polarities all persist
across calls.  Retractable constraints use activation-literal groups:
:meth:`Solver.new_group` allocates a fresh activation variable, clauses
added with ``group=g`` are guarded by its negation, solving with ``g``
among the assumptions switches the group on, and
:meth:`Solver.retire_group` pins the activation variable false forever,
turning every clause of the group (including learned clauses derived
from them, which carry the guard literal) permanently inert.

Clause storage comes in two flavours, selected by the ``clause_db``
constructor argument (default :data:`DEFAULT_CLAUSE_DB`):

- ``"arena"`` -- clause literals live in one flat ``array('i')`` with
  (offset, length) headers in parallel lists; watcher lists and reason
  slots hold small integer clause ids, and propagation walks a
  ``memoryview`` over the literal arena.  ``_reduce_db`` marks its
  victims dead (length 0) and a compaction pass reclaims their arena
  storage once dead literals dominate, so long-lived warm solvers stop
  accreting garbage.
- ``"objects"`` -- the original per-clause ``_Clause`` objects,
  retained for one release as a differential oracle for the arena.

Both paths are decision-faithful transliterations of each other: same
watch order, same analysis traversal, same reduction order -- so they
return identical models and identical search statistics.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Sequence

from repro.budget import Budget
from repro.errors import SolverError
from repro.faults import failpoint

#: Default clause storage backend; ``"objects"`` keeps the historical
#: per-clause object path (scheduled for removal after one release).
DEFAULT_CLAUSE_DB = "arena"


def lit(var: int, positive: bool = True) -> int:
    """Encode a literal for ``var`` with the given polarity."""
    return 2 * var + (0 if positive else 1)


def neg(literal: int) -> int:
    """Negate an encoded literal."""
    return literal ^ 1


def lit_var(literal: int) -> int:
    return literal >> 1


def lit_sign(literal: int) -> bool:
    """True when the literal is positive."""
    return literal & 1 == 0


class SolverResult:
    """Outcome of a :meth:`Solver.solve` call.

    ``unknown`` is True when a :class:`~repro.budget.Budget` ran out
    before the search decided either way; ``sat`` is then False so the
    (budget-less) callers that truth-test the result keep their exact
    historical behaviour, and budget-aware callers must check
    ``unknown`` before trusting an UNSAT answer.
    """

    __slots__ = ("sat", "model", "unknown")

    def __init__(
        self,
        sat: bool,
        model: Optional[Dict[int, bool]] = None,
        unknown: bool = False,
    ):
        self.sat = sat
        self.model = model or {}
        self.unknown = unknown

    def __bool__(self) -> bool:
        return self.sat

    def value(self, var: int) -> bool:
        return self.model.get(var, False)


class _Clause:
    __slots__ = ("lits", "learned", "activity")

    def __init__(self, lits: List[int], learned: bool):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0


_UNASSIGNED = -1

#: Main-loop iterations between cooperative budget/failpoint checks.
#: Each iteration already does a full propagation pass, so one check
#: per 128 iterations is unmeasurable while still bounding how long a
#: solve can overrun its deadline (well under a millisecond).
_CHECK_EVERY = 128

#: Compaction threshold: reclaim arena storage once at least this many
#: literal slots are dead *and* the dead slots are the majority.  The
#: floor keeps tiny solvers from compacting on every reduction.
_COMPACT_MIN_DEAD = 1024


class Solver:
    """CDCL SAT solver over integer variables.

    Usage::

        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        s.add_clause([neg(lit(a))])
        result = s.solve()
        assert result.sat and result.value(b)

    ``branching`` selects the decision queue: ``"heap"`` (default) keeps
    unassigned variables in an indexed binary max-heap ordered by VSIDS
    activity, popped lazily at decision time; ``"linear"`` is the
    reference O(num_vars) scan.  Ties break toward the lowest variable
    index in both, so the two modes make identical decisions.

    ``clause_db`` selects the clause storage backend (see the module
    docstring): ``"arena"`` (default) or ``"objects"``.
    """

    def __new__(cls, branching: str = "heap", clause_db: Optional[str] = None):
        # `Solver(clause_db="objects")` transparently constructs the
        # object-backed sibling; explicit subclasses (tests probe the
        # backtracking hooks) always get the arena path they inherit.
        db = clause_db if clause_db is not None else DEFAULT_CLAUSE_DB
        if cls is Solver and db == "objects":
            return super().__new__(ObjectDbSolver)
        return super().__new__(cls)

    def __init__(
        self, branching: str = "heap", clause_db: Optional[str] = None
    ) -> None:
        if branching not in ("heap", "linear"):
            raise SolverError(f"unknown branching mode {branching!r}")
        db = clause_db if clause_db is not None else DEFAULT_CLAUSE_DB
        if db not in ("arena", "objects"):
            raise SolverError(f"unknown clause_db mode {db!r}")
        self.branching = branching
        self.clause_db = db
        self.num_vars = 0
        # Arena clause storage: all clause literals in one flat int
        # array; clause `cid` occupies _lits[_c_off[cid] : _c_off[cid] +
        # _c_len[cid]].  A length of 0 marks a deleted clause whose
        # storage is reclaimed by _compact().  self.clauses/self.learned
        # hold clause ids; so do watcher lists and reason slots.
        self._lits = array("i")
        self._c_off: List[int] = []
        self._c_len: List[int] = []
        self._c_act: List[float] = []
        self._c_learned: List[bool] = []
        self._dead_lits = 0
        self.clauses: List[int] = []
        self.learned: List[int] = []
        # watches[l] = clause ids currently watching literal l.
        self.watches: List[List[int]] = []
        # assigns[v] in {0 (false), 1 (true), _UNASSIGNED}.
        self.assigns: List[int] = []
        self.levels: List[int] = []
        self.reasons: List[Optional[int]] = []
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.prop_head = 0
        self.activity: List[float] = []
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.polarity: List[bool] = []
        # Indexed binary max-heap over unassigned variables (decision
        # queue).  heap holds variable indices; heap_pos[v] is v's slot
        # in heap, or -1 when absent.  Assigned variables are evicted
        # lazily at pop time and re-inserted on unassignment.
        self.heap: List[int] = []
        self.heap_pos: List[int] = []
        # Set when new variables arrived since the last bulk heap fill;
        # _cancel_until re-inserts unassigned variables itself, so the
        # O(V) fill only needs to run again after new_var().
        self._heap_dirty = True
        self._ok = True
        # Activation variables of live and retired clause groups.
        self._groups: set[int] = set()
        self._retired: set[int] = set()
        self._stats = {
            "decisions": 0,
            "propagations": 0,
            "conflicts": 0,
            "restarts": 0,
            "learned": 0,
            # Arena-era counters: watcher visits during propagation and
            # completed learned-DB reductions.
            "props": 0,
            "db_reductions": 0,
        }

    def stats(self) -> Dict[str, int]:
        """Snapshot of the cumulative solver counters.

        The counters accumulate over the solver's whole lifetime, so
        incremental consumers must take per-query deltas between
        snapshots (see :func:`stats_delta`) rather than reading the
        totals after each solve.

        Two entries are gauges rather than counters: ``arena_bytes``
        (current byte size of the literal arena, 0 on the object path)
        and ``learned_live`` (learned clauses currently in the DB).
        Their deltas measure growth between snapshots.
        """
        snapshot = dict(self._stats)
        snapshot["arena_bytes"] = self._arena_nbytes()
        snapshot["learned_live"] = len(self.learned)
        return snapshot

    def _arena_nbytes(self) -> int:
        return len(self._lits) * self._lits.itemsize

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its index."""
        v = self.num_vars
        self.num_vars = v + 1
        w = self.watches
        w.append([])
        w.append([])
        self.assigns.append(_UNASSIGNED)
        self.levels.append(0)
        self.reasons.append(None)
        self.activity.append(0.0)
        self.polarity.append(False)
        # Joined to the decision heap in bulk at the next solve() call;
        # per-variable insertion here would cost O(V log V) per problem.
        self.heap_pos.append(-1)
        self._heap_dirty = True
        return v

    def new_group(self) -> int:
        """Allocate an activation-literal clause group.

        Returns the group id (the index of its activation variable).
        Clauses added with ``group=g`` are only enforced while ``g`` is
        switched on -- pass :meth:`group_literal` ``(g)`` among the
        ``solve`` assumptions -- and can be permanently dropped with
        :meth:`retire_group`.
        """
        g = self.new_var()
        self._groups.add(g)
        return g

    def group_literal(self, group: int) -> int:
        """The assumption literal that activates ``group``."""
        if group not in self._groups:
            raise SolverError(f"unknown clause group {group}")
        return lit(group, True)

    def retire_group(self, group: int) -> None:
        """Permanently deactivate ``group``.

        Pins the activation variable false at the root, so every clause
        of the group -- original or learned from it -- is satisfied by
        its guard literal and drops out of all future solving.  Retiring
        is idempotent; clauses added to a retired group are no-ops.
        """
        if group not in self._groups:
            raise SolverError(f"unknown clause group {group}")
        if group in self._retired:
            return
        self._retired.add(group)
        self.add_clause([lit(group, False)])

    def is_retired(self, group: int) -> bool:
        return group in self._retired

    def add_clause(self, literals: Iterable[int], group: Optional[int] = None) -> None:
        """Add a clause (a disjunction of encoded literals).

        With ``group``, the clause is guarded by the group's activation
        literal: it participates in solving only when the group is among
        the activated assumptions, and :meth:`retire_group` discards it.
        """
        if not self._ok:
            return
        if group is not None:
            if group not in self._groups:
                raise SolverError(f"unknown clause group {group}")
            literals = list(literals) + [lit(group, False)]
        seen: Dict[int, bool] = {}
        lits: List[int] = []
        for l in literals:
            v = lit_var(l)
            if v < 0 or v >= self.num_vars:
                raise SolverError(f"literal {l} references unallocated variable {v}")
            if l in seen:
                continue
            if neg(l) in seen:
                return  # Tautology: trivially satisfied.
            seen[l] = True
            lits.append(l)
        if not lits:
            self._ok = False
            return
        self.add_clause_unchecked(lits)

    def add_clause_unchecked(self, lits: List[int]) -> None:
        """Add a non-empty clause already known to be duplicate-free,
        tautology-free and within the allocated variable range.

        The Tseitin emitters produce exactly such clauses, so this skips
        :meth:`add_clause`'s screening passes; ``add_clause`` delegates
        here after screening, so the two paths share the top-level
        simplification (dropping clauses satisfied at level 0 and
        falsified literals) and clause installation.

        Clauses may be added after prior ``solve`` calls: any leftover
        search state is first rolled back to the root level so the
        watched-literal invariants hold for the new clause.
        """
        if not self._ok:
            return
        if self.trail_lim:
            self._cancel_until(0)
        # Root simplification and installation inlined (no _value /
        # _install_clause calls): this is the single hottest solver
        # entry point -- every Tseitin-emitted clause lands here.
        assigns = self.assigns
        filtered = []
        app = filtered.append
        for l in lits:
            a = assigns[l >> 1]
            if a == _UNASSIGNED:
                app(l)
            elif (a ^ (l & 1)) == 1:
                return
            # else: root-falsified literal, dropped
        n = len(filtered)
        if n == 0:
            self._ok = False
            return
        if n == 1:
            if not self._enqueue(filtered[0], None):
                self._ok = False
            return
        if self.clause_db == "arena":
            cid = len(self._c_off)
            self._c_off.append(len(self._lits))
            self._c_len.append(n)
            self._c_act.append(0.0)
            self._c_learned.append(False)
            self._lits.extend(filtered)
            self.watches[filtered[0] ^ 1].append(cid)
            self.watches[filtered[1] ^ 1].append(cid)
            self.clauses.append(cid)
        else:
            self.clauses.append(self._install_clause(filtered, learned=False))

    def _install_clause(self, lits: Sequence[int], learned: bool) -> int:
        """Append a clause to the arena and watch it; returns its id."""
        cid = len(self._c_off)
        self._c_off.append(len(self._lits))
        self._c_len.append(len(lits))
        self._c_act.append(0.0)
        self._c_learned.append(learned)
        self._lits.extend(lits)
        self.watches[lits[0] ^ 1].append(cid)
        self.watches[lits[1] ^ 1].append(cid)
        return cid

    def _clause_lits(self, cid: int) -> Sequence[int]:
        """Read-only copy of a clause's literals (cold paths only)."""
        base = self._c_off[cid]
        return self._lits[base : base + self._c_len[cid]]

    # ------------------------------------------------------------------
    # Assignment plumbing
    # ------------------------------------------------------------------

    def _value(self, literal: int) -> int:
        """1 true, 0 false, _UNASSIGNED unknown."""
        a = self.assigns[lit_var(literal)]
        if a == _UNASSIGNED:
            return _UNASSIGNED
        return a ^ (literal & 1)

    @property
    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _enqueue(self, literal: int, reason) -> bool:
        val = self._value(literal)
        if val == 0:
            return False
        if val == 1:
            return True
        v = lit_var(literal)
        self.assigns[v] = 1 if lit_sign(literal) else 0
        self.levels[v] = self._decision_level
        self.reasons[v] = reason
        self.trail.append(literal)
        return True

    def _propagate(self) -> Optional[int]:
        """Exhaust unit propagation; returns a conflicting clause id or
        None.

        Walks a ``memoryview`` over the literal arena.  The view is
        released before returning: a live view pins the array's buffer,
        and the caller is about to append learned-clause literals.
        """
        trail = self.trail
        assigns = self.assigns
        watches = self.watches
        offs = self._c_off
        lens = self._c_len
        stats = self._stats
        mv = memoryview(self._lits)
        try:
            while self.prop_head < len(trail):
                literal = trail[self.prop_head]
                self.prop_head += 1
                stats["propagations"] += 1
                watchers = watches[literal]
                watches[literal] = []
                nl = literal ^ 1
                i = 0
                n = len(watchers)
                stats["props"] += n
                while i < n:
                    cid = watchers[i]
                    i += 1
                    base = offs[cid]
                    # Ensure the falsified watch is position 1.
                    if mv[base] == nl:
                        mv[base], mv[base + 1] = mv[base + 1], mv[base]
                    first = mv[base]
                    a = assigns[first >> 1]
                    if a != _UNASSIGNED and a ^ (first & 1) == 1:
                        watches[literal].append(cid)
                        continue
                    # Look for a new watch.
                    found = False
                    for k in range(base + 2, base + lens[cid]):
                        lk = mv[k]
                        ak = assigns[lk >> 1]
                        if ak == _UNASSIGNED or ak ^ (lk & 1) != 0:
                            mv[base + 1], mv[k] = mv[k], mv[base + 1]
                            watches[mv[base + 1] ^ 1].append(cid)
                            found = True
                            break
                    if found:
                        continue
                    # Clause is unit or conflicting.
                    watches[literal].append(cid)
                    if not self._enqueue(first, cid):
                        # Conflict: restore remaining watchers and report.
                        watches[literal].extend(watchers[i:])
                        return cid
            return None
        finally:
            mv.release()

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: int) -> tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        literal = -1
        reason: Optional[int] = conflict
        index = len(self.trail)
        arena = self._lits
        offs = self._c_off
        lens = self._c_len
        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if literal == -1 else 1
            base = offs[reason]
            # For the conflict clause consider all literals; for a reason
            # clause skip the asserting literal itself (position 0).
            for k in range(base + start, base + lens[reason]):
                q = arena[k] if literal == -1 or arena[k] != literal else None
                if q is None:
                    continue
                v = lit_var(q)
                if not seen[v] and self.levels[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self.levels[v] >= self._decision_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next trail literal to resolve on.
            while True:
                index -= 1
                literal = self.trail[index]
                if seen[lit_var(literal)]:
                    break
            v = lit_var(literal)
            seen[v] = False
            counter -= 1
            if counter == 0:
                learned[0] = neg(literal)
                break
            reason = self.reasons[v]
            # Reason clause has the asserting literal at position 0; rotate
            # if necessary.
            if reason is not None:
                rbase = offs[reason]
                if arena[rbase] != literal:
                    idx = rbase
                    while arena[idx] != literal:
                        idx += 1
                    arena[rbase], arena[idx] = arena[idx], arena[rbase]
        # Minimise: drop literals implied by the rest (cheap self-subsumption).
        learned = self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        max_i = 1
        for k in range(2, len(learned)):
            if self.levels[lit_var(learned[k])] > self.levels[lit_var(learned[max_i])]:
                max_i = k
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self.levels[lit_var(learned[1])]

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        for l in learned:
            seen[lit_var(l)] = True
        out = [learned[0]]
        arena = self._lits
        for l in learned[1:]:
            reason = self.reasons[lit_var(l)]
            if reason is None:
                out.append(l)
                continue
            # Redundant if every other literal of the reason is already in
            # the learned clause (or assigned at level 0).
            base = self._c_off[reason]
            nl = neg(l)
            redundant = all(
                seen[lit_var(q)] or self.levels[lit_var(q)] == 0
                for q in arena[base : base + self._c_len[reason]]
                if q != nl
            )
            if not redundant:
                out.append(l)
        for l in learned:
            seen[lit_var(l)] = False
        return out

    # ------------------------------------------------------------------
    # Activity / heuristics
    # ------------------------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(self.num_vars):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100
            # Uniform rescaling preserves ordering except where values
            # collapse into each other (underflow), so re-heapify.
            for i in range(len(self.heap) // 2 - 1, -1, -1):
                self._heap_sift_down(i)
        elif self.heap_pos[v] != -1:
            self._heap_sift_up(self.heap_pos[v])

    def _decay_var_activity(self) -> None:
        self.var_inc /= self.var_decay

    def _bump_clause(self, cid: int) -> None:
        if self._c_learned[cid]:
            self._c_act[cid] += self.cla_inc
            if self._c_act[cid] > 1e20:
                acts = self._c_act
                for c in self.learned:
                    acts[c] *= 1e-20
                self.cla_inc *= 1e-20

    def _decay_clause_activity(self) -> None:
        self.cla_inc /= self.cla_decay

    def _pick_branch_var(self) -> int:
        if self.branching == "linear":
            best = -1
            best_act = -1.0
            for v in range(self.num_vars):
                if self.assigns[v] == _UNASSIGNED and self.activity[v] > best_act:
                    best = v
                    best_act = self.activity[v]
            return best
        # Lazy heap pop: assigned variables linger in the heap until they
        # surface here; every unassigned variable is guaranteed present
        # (bulk-filled at solve() entry, re-inserted by _cancel_until).
        while self.heap:
            v = self._heap_pop()
            if self.assigns[v] == _UNASSIGNED:
                return v
        return -1

    # The heap orders by (activity desc, index asc); the strict total
    # order makes heap and linear branching pick identical variables.

    def _heap_before(self, u: int, v: int) -> bool:
        au, av = self.activity[u], self.activity[v]
        return au > av or (au == av and u < v)

    def _heap_push(self, v: int) -> None:
        if self.heap_pos[v] != -1:
            return
        self.heap_pos[v] = len(self.heap)
        self.heap.append(v)
        self._heap_sift_up(len(self.heap) - 1)

    def _heap_fill(self) -> None:
        """Bulk-insert every unassigned, absent variable, then heapify --
        O(V) versus O(V log V) for per-variable pushes."""
        heap, heap_pos = self.heap, self.heap_pos
        added = False
        for v in range(self.num_vars):
            if self.assigns[v] == _UNASSIGNED and heap_pos[v] == -1:
                heap_pos[v] = len(heap)
                heap.append(v)
                added = True
        if added:
            for i in range(len(heap) // 2 - 1, -1, -1):
                self._heap_sift_down(i)

    def _heap_pop(self) -> int:
        heap = self.heap
        top = heap[0]
        self.heap_pos[top] = -1
        last = heap.pop()
        if heap:
            heap[0] = last
            self.heap_pos[last] = 0
            self._heap_sift_down(0)
        return top

    def _heap_sift_up(self, pos: int) -> None:
        heap, heap_pos = self.heap, self.heap_pos
        v = heap[pos]
        while pos > 0:
            parent = (pos - 1) >> 1
            p = heap[parent]
            if not self._heap_before(v, p):
                break
            heap[pos] = p
            heap_pos[p] = pos
            pos = parent
        heap[pos] = v
        heap_pos[v] = pos

    def _heap_sift_down(self, pos: int) -> None:
        heap, heap_pos = self.heap, self.heap_pos
        n = len(heap)
        v = heap[pos]
        while True:
            child = 2 * pos + 1
            if child >= n:
                break
            c = heap[child]
            right = child + 1
            if right < n and self._heap_before(heap[right], c):
                child = right
                c = heap[right]
            if not self._heap_before(c, v):
                break
            heap[pos] = c
            heap_pos[c] = pos
            pos = child
        heap[pos] = v
        heap_pos[v] = pos

    # ------------------------------------------------------------------
    # Backtracking
    # ------------------------------------------------------------------

    def _cancel_until(self, level: int) -> None:
        if self._decision_level <= level:
            return
        bound = self.trail_lim[level]
        for literal in reversed(self.trail[bound:]):
            v = lit_var(literal)
            self.polarity[v] = lit_sign(literal)
            self.assigns[v] = _UNASSIGNED
            self.reasons[v] = None
            self._heap_push(v)
        del self.trail[bound:]
        del self.trail_lim[level:]
        self.prop_head = len(self.trail)

    # ------------------------------------------------------------------
    # Learned clause management
    # ------------------------------------------------------------------

    def _learn(self, lits: List[int]) -> int:
        """Install a freshly learned clause; returns its reason handle."""
        cid = self._install_clause(lits, learned=True)
        self.learned.append(cid)
        return cid

    def _reduce_db(self) -> None:
        acts = self._c_act
        self.learned.sort(key=lambda cid: acts[cid])
        keep_from = len(self.learned) // 2
        removed = set()
        for cid in self.learned[:keep_from]:
            if self._c_len[cid] > 2 and not self._is_reason(cid):
                removed.add(cid)
        if not removed:
            return
        self.learned = [cid for cid in self.learned if cid not in removed]
        for wl in self.watches:
            wl[:] = [cid for cid in wl if cid not in removed]
        # Mark the victims dead; their arena storage is reclaimed in
        # bulk once dead slots dominate the arena.
        for cid in removed:
            self._dead_lits += self._c_len[cid]
            self._c_len[cid] = 0
        self._stats["db_reductions"] += 1
        if (
            self._dead_lits >= _COMPACT_MIN_DEAD
            and self._dead_lits * 2 > len(self._lits)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rewrite the literal arena without dead clauses.

        Clause ids are stable (headers are rewritten in place), so
        watcher lists and reason slots survive compaction untouched.
        """
        fresh = array("i")
        arena = self._lits
        offs = self._c_off
        lens = self._c_len
        for cid in range(len(offs)):
            length = lens[cid]
            if length:
                base = offs[cid]
                offs[cid] = len(fresh)
                fresh.extend(arena[base : base + length])
        self._lits = fresh
        self._dead_lits = 0

    def _is_reason(self, cid: int) -> bool:
        v = self._lits[self._c_off[cid]] >> 1
        return self.reasons[v] == cid and self.assigns[v] != _UNASSIGNED

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> SolverResult:
        """Decide satisfiability under optional assumption literals.

        With a ``budget``, the main loop checks it cooperatively (once
        per :data:`_CHECK_EVERY` iterations -- effectively free) and
        answers ``unknown`` instead of raising mid-search, so a warm
        incremental solver stays reusable after an exhausted query.
        """
        if not self._ok:
            return SolverResult(False)
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SolverResult(False)
        if self.branching != "linear" and self._heap_dirty:
            # _cancel_until re-inserts everything it unassigns, so the
            # heap stays complete between solves; only fresh variables
            # require the bulk fill.
            self._heap_fill()
            self._heap_dirty = False

        restart_idx = 0
        conflicts_until_restart = 32 * _luby(restart_idx)
        conflict_budget_used = 0
        max_learned = max(1000, len(self.clauses) // 2)
        entry_conflicts = self._stats["conflicts"]
        check_countdown = _CHECK_EVERY

        while True:
            check_countdown -= 1
            if check_countdown <= 0:
                check_countdown = _CHECK_EVERY
                failpoint("solver.propagate")
                if budget is not None and budget.exhausted(
                    self._stats["conflicts"] - entry_conflicts
                ):
                    return SolverResult(False, unknown=True)
            conflict = self._propagate()
            if conflict is not None:
                self._stats["conflicts"] += 1
                conflict_budget_used += 1
                if self._decision_level == 0:
                    return SolverResult(False)
                learned_lits, back_level = self._analyze(conflict)
                # Keep assumption decisions across backjumps: clamp the
                # target at the assumption prefix -- but only when the
                # conflict is deeper than the prefix.  A conflict at (or
                # inside) the prefix must cancel past it so the asserting
                # literal's variable is actually freed; the cancelled
                # assumptions are re-decided by _next_assumption.
                target = back_level
                prefix = self._assumption_level(assumptions)
                if self._decision_level > prefix:
                    target = max(back_level, prefix)
                self._cancel_until(target)
                if len(learned_lits) == 1:
                    if self._decision_level > 0:
                        # Can't assert at a level above the assumptions; retry
                        # from level 0 if assumptions got in the way.
                        self._cancel_until(0)
                    if not self._enqueue(learned_lits[0], None):
                        return SolverResult(False)
                else:
                    reason = self._learn(learned_lits)
                    self._stats["learned"] += 1
                    self._enqueue(learned_lits[0], reason)
                self._decay_var_activity()
                self._decay_clause_activity()
                continue

            if conflict_budget_used >= conflicts_until_restart:
                conflict_budget_used = 0
                restart_idx += 1
                conflicts_until_restart = 32 * _luby(restart_idx)
                self._stats["restarts"] += 1
                self._cancel_until(0)
                continue

            if len(self.learned) > max_learned + len(self.trail):
                self._reduce_db()

            # Apply assumptions first, then branch.
            next_lit = self._next_assumption(assumptions)
            if next_lit is None:
                v = self._pick_branch_var()
                if v == -1:
                    model = {
                        i: self.assigns[i] == 1
                        for i in range(self.num_vars)
                        if self.assigns[i] != _UNASSIGNED
                    }
                    return SolverResult(True, model)
                self._stats["decisions"] += 1
                next_lit = lit(v, self.polarity[v])
            elif next_lit is False:
                return SolverResult(False)
            self.trail_lim.append(len(self.trail))
            self._enqueue(next_lit, None)

    def solve_batch(
        self,
        assumption_sets: Sequence[Sequence[int]],
        budget: Optional[Budget] = None,
        stats_out: Optional[List[Dict[str, int]]] = None,
    ) -> List[SolverResult]:
        """Solve a sequence of assumption sets on the warm solver.

        Equivalent to calling :meth:`solve` once per assumption set, in
        order, but in a single call -- the batched entry point for level
        sweeps, which otherwise pay one Python round-trip through the
        formula/encoding stack per level.  When ``stats_out`` is given,
        one per-solve :func:`stats_delta` is appended to it per result.

        An exhausted budget stops the batch: the unknown result is the
        last entry of the (possibly shorter) returned list.
        """
        results: List[SolverResult] = []
        for assumptions in assumption_sets:
            before = self.stats() if stats_out is not None else None
            result = self.solve(assumptions, budget=budget)
            if stats_out is not None:
                stats_out.append(stats_delta(self.stats(), before))
            results.append(result)
            if result.unknown:
                break
        return results

    def _assumption_level(self, assumptions: Sequence[int]) -> int:
        """Number of leading decision levels forced by assumptions.

        Assumptions are always decided before ordinary branching, so the
        levels they occupy form a prefix of ``trail_lim``.  Backjumping
        must never cancel into that prefix, or the solver would silently
        drop an assumption mid-solve and explore a search space the
        caller excluded.
        """
        if not assumptions:
            return 0
        aset = set(assumptions)
        count = 0
        for level_idx, bound in enumerate(self.trail_lim):
            if bound < len(self.trail) and self.trail[bound] in aset:
                count = level_idx + 1
            else:
                break
        return count

    def _next_assumption(self, assumptions: Sequence[int]):
        """Next unassigned assumption literal, False if one is violated."""
        for a in assumptions:
            val = self._value(a)
            if val == 0:
                return False
            if val == _UNASSIGNED:
                return a
        return None


class ObjectDbSolver(Solver):
    """The historical per-clause-object storage path.

    Kept for one release behind ``Solver(clause_db="objects")`` as a
    differential oracle for the arena: same decisions, same models, same
    statistics.  Watcher lists and reason slots hold ``_Clause`` objects
    instead of arena clause ids; every override below is the pre-arena
    implementation verbatim.
    """

    def __init__(
        self, branching: str = "heap", clause_db: Optional[str] = None
    ) -> None:
        super().__init__(branching, clause_db="objects")
        self.clauses: List[_Clause] = []
        self.learned: List[_Clause] = []
        self.watches: List[List[_Clause]] = [[] for _ in self.watches]

    def _arena_nbytes(self) -> int:
        return 0

    def _install_clause(self, lits: Sequence[int], learned: bool) -> _Clause:
        clause = _Clause(list(lits), learned=learned)
        self.watches[neg(clause.lits[0])].append(clause)
        self.watches[neg(clause.lits[1])].append(clause)
        return clause

    def _clause_lits(self, clause: _Clause) -> Sequence[int]:
        return clause.lits

    def _propagate(self) -> Optional[_Clause]:
        """Exhaust unit propagation; returns a conflicting clause or None."""
        while self.prop_head < len(self.trail):
            literal = self.trail[self.prop_head]
            self.prop_head += 1
            self._stats["propagations"] += 1
            watchers = self.watches[literal]
            self.watches[literal] = []
            i = 0
            n = len(watchers)
            self._stats["props"] += n
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified watch is lits[1].
                if lits[0] == neg(literal):
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == 1:
                    self.watches[literal].append(clause)
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self._value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.watches[neg(lits[1])].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                self.watches[literal].append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: restore remaining watchers and report.
                    self.watches[literal].extend(watchers[i:])
                    return clause
        return None

    def _analyze(self, conflict: _Clause) -> tuple[List[int], int]:
        """First-UIP analysis; returns (learned clause, backjump level)."""
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        literal = -1
        reason: Optional[_Clause] = conflict
        index = len(self.trail)
        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if literal == -1 else 1
            lits = reason.lits
            # For the conflict clause consider all literals; for a reason
            # clause skip the asserting literal itself (position 0).
            for k in range(start, len(lits)):
                q = lits[k] if literal == -1 or lits[k] != literal else None
                if q is None:
                    continue
                v = lit_var(q)
                if not seen[v] and self.levels[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self.levels[v] >= self._decision_level:
                        counter += 1
                    else:
                        learned.append(q)
            # Pick the next trail literal to resolve on.
            while True:
                index -= 1
                literal = self.trail[index]
                if seen[lit_var(literal)]:
                    break
            v = lit_var(literal)
            seen[v] = False
            counter -= 1
            if counter == 0:
                learned[0] = neg(literal)
                break
            reason = self.reasons[v]
            # Reason clause has the asserting literal at position 0; rotate
            # if necessary.
            if reason is not None and reason.lits[0] != literal:
                rl = reason.lits
                idx = rl.index(literal)
                rl[0], rl[idx] = rl[idx], rl[0]
        # Minimise: drop literals implied by the rest (cheap self-subsumption).
        learned = self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        max_i = 1
        for k in range(2, len(learned)):
            if self.levels[lit_var(learned[k])] > self.levels[lit_var(learned[max_i])]:
                max_i = k
        learned[1], learned[max_i] = learned[max_i], learned[1]
        return learned, self.levels[lit_var(learned[1])]

    def _minimize(self, learned: List[int], seen: List[bool]) -> List[int]:
        for l in learned:
            seen[lit_var(l)] = True
        out = [learned[0]]
        for l in learned[1:]:
            reason = self.reasons[lit_var(l)]
            if reason is None:
                out.append(l)
                continue
            # Redundant if every other literal of the reason is already in
            # the learned clause (or assigned at level 0).
            redundant = all(
                seen[lit_var(q)] or self.levels[lit_var(q)] == 0
                for q in reason.lits
                if q != neg(l)
            )
            if not redundant:
                out.append(l)
        for l in learned:
            seen[lit_var(l)] = False
        return out

    def _bump_clause(self, clause: _Clause) -> None:
        if clause.learned:
            clause.activity += self.cla_inc
            if clause.activity > 1e20:
                for c in self.learned:
                    c.activity *= 1e-20
                self.cla_inc *= 1e-20

    def _learn(self, lits: List[int]) -> _Clause:
        clause = self._install_clause(lits, learned=True)
        self.learned.append(clause)
        return clause

    def _reduce_db(self) -> None:
        self.learned.sort(key=lambda c: c.activity)
        keep_from = len(self.learned) // 2
        removed = set()
        for c in self.learned[:keep_from]:
            if len(c.lits) > 2 and not self._is_reason(c):
                removed.add(id(c))
        if not removed:
            return
        self.learned = [c for c in self.learned if id(c) not in removed]
        for wl in self.watches:
            wl[:] = [c for c in wl if id(c) not in removed]
        self._stats["db_reductions"] += 1

    def _is_reason(self, clause: _Clause) -> bool:
        v = lit_var(clause.lits[0])
        return self.reasons[v] is clause and self.assigns[v] != _UNASSIGNED


def stats_delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    """Per-query counter delta between two :meth:`Solver.stats` snapshots.

    Incremental sessions solve many queries on one warm solver; billing a
    query with the raw totals would double-count every earlier query's
    decisions and propagations, so accounting subtracts the snapshot
    taken just before the solve.  Gauge entries (``arena_bytes``,
    ``learned_live``) delta to their growth between the snapshots.
    """
    return {key: after[key] - before.get(key, 0) for key in after}


def _luby(i: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    k = 1
    while (1 << (k + 1)) - 1 <= i + 1:
        k += 1
    while True:
        if i + 1 == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1
        k -= 1
        if k <= 0:
            return 1
