"""A from-scratch SAT/SMT substrate.

The paper discharges anomaly-detection queries with Z3.  Z3 is not
available in this environment, so this package provides the solving stack
the analysis needs:

- :mod:`repro.smt.solver` -- a CDCL SAT solver with two-watched-literal
  propagation, VSIDS-style activity ordering, first-UIP clause learning,
  and Luby restarts;
- :mod:`repro.smt.formula` -- a boolean formula AST with Tseitin
  conversion to CNF and model evaluation;
- :mod:`repro.smt.order` -- an eager axiomatisation of strict total
  orders over finite domains (used for event timestamps).

The anomaly encodings of :mod:`repro.analysis` are finite, so an
equisatisfiable propositional encoding is a faithful substitute for the
paper's FOL-plus-Z3 pipeline.
"""

from repro.smt.formula import (
    And,
    BoolConst,
    BoolVar,
    FormulaBuilder,
    Iff,
    Implies,
    Not,
    Or,
    FALSE,
    TRUE,
)
from repro.smt.solver import Solver, SolverResult
from repro.smt.order import TotalOrder

__all__ = [
    "And",
    "BoolConst",
    "BoolVar",
    "FormulaBuilder",
    "Iff",
    "Implies",
    "Not",
    "Or",
    "FALSE",
    "TRUE",
    "Solver",
    "SolverResult",
    "TotalOrder",
]
