"""Boolean formula layer on top of the CDCL core.

Provides a tiny structural formula AST (:class:`BoolVar`, :class:`And`,
:class:`Or`, :class:`Not`, :class:`Implies`, :class:`Iff`, constants) and
a :class:`FormulaBuilder` that manages variable allocation and converts
formulas to CNF via the Tseitin transformation before handing them to
:class:`repro.smt.solver.Solver`.

The anomaly encoder only ever asserts formulas and asks for a model, so
the builder exposes exactly that surface: ``add(formula)`` and
``check() -> model | None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.smt import solver as sat


class Formula:
    """Base class for boolean formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class BoolConst(Formula):
    value: bool


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class BoolVar(Formula):
    """A named propositional variable; names are interned by the builder."""

    name: str


class _NaryFormula(Formula):
    __slots__ = ("operands",)

    def __init__(self, *operands: Formula):
        flat: List[Formula] = []
        for op in operands:
            if isinstance(op, type(self)):
                flat.extend(op.operands)  # type: ignore[attr-defined]
            else:
                flat.append(op)
        self.operands = tuple(flat)

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and self.operands == other.operands  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.operands))
        return f"{type(self).__name__}({inner})"


class And(_NaryFormula):
    """N-ary conjunction; nested Ands are flattened."""


class Or(_NaryFormula):
    """N-ary disjunction; nested Ors are flattened."""


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula


def Implies(antecedent: Formula, consequent: Formula) -> Formula:
    return Or(Not(antecedent), consequent)


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula


def big_and(formulas: Iterable[Formula]) -> Formula:
    items = list(formulas)
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(*items)


def big_or(formulas: Iterable[Formula]) -> Formula:
    items = list(formulas)
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(*items)


def at_most_one(formulas: Iterable[Formula]) -> Formula:
    """Pairwise at-most-one constraint (fine at the encoder's sizes)."""
    items = list(formulas)
    clauses: List[Formula] = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            clauses.append(Or(Not(items[i]), Not(items[j])))
    return big_and(clauses)


class FormulaBuilder:
    """Accumulates asserted formulas and discharges them with CDCL.

    Variables are identified by name; :meth:`var` interns them.  ``add``
    performs Tseitin conversion eagerly, so the builder can be used
    incrementally (assert, check, assert more, check again).
    """

    def __init__(self) -> None:
        self.solver = sat.Solver()
        self._vars: Dict[str, int] = {}
        self._aux_count = 0
        self._cache: Dict[int, int] = {}

    # -- variables -----------------------------------------------------

    def var(self, name: str) -> BoolVar:
        """Declare (or fetch) a named variable."""
        if name not in self._vars:
            self._vars[name] = self.solver.new_var()
        return BoolVar(name)

    def var_names(self) -> Tuple[str, ...]:
        return tuple(self._vars)

    def _fresh(self) -> int:
        self._aux_count += 1
        return self.solver.new_var()

    def _lookup(self, v: BoolVar) -> int:
        if v.name not in self._vars:
            self._vars[v.name] = self.solver.new_var()
        return self._vars[v.name]

    # -- assertion -------------------------------------------------------

    def add(self, formula: Formula) -> None:
        """Assert ``formula`` (conjoined with everything added so far)."""
        root = self._tseitin(formula)
        if root is None:  # constant
            if not self._const_value(formula):
                self.solver.add_clause([])  # unsatisfiable marker
            return
        self.solver.add_clause([root])

    def _const_value(self, formula: Formula) -> bool:
        assert isinstance(formula, BoolConst)
        return formula.value

    def _tseitin(self, formula: Formula) -> Optional[int]:
        """Return the literal equisatisfiable with ``formula`` (or None for
        constants, which the caller handles)."""
        lit = self._encode(formula)
        return lit

    def _encode(self, formula: Formula) -> Optional[int]:
        if isinstance(formula, BoolConst):
            # Encode constants as fresh pinned variables.
            v = self._fresh()
            self.solver.add_clause([sat.lit(v, formula.value)])
            return sat.lit(v, True)
        if isinstance(formula, BoolVar):
            return sat.lit(self._lookup(formula), True)
        if isinstance(formula, Not):
            inner = self._encode(formula.operand)
            assert inner is not None
            return sat.neg(inner)
        if isinstance(formula, And):
            if not formula.operands:
                return self._encode(TRUE)
            lits = [self._encode(op) for op in formula.operands]
            out = sat.lit(self._fresh(), True)
            for l in lits:
                assert l is not None
                self.solver.add_clause([sat.neg(out), l])
            self.solver.add_clause([out] + [sat.neg(l) for l in lits])  # type: ignore[arg-type]
            return out
        if isinstance(formula, Or):
            if not formula.operands:
                return self._encode(FALSE)
            lits = [self._encode(op) for op in formula.operands]
            out = sat.lit(self._fresh(), True)
            for l in lits:
                assert l is not None
                self.solver.add_clause([sat.neg(l), out])
            self.solver.add_clause([sat.neg(out)] + list(lits))  # type: ignore[arg-type]
            return out
        if isinstance(formula, Iff):
            a = self._encode(formula.left)
            b = self._encode(formula.right)
            assert a is not None and b is not None
            out = sat.lit(self._fresh(), True)
            self.solver.add_clause([sat.neg(out), sat.neg(a), b])
            self.solver.add_clause([sat.neg(out), a, sat.neg(b)])
            self.solver.add_clause([out, a, b])
            self.solver.add_clause([out, sat.neg(a), sat.neg(b)])
            return out
        raise TypeError(f"not a formula: {formula!r}")

    # -- solving ----------------------------------------------------------

    def check(self) -> Optional[Dict[str, bool]]:
        """Solve the asserted conjunction.

        Returns a model as ``{var name: bool}`` when satisfiable, else
        ``None``.
        """
        result = self.solver.solve()
        if not result.sat:
            return None
        return {name: result.value(idx) for name, idx in self._vars.items()}


def evaluate(formula: Formula, model: Dict[str, bool]) -> bool:
    """Evaluate a formula under a model (unknown vars default to False)."""
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, BoolVar):
        return model.get(formula.name, False)
    if isinstance(formula, Not):
        return not evaluate(formula.operand, model)
    if isinstance(formula, And):
        return all(evaluate(op, model) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate(op, model) for op in formula.operands)
    if isinstance(formula, Iff):
        return evaluate(formula.left, model) == evaluate(formula.right, model)
    raise TypeError(f"not a formula: {formula!r}")
