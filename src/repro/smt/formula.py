"""Boolean formula layer on top of the CDCL core.

Provides a tiny structural formula AST (:class:`BoolVar`, :class:`And`,
:class:`Or`, :class:`Not`, :class:`Implies`, :class:`Iff`, constants) and
a :class:`FormulaBuilder` that manages variable allocation and converts
formulas to CNF via the Tseitin transformation before handing them to
:class:`repro.smt.solver.Solver`.

The anomaly encoder only ever asserts formulas and asks for a model, so
the builder exposes exactly that surface: ``add(formula)`` and
``check() -> model | None``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BudgetExhaustedError, SolverError
from repro.smt import solver as sat


class Formula:
    """Base class for boolean formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class BoolConst(Formula):
    value: bool


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class BoolVar(Formula):
    """A named propositional variable; names are interned by the builder."""

    name: str


class _NaryFormula(Formula):
    __slots__ = ("operands", "_hash")

    def __init__(self, *operands: Formula):
        flat: List[Formula] = []
        for op in operands:
            if isinstance(op, type(self)):
                flat.extend(op.operands)  # type: ignore[attr-defined]
            else:
                flat.append(op)
        self.operands = tuple(flat)
        self._hash: Optional[int] = None

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return type(other) is type(self) and self.operands == other.operands  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        # Cached: the hash-consing tables hash the same (deep) formula
        # objects on every intern lookup, which made recursive hashing a
        # measurable slice of warm-session construction.
        h = self._hash
        if h is None:
            h = self._hash = hash((type(self).__name__, self.operands))
        return h

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.operands))
        return f"{type(self).__name__}({inner})"


class And(_NaryFormula):
    """N-ary conjunction; nested Ands are flattened."""


class Or(_NaryFormula):
    """N-ary disjunction; nested Ors are flattened."""


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula


def Implies(antecedent: Formula, consequent: Formula) -> Formula:
    return Or(Not(antecedent), consequent)


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula


def big_and(formulas: Iterable[Formula]) -> Formula:
    items = list(formulas)
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(*items)


def big_or(formulas: Iterable[Formula]) -> Formula:
    items = list(formulas)
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(*items)


def at_most_one(formulas: Iterable[Formula]) -> Formula:
    """Pairwise at-most-one constraint (fine at the encoder's sizes)."""
    items = list(formulas)
    clauses: List[Formula] = []
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            clauses.append(Or(Not(items[i]), Not(items[j])))
    return big_and(clauses)


class FormulaBuilder:
    """Accumulates asserted formulas and discharges them with CDCL.

    Variables are identified by name; :meth:`var` interns them.  ``add``
    performs Tseitin conversion eagerly, so the builder can be used
    incrementally (assert, check, assert more, check again).

    ``fold_constants=True`` switches to a simplifying Tseitin pass that
    folds ``TRUE``/``FALSE`` operands, deduplicates operand literals and
    collapses tautological/contradictory connectives before emitting
    clauses.  The default eager pass instead materialises every constant
    as a fresh pinned variable; it is kept as-is because downstream
    consumers pin its exact model choices.

    The folding pass additionally *hash-conses* structural subformulas:
    every ``And``/``Or``/``Iff`` already encoded in the session maps to
    its existing Tseitin literal, so a shared subformula's CNF is emitted
    exactly once per builder no matter how many assertions mention it.

    Assertions can be made *retractable* via activation-literal groups
    (folding pass only): every clause emitted inside a
    :meth:`group` block carries the group's guard literal, the group is
    enforced only when passed to :meth:`check`, and
    :meth:`retire_group` discards it for good.  Subformulas first
    encoded inside a group are interned per group -- their defining
    clauses are guarded, so the literal is only trusted while that group
    exists.
    """

    def __init__(
        self, fold_constants: bool = False, clause_db: Optional[str] = None
    ) -> None:
        self.solver = sat.Solver(clause_db=clause_db)
        self.fold_constants = fold_constants
        self._vars: Dict[str, int] = {}
        # name -> interned BoolVar: var() is called per axiom link on
        # the warm path, and returning one shared (frozen, equal) object
        # keeps downstream formula hashing on the identity fast path.
        self._var_objs: Dict[str, BoolVar] = {}
        self._aux_count = 0
        self._true_lit: Optional[int] = None
        # Hash-consing caches for the folding pass: formula -> literal.
        # _interned holds permanently-defined subformulas; group-scoped
        # definitions live in _group_interned and die with their group.
        self._interned: Dict[Formula, int] = {}
        self._group_interned: Dict[int, Dict[Formula, int]] = {}
        self._group: Optional[int] = None
        self._all_groups: List[int] = []

    # -- variables -----------------------------------------------------

    def var(self, name: str) -> BoolVar:
        """Declare (or fetch) a named variable."""
        bv = self._var_objs.get(name)
        if bv is None:
            if name not in self._vars:
                self._vars[name] = self.solver.new_var()
            bv = BoolVar(name)
            self._var_objs[name] = bv
        return bv

    def var_names(self) -> Tuple[str, ...]:
        return tuple(self._vars)

    def literal(self, var: BoolVar) -> int:
        """The positive solver literal of a named variable (interning it
        if needed) -- the escape hatch for callers that emit clauses at
        the literal level."""
        return sat.lit(self._lookup(var), True)

    def _fresh(self) -> int:
        self._aux_count += 1
        return self.solver.new_var()

    def _lookup(self, v: BoolVar) -> int:
        if v.name not in self._vars:
            self._vars[v.name] = self.solver.new_var()
        return self._vars[v.name]

    # -- retractable assertion groups ----------------------------------

    def new_group(self) -> int:
        """Allocate a retractable assertion group (folding pass only)."""
        if not self.fold_constants:
            raise SolverError(
                "assertion groups require the folding Tseitin pass "
                "(FormulaBuilder(fold_constants=True))"
            )
        group_id = self.solver.new_group()
        self._all_groups.append(group_id)
        return group_id

    @contextmanager
    def group(self, group_id: int):
        """Scope assertions to ``group_id``: every clause emitted inside
        the block is guarded by the group's activation literal."""
        previous = self._group
        self._group = group_id
        try:
            yield
        finally:
            self._group = previous

    def retire_group(self, group_id: int) -> None:
        """Permanently drop a group's assertions (and its interned
        subformula definitions)."""
        self.solver.retire_group(group_id)
        self._group_interned.pop(group_id, None)

    def _emit(self, lits: List[int]) -> None:
        """Install one screened clause, guarded by the active group."""
        if self._group is not None:
            lits = lits + [sat.lit(self._group, False)]
        self.solver.add_clause_unchecked(lits)

    def _emit_empty(self) -> None:
        """Assert falsity: fatal when permanent, retirable in a group."""
        if self._group is not None:
            self.solver.add_clause_unchecked([sat.lit(self._group, False)])
        else:
            self.solver.add_clause([])  # unsatisfiable marker

    # -- assertion -------------------------------------------------------

    def add(self, formula: Formula) -> None:
        """Assert ``formula`` (conjoined with everything added so far)."""
        if self.fold_constants:
            self._assert_folded(formula)
            return
        root = self._tseitin(formula)
        if root is None:  # constant
            if not self._const_value(formula):
                self.solver.add_clause([])  # unsatisfiable marker
            return
        self.solver.add_clause([root])

    def _const_value(self, formula: Formula) -> bool:
        assert isinstance(formula, BoolConst)
        return formula.value

    def _tseitin(self, formula: Formula) -> Optional[int]:
        """Return the literal equisatisfiable with ``formula`` (or None for
        constants, which the caller handles)."""
        lit = self._encode(formula)
        return lit

    def _encode(self, formula: Formula) -> Optional[int]:
        if isinstance(formula, BoolConst):
            # Encode constants as fresh pinned variables.
            v = self._fresh()
            self.solver.add_clause([sat.lit(v, formula.value)])
            return sat.lit(v, True)
        if isinstance(formula, BoolVar):
            return sat.lit(self._lookup(formula), True)
        if isinstance(formula, Not):
            inner = self._encode(formula.operand)
            assert inner is not None
            return sat.neg(inner)
        if isinstance(formula, And):
            if not formula.operands:
                return self._encode(TRUE)
            lits = [self._encode(op) for op in formula.operands]
            out = sat.lit(self._fresh(), True)
            for l in lits:
                assert l is not None
                self.solver.add_clause([sat.neg(out), l])
            self.solver.add_clause([out] + [sat.neg(l) for l in lits])  # type: ignore[arg-type]
            return out
        if isinstance(formula, Or):
            if not formula.operands:
                return self._encode(FALSE)
            lits = [self._encode(op) for op in formula.operands]
            out = sat.lit(self._fresh(), True)
            for l in lits:
                assert l is not None
                self.solver.add_clause([sat.neg(l), out])
            self.solver.add_clause([sat.neg(out)] + list(lits))  # type: ignore[arg-type]
            return out
        if isinstance(formula, Iff):
            a = self._encode(formula.left)
            b = self._encode(formula.right)
            assert a is not None and b is not None
            out = sat.lit(self._fresh(), True)
            self.solver.add_clause([sat.neg(out), sat.neg(a), b])
            self.solver.add_clause([sat.neg(out), a, sat.neg(b)])
            self.solver.add_clause([out, a, b])
            self.solver.add_clause([out, sat.neg(a), sat.neg(b)])
            return out
        raise TypeError(f"not a formula: {formula!r}")

    # -- folding Tseitin pass ---------------------------------------------

    def _assert_folded(self, formula: Formula) -> None:
        """Assert with clausal shortcuts: conjunctions split into separate
        assertions, disjunctions (including negated conjuncts, the
        ``Implies`` shape) become a single clause, and equivalences over
        literal-encodable sides become two binary clauses.  Tseitin aux
        variables are introduced only below genuinely nested structure.
        """
        if isinstance(formula, And):
            for op in formula.operands:
                self._assert_folded(op)
            return
        true = self._const_lit(True)
        false = sat.neg(true)
        if isinstance(formula, Or):
            lits: List[int] = []
            for op in formula.operands:
                if isinstance(op, Not) and isinstance(op.operand, And):
                    # De Morgan: ¬(g1 ∧ ... ∧ gk) contributes ¬g1, ..., ¬gk.
                    encoded = [
                        sat.neg(self._encode_folded(g))
                        for g in op.operand.operands
                    ]
                else:
                    encoded = [self._encode_folded(op)]
                for l in encoded:
                    if l == true:
                        return  # clause satisfied
                    if l == false:
                        continue
                    lits.append(l)
            lits = list(dict.fromkeys(lits))
            present = set(lits)
            if any(sat.neg(l) in present for l in lits):
                return  # tautology
            if not lits:
                self._emit_empty()
                return
            self._emit(lits)
            return
        if isinstance(formula, Iff):
            a = self._encode_folded(formula.left)
            b = self._encode_folded(formula.right)
            if a == true:
                self._assert_lit(b)
            elif a == false:
                self._assert_lit(sat.neg(b))
            elif b == true:
                self._assert_lit(a)
            elif b == false:
                self._assert_lit(sat.neg(a))
            elif a == b:
                pass
            elif a == sat.neg(b):
                self._emit_empty()
            else:
                self._emit([sat.neg(a), b])
                self._emit([a, sat.neg(b)])
            return
        self._assert_lit(self._encode_folded(formula))

    def assert_implication(
        self, antecedents: Sequence[Formula], consequent: Formula
    ) -> None:
        """Assert ``(antecedents[0] ∧ ... ∧ antecedents[n]) → consequent``.

        Semantically ``add(Implies(And(*antecedents), consequent))``; on
        the folding path the clause is emitted directly without building
        the intermediate formula objects (this is the encoder's hottest
        assertion shape -- alias transitivity emits one per triple).
        """
        if not self.fold_constants:
            antecedent = (
                antecedents[0] if len(antecedents) == 1 else And(*antecedents)
            )
            self.add(Implies(antecedent, consequent))
            return
        true = self._const_lit(True)
        false = sat.neg(true)
        lits: List[int] = []
        for a in antecedents:
            l = self._encode_folded(a)
            if l == false:
                return  # antecedent unsatisfiable: implication holds
            if l == true:
                continue
            lits.append(sat.neg(l))
        c = self._encode_folded(consequent)
        if c == true:
            return
        if c != false:
            lits.append(c)
        lits = list(dict.fromkeys(lits))
        present = set(lits)
        if any(sat.neg(l) in present for l in lits):
            return  # tautology
        if not lits:
            self._emit_empty()
            return
        self._emit(lits)

    def assert_implication_lits(
        self, antecedents: Sequence[int], consequent: int
    ) -> None:
        """Literal-level :meth:`assert_implication` (folding pass only).

        For callers that already resolved their operands to solver
        literals (via :meth:`literal` / :meth:`fold_literal`); emits
        exactly the clause ``assert_implication`` would emit for the
        same operand literals, skipping the per-call formula dispatch.
        """
        true = self._const_lit(True)
        false = sat.neg(true)
        lits: List[int] = []
        for l in antecedents:
            if l == false:
                return  # antecedent unsatisfiable: implication holds
            if l == true:
                continue
            lits.append(sat.neg(l))
        if consequent == true:
            return
        if consequent != false:
            lits.append(consequent)
        lits = list(dict.fromkeys(lits))
        present = set(lits)
        if any(sat.neg(l) in present for l in lits):
            return  # tautology
        if not lits:
            self._emit_empty()
            return
        self._emit(lits)

    def fold_literal(self, formula: Formula) -> int:
        """Resolve a formula to its folded literal (folding pass only).

        The public face of :meth:`_encode_folded` for encoders that
        batch-resolve operands once and then emit several clauses over
        them at the literal level.
        """
        if not self.fold_constants:
            raise SolverError(
                "literal resolution requires the folding Tseitin pass "
                "(FormulaBuilder(fold_constants=True))"
            )
        return self._encode_folded(formula)

    def _assert_lit(self, literal: int) -> None:
        if literal == self._const_lit(True):
            return
        if literal == sat.neg(self._const_lit(True)):
            self._emit_empty()
            return
        self._emit([literal])

    def _const_lit(self, value: bool) -> int:
        """The shared pinned literal for a boolean constant."""
        if self._true_lit is None:
            v = self._fresh()
            self.solver.add_clause_unchecked([sat.lit(v, True)])
            self._true_lit = sat.lit(v, True)
        return self._true_lit if value else sat.neg(self._true_lit)

    def _encode_folded(self, formula: Formula) -> int:
        """Simplifying Tseitin: returns a literal equivalent to ``formula``
        under the emitted clauses, folding constants along the way.

        Connectives are hash-consed: a structurally equal subformula that
        was already encoded returns its existing literal without emitting
        any clauses.  Results computed inside a retractable group are
        cached per group (their defining clauses carry the group guard
        and vanish with it); permanent results are shared everywhere.
        """
        if isinstance(formula, BoolVar):
            # Most frequent case (interned alias/visibility variables):
            # resolve the name inline rather than via _lookup + sat.lit.
            vars_ = self._vars
            v = vars_.get(formula.name)
            if v is None:
                v = vars_[formula.name] = self.solver.new_var()
            return v << 1
        if isinstance(formula, BoolConst):
            return self._const_lit(formula.value)
        if isinstance(formula, Not):
            return sat.neg(self._encode_folded(formula.operand))
        out = self._interned.get(formula)
        if out is None and self._group is not None:
            out = self._group_interned.get(self._group, {}).get(formula)
        if out is not None:
            return out
        out = self._encode_connective(formula)
        if self._group is None:
            self._interned[formula] = out
        else:
            self._group_interned.setdefault(self._group, {})[formula] = out
        return out

    def _encode_connective(self, formula: Formula) -> int:
        true = self._const_lit(True)
        false = sat.neg(true)
        add = self._emit
        if isinstance(formula, (And, Or)):
            is_and = isinstance(formula, And)
            absorbing = false if is_and else true
            neutral = true if is_and else false
            lits: List[int] = []
            for op in formula.operands:
                l = self._encode_folded(op)
                if l == neutral:
                    continue
                if l == absorbing:
                    return absorbing
                lits.append(l)
            lits = list(dict.fromkeys(lits))
            if not lits:
                return neutral
            if len(lits) == 1:
                return lits[0]
            present = set(lits)
            if any(sat.neg(l) in present for l in lits):
                return absorbing
            out = sat.lit(self._fresh(), True)
            if is_and:
                for l in lits:
                    add([sat.neg(out), l])
                add([out] + [sat.neg(l) for l in lits])
            else:
                for l in lits:
                    add([sat.neg(l), out])
                add([sat.neg(out)] + lits)
            return out
        if isinstance(formula, Iff):
            a = self._encode_folded(formula.left)
            b = self._encode_folded(formula.right)
            if a == true:
                return b
            if a == false:
                return sat.neg(b)
            if b == true:
                return a
            if b == false:
                return sat.neg(a)
            if a == b:
                return true
            if a == sat.neg(b):
                return false
            out = sat.lit(self._fresh(), True)
            add([sat.neg(out), sat.neg(a), b])
            add([sat.neg(out), a, sat.neg(b)])
            add([out, a, b])
            add([out, sat.neg(a), sat.neg(b)])
            return out
        raise TypeError(f"not a formula: {formula!r}")

    # -- solving ----------------------------------------------------------

    def check(
        self,
        groups: Sequence[int] = (),
        budget=None,
    ) -> Optional[Dict[str, bool]]:
        """Solve the asserted conjunction.

        ``groups`` lists the retractable assertion groups to enforce for
        this call; every other live group is explicitly switched *off*
        (its activation literal assumed false), so inactive guarded
        clauses are inert rather than free choices -- which keeps the
        search, and hence the model, independent of what other groups
        happen to exist in the session.

        Returns a model as ``{var name: bool}`` when satisfiable, else
        ``None``.  A :class:`~repro.budget.Budget` bounds the solve; an
        exhausted budget raises :class:`~repro.errors.
        BudgetExhaustedError` rather than masquerading as UNSAT.
        """
        result = self.solver.solve(self._assumptions_for(groups), budget=budget)
        return self._model_of(result)

    def check_batch(
        self,
        group_sets: Sequence[Sequence[int]],
        budget=None,
        stats_out=None,
    ) -> List[Optional[Dict[str, bool]]]:
        """Solve one :meth:`check` per entry of ``group_sets`` in a
        single :meth:`Solver.solve_batch` call.

        The batched entry point for level sweeps: each entry lists the
        assertion groups to enforce for that solve, results come back in
        order, and each solve is independent (every other live group is
        switched off exactly as in ``check``, so a solve never observes
        its batch neighbours).  ``stats_out``, when given, receives one
        per-solve :func:`repro.smt.solver.stats_delta` per result.

        An exhausted budget raises :class:`BudgetExhaustedError`; solves
        before the exhausted one completed normally but their results
        are not returned (callers retry the whole sweep).
        """
        assumption_sets = [self._assumptions_for(groups) for groups in group_sets]
        results = self.solver.solve_batch(
            assumption_sets, budget=budget, stats_out=stats_out
        )
        return [self._model_of(result) for result in results]

    def _assumptions_for(self, groups: Sequence[int]) -> List[int]:
        """Assumption literals enforcing exactly ``groups``: activate
        each requested group, switch every other live group off."""
        active = set(groups)
        assumptions: List[int] = []
        for group_id in groups:
            if self.solver.is_retired(group_id):
                raise SolverError(f"assertion group {group_id} was retired")
            assumptions.append(sat.lit(group_id, True))
        for group_id in self._all_groups:
            if group_id not in active and not self.solver.is_retired(group_id):
                assumptions.append(sat.lit(group_id, False))
        return assumptions

    def _model_of(self, result: sat.SolverResult) -> Optional[Dict[str, bool]]:
        if not result.sat:
            if result.unknown:
                raise BudgetExhaustedError(
                    "SAT query exhausted its budget before deciding"
                )
            return None
        return {name: result.value(idx) for name, idx in self._vars.items()}


def evaluate(formula: Formula, model: Dict[str, bool]) -> bool:
    """Evaluate a formula under a model (unknown vars default to False)."""
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, BoolVar):
        return model.get(formula.name, False)
    if isinstance(formula, Not):
        return not evaluate(formula.operand, model)
    if isinstance(formula, And):
        return all(evaluate(op, model) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate(op, model) for op in formula.operands)
    if isinstance(formula, Iff):
        return evaluate(formula.left, model) == evaluate(formula.right, model)
    raise TypeError(f"not a formula: {formula!r}")
