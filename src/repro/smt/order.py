"""Eager axiomatisation of strict total orders over finite domains.

The anomaly encoding needs an arbitration/linearisation order over the
events of the two transaction instances it instantiates (the paper's
global execution counter ``cnt``).  At those sizes (a handful of events)
the eager encoding -- one boolean ``before(a, b)`` per ordered pair plus
totality, antisymmetry-by-construction, and transitivity clauses over all
triples -- is compact and lets plain CDCL handle the theory, replacing
Z3's integer ordering reasoning.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.smt.formula import BoolVar, Formula, FormulaBuilder, Implies, Not


class TotalOrder:
    """A strict total order over a finite element set, encoded in SAT.

    ``before(a, b)`` returns the variable asserting ``a < b``.  The
    constructor asserts:

    - totality/antisymmetry: ``before(a, b) <-> not before(b, a)`` for all
      distinct pairs (encoded as exactly-one of the two directions);
    - transitivity: ``before(a, b) and before(b, c) -> before(a, c)``;
    - any caller-provided fixed precedences (e.g. program order).
    """

    def __init__(
        self,
        builder: FormulaBuilder,
        elements: Sequence[Hashable],
        name: str = "ord",
    ) -> None:
        if len(set(elements)) != len(elements):
            raise ValueError("order elements must be distinct")
        self.builder = builder
        self.elements: Tuple[Hashable, ...] = tuple(elements)
        self.name = name
        self._index: Dict[Hashable, int] = {e: i for i, e in enumerate(self.elements)}
        self._vars: Dict[Tuple[int, int], BoolVar] = {}
        self._assert_axioms()

    def _pair_var(self, i: int, j: int) -> Formula:
        """Variable for ``elements[i] < elements[j]`` (i != j).

        Only one direction is materialised; the other is its negation,
        which bakes antisymmetry and totality into the encoding.
        """
        if i == j:
            raise ValueError("no self-ordering")
        if i < j:
            key = (i, j)
            if key not in self._vars:
                self._vars[key] = self.builder.var(f"{self.name}[{i}<{j}]")
            return self._vars[key]
        flipped = self._pair_var(j, i)
        return Not(flipped)

    def before(self, a: Hashable, b: Hashable) -> Formula:
        """The formula asserting ``a`` precedes ``b``."""
        return self._pair_var(self._index[a], self._index[b])

    def _assert_axioms(self) -> None:
        n = len(self.elements)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                for k in range(n):
                    if k == i or k == j:
                        continue
                    self.builder.add(
                        Implies(
                            self._pair_var(i, j) & self._pair_var(j, k),  # type: ignore[operator]
                            self._pair_var(i, k),
                        )
                    )

    def require(self, pairs: Iterable[Tuple[Hashable, Hashable]]) -> None:
        """Assert fixed precedences (e.g. same-transaction program order)."""
        for a, b in pairs:
            self.builder.add(self.before(a, b))

    def extract(self, model: Dict[str, bool]) -> List[Hashable]:
        """Read back a linearisation of the elements from a SAT model."""

        def key(e: Hashable) -> int:
            i = self._index[e]
            return sum(
                1
                for other in self.elements
                if other != e
                and _holds(self._pair_var(self._index[other], i), model)
            )

        return sorted(self.elements, key=key)


def _holds(formula: Formula, model: Dict[str, bool]) -> bool:
    from repro.smt.formula import evaluate

    return evaluate(formula, model)
