"""Preprocessing: command splitting (Section 5).

An update assigning several fields may participate in several anomalous
access pairs through different field subsets; splitting it into one
update per field group lets each group be repaired independently (the
paper splits ``U4`` into ``U4.1``/``U4.2`` before repairing ``regSt``).

The split is skipped when the separated field groups are accessed
together by some other command -- separating them there would create a
brand-new fractured observation.

The two halves are exposed separately so the plan IR can record splits
as explicit, replayable steps: :func:`split_plans` computes *what* to
split (needs the anomaly pairs), :func:`split_update` performs one
split (pure program surgery, no oracle required).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.analysis.oracle import AccessPair
from repro.lang import ast
from repro.lang.traverse import rewrite_program_commands


def preprocess(program: ast.Program, pairs: Sequence[AccessPair]) -> ast.Program:
    """Split multi-field updates so each command joins at most one pair."""
    plans = split_plans(program, pairs)
    for (txn_name, label), groups in sorted(plans.items()):
        program = split_update(program, txn_name, label, groups)
    return program


def split_update(
    program: ast.Program,
    txn_name: str,
    label: str,
    groups: Sequence[Tuple[str, ...]],
) -> ast.Program:
    """Split the update labelled ``label`` in ``txn_name`` into one update
    per field group (labels ``label.1``, ``label.2``, ...)."""

    def on_command(cmd: ast.Command):
        if not isinstance(cmd, ast.Update):
            return None
        if cmd.label != label or not _command_in_txn(program, txn_name, cmd):
            return None
        out: List[ast.Command] = []
        for i, group in enumerate(groups, start=1):
            assignments = tuple(
                (f, e) for f, e in cmd.assignments if f in group
            )
            out.append(
                replace(cmd, assignments=assignments, label=f"{cmd.label}.{i}")
            )
        return out

    return rewrite_program_commands(program, on_command)


def _command_in_txn(program: ast.Program, txn_name: str, cmd: ast.Command) -> bool:
    txn = program.transaction(txn_name)
    return any(c is cmd for c in ast.iter_db_commands(txn))


def split_plans(
    program: ast.Program, pairs: Sequence[AccessPair]
) -> Dict[Tuple[str, str], List[Tuple[str, ...]]]:
    """Compute, per (txn, update label), the ordered field groups to split
    into.  Only commands involved in >= 2 pairs with distinct field
    subsets are split."""
    involvement: Dict[Tuple[str, str], List[FrozenSet[str]]] = {}
    for pair in pairs:
        for label, fields in ((pair.c1, pair.fields1), (pair.c2, pair.fields2)):
            involvement.setdefault((pair.txn, label), []).append(frozenset(fields))

    plans: Dict[Tuple[str, str], List[Tuple[str, ...]]] = {}
    for (txn_name, label), field_sets in involvement.items():
        cmd = _find_update(program, txn_name, label)
        if cmd is None:
            continue
        assigned = [f for f, _ in cmd.assignments]
        groups = _partition(assigned, field_sets)
        if len(groups) < 2:
            continue
        if _accessed_together_elsewhere(program, txn_name, label, cmd.table, groups):
            continue
        plans[(txn_name, label)] = [
            tuple(f for f in assigned if f in group) for group in groups
        ]
    return plans


def _find_update(program: ast.Program, txn_name: str, label: str):
    txn = program.transaction(txn_name)
    for cmd in ast.iter_db_commands(txn):
        if isinstance(cmd, ast.Update) and cmd.label == label:
            return cmd
    return None


def _partition(
    assigned: List[str], field_sets: List[FrozenSet[str]]
) -> List[Set[str]]:
    """Group assigned fields by the set of pairs that touch them.

    Fields sharing exactly the same pair membership stay together;
    untouched fields form their own trailing group.
    """
    signature: Dict[str, Tuple[int, ...]] = {}
    for f in assigned:
        signature[f] = tuple(
            i for i, fs in enumerate(field_sets) if f in fs
        )
    groups: List[Set[str]] = []
    seen: Dict[Tuple[int, ...], Set[str]] = {}
    for f in assigned:
        sig = signature[f]
        if sig not in seen:
            seen[sig] = set()
            groups.append(seen[sig])
        seen[sig].add(f)
    return [g for g in groups if g]


def _accessed_together_elsewhere(
    program: ast.Program,
    txn_name: str,
    label: str,
    table: str,
    groups: List[Set[str]],
) -> bool:
    """True when some other command reads/writes fields from two distinct
    groups on the same table -- splitting would then manufacture a new
    fractured observation for that command."""
    for txn in program.transactions:
        for cmd in ast.iter_db_commands(txn):
            if txn.name == txn_name and getattr(cmd, "label", "") == label:
                continue
            if getattr(cmd, "table", None) != table:
                continue
            accessed: Set[str] = set()
            if isinstance(cmd, ast.Select):
                accessed = set(cmd.selected_fields(program.schema(table)))
            elif isinstance(cmd, (ast.Update, ast.Insert)):
                accessed = set(cmd.written_fields)
            touched = [bool(accessed & g) for g in groups]
            if sum(touched) >= 2:
                return True
    return False
