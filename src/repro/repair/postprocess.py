"""Postprocessing: dead-code elimination and final merging (Section 5).

After the per-anomaly repairs:

1. repeatedly merge any remaining mergeable command pairs (repairs often
   leave adjacent commands on the same record, e.g. ``S1``/``S3'`` in
   ``getSt``);
2. remove selects whose result variable is never used (the paper's
   obsolete ``S5`` after the logger rewrite);
3. dissolve tables that no command accesses anymore, provided every
   non-key field is recoverable through a recorded value correspondence
   (information preservation), and scrub dangling ``ref`` annotations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence, Set

from repro.lang import ast
from repro.lang.traverse import accessed_tables, used_vars
from repro.refactor.correspondence import ValueCorrespondence
from repro.repair.merging import try_merging


def postprocess(
    program: ast.Program,
    correspondences: Sequence[ValueCorrespondence] = (),
) -> ast.Program:
    changed = True
    while changed:
        changed = False
        merged = _merge_pass(program)
        if merged is not None:
            program = merged
            changed = True
        pruned = _dead_select_pass(program)
        if pruned is not None:
            program = pruned
            changed = True
    program = _drop_dead_tables(program, correspondences)
    return program


def _merge_pass(program: ast.Program) -> Optional[ast.Program]:
    """One successful merge anywhere, or None."""
    for txn in program.transactions:
        labels = [
            cmd.label
            for cmd in txn.body
            if isinstance(cmd, (ast.Select, ast.Update)) and cmd.label
        ]
        for i in range(len(labels)):
            for j in range(i + 1, len(labels)):
                result = try_merging(program, txn.name, labels[i], labels[j])
                if result is not None:
                    return result
    return None


def _dead_select_pass(program: ast.Program) -> Optional[ast.Program]:
    """Remove one dead select anywhere, or None."""
    for txn in program.transactions:
        live = used_vars(txn)
        new_body: List[ast.Command] = []
        removed = False
        for cmd in txn.body:
            if isinstance(cmd, ast.Select) and cmd.var not in live and not removed:
                removed = True
                continue
            new_body.append(cmd)
        if removed:
            return program.replace_transaction(replace(txn, body=tuple(new_body)))
    return None


def _drop_dead_tables(
    program: ast.Program, correspondences: Sequence[ValueCorrespondence]
) -> ast.Program:
    accessed: Set[str] = set()
    for txn in program.transactions:
        accessed |= accessed_tables(txn)
    covered = {(c.src_table, c.src_field) for c in correspondences}
    for schema in list(program.schemas):
        if schema.name in accessed:
            continue
        non_key = set(schema.non_key_fields)
        if not non_key:
            continue  # key-only tables carry no payload worth a schema? keep
        if all((schema.name, f) in covered for f in non_key):
            program = program.without_schema(schema.name)
    return _scrub_refs(program)


def _scrub_refs(program: ast.Program) -> ast.Program:
    """Drop ref annotations pointing at removed tables."""
    names = set(program.schema_names)
    new_schemas = []
    for schema in program.schemas:
        refs = tuple(
            (f, target) for f, target in schema.refs if target[0] in names
        )
        new_schemas.append(replace(schema, refs=refs) if refs != schema.refs else schema)
    return replace(program, schemas=tuple(new_schemas))
