"""The repair procedure (Section 5, Figure 10), planned and searched.

``repair(P)`` runs the full pipeline:

1. detect anomalous access pairs with the oracle ``O``;
2. **preprocess**: split multi-field updates so each command sits in at
   most one anomalous pair (skipped when the split fields are accessed
   together elsewhere);
3. for each pair, search for a repair among the rule applications of
   Figure 10: merge same-schema commands whose where clauses provably
   address the same records; otherwise redirect one command's schema
   onto the other's (via a declared reference path) and merge;
   otherwise translate a read-modify-write update into a logging
   insert;
4. **postprocess**: merge remaining mergeable commands, drop dead
   selects, and dissolve tables whose entire payload moved elsewhere.

Since PR 3 the repair is built as a first-class, serializable
:class:`~repro.repair.plan.RewritePlan` (see :mod:`repro.repair.plan`)
found by a pluggable search strategy (:mod:`repro.repair.search`):
``greedy`` (the default, reproducing the paper's control flow),
``beam`` (cost-guided), or ``random`` (the Appendix A.3 baseline).

The result is a :class:`~repro.repair.engine.RepairReport` carrying the
repaired program, the plan that produced it (replayable on the pristine
program via :func:`~repro.repair.engine.replay_plan` or
``report.plan.apply``), the accumulated value correspondences and
rewrites (for data migration and containment checking), per-pair
outcomes, and the residual anomalies.
"""

from repro.repair.engine import RepairReport, repair, replay_plan
from repro.repair.plan import (
    IntroFieldStep,
    IntroSchemaStep,
    LoggerStep,
    MergeStep,
    PlanContext,
    PostprocessStep,
    RedirectStep,
    RewritePlan,
    RewriteStep,
    SplitStep,
)
from repro.repair.search import (
    BeamSearch,
    CostModel,
    GreedySearch,
    RandomSearch,
    RepairOutcome,
    SearchResult,
    resolve_search,
    simulated_throughput_probe,
)
from repro.repair.preprocess import preprocess
from repro.repair.postprocess import postprocess
from repro.repair.merging import try_merging, where_equivalent

__all__ = [
    "RepairOutcome",
    "RepairReport",
    "repair",
    "replay_plan",
    "RewritePlan",
    "RewriteStep",
    "PlanContext",
    "SplitStep",
    "MergeStep",
    "RedirectStep",
    "LoggerStep",
    "IntroSchemaStep",
    "IntroFieldStep",
    "PostprocessStep",
    "GreedySearch",
    "BeamSearch",
    "RandomSearch",
    "SearchResult",
    "CostModel",
    "resolve_search",
    "simulated_throughput_probe",
    "preprocess",
    "postprocess",
    "try_merging",
    "where_equivalent",
]
