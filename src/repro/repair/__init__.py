"""The repair procedure (Section 5, Figure 10).

``repair(P)`` runs the full pipeline:

1. detect anomalous access pairs with the oracle ``O``;
2. **preprocess**: split multi-field updates so each command sits in at
   most one anomalous pair (skipped when the split fields are accessed
   together elsewhere);
3. for each pair, **try_repair**: merge same-schema commands whose where
   clauses provably address the same records; otherwise redirect one
   command's schema onto the other's (via a declared reference path) and
   merge; otherwise translate a read-modify-write update into a logging
   insert;
4. **postprocess**: merge remaining mergeable commands, drop dead
   selects, and dissolve tables whose entire payload moved elsewhere.

The result is a :class:`~repro.repair.engine.RepairReport` carrying the
repaired program, the accumulated value correspondences and rewrites
(for data migration and containment checking), per-pair outcomes, and
the residual anomalies.
"""

from repro.repair.engine import RepairOutcome, RepairReport, repair
from repro.repair.preprocess import preprocess
from repro.repair.postprocess import postprocess
from repro.repair.merging import try_merging, where_equivalent

__all__ = [
    "RepairOutcome",
    "RepairReport",
    "repair",
    "preprocess",
    "postprocess",
    "try_merging",
    "where_equivalent",
]
