"""The repair driver (Figure 10's ``repair``), now a thin shell.

The actual repair logic lives in two layers beneath this module:

- :mod:`repro.repair.plan` -- the rewrite-plan IR: every rule
  application (split, merge, redirect, logger, intro rho / intro rho.f,
  postprocess) is a serializable :class:`~repro.repair.plan.RewriteStep`
  with uniform ``applicable``/``apply``/``explain``, and a repair is a
  replayable :class:`~repro.repair.plan.RewritePlan`;
- :mod:`repro.repair.search` -- the planner: pluggable strategies
  (``greedy`` -- the default, reproducing the paper's Figure 10 control
  flow exactly; ``beam``; ``random``) searched under a
  :class:`~repro.repair.search.CostModel`.

The engine's job is reduced to: own the anomaly oracle (with its
execution strategy and caches), hand the program to a search strategy,
and wrap the result in a :class:`RepairReport`.  Label-rename threading
across chained merges -- formerly the engine's private ``_current`` /
``_note_merge`` dictionaries -- is handled by
:class:`~repro.repair.plan.PlanContext` inside the plan layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Union

from repro.analysis.consistency import EC, ConsistencyLevel
from repro.analysis.oracle import AccessPair, AnomalyOracle
from repro.lang import ast
from repro.refactor.correspondence import ValueCorrespondence
from repro.refactor.logger import LoggerRewrite
from repro.refactor.redirect import RedirectRewrite
from repro.repair.plan import RewritePlan
from repro.repair.search import RepairOutcome, resolve_search

Rewrite = Union[RedirectRewrite, LoggerRewrite]


@dataclass
class RepairReport:
    """Complete output of the repair pipeline."""

    original_program: ast.Program
    repaired_program: ast.Program
    initial_pairs: List[AccessPair]
    residual_pairs: List[AccessPair]
    outcomes: List[RepairOutcome]
    correspondences: List[ValueCorrespondence]
    rewrites: List[Rewrite]
    elapsed_seconds: float
    # Plan provenance: replaying `plan` on `original_program` reproduces
    # `repaired_program` byte-for-byte (via the printer).
    plan: RewritePlan = RewritePlan()
    strategy: str = "greedy"
    # Strategy-specific extras passed through from the search (random:
    # per-round anomaly counts; beam: the score trajectory).
    extras: dict = field(default_factory=dict)

    @property
    def repaired_count(self) -> int:
        return len(self.initial_pairs) - len(self.residual_pairs)

    @property
    def repair_ratio(self) -> float:
        if not self.initial_pairs:
            return 1.0
        return self.repaired_count / len(self.initial_pairs)

    def serializable_variant(self) -> ast.Program:
        """The AT-SC program: transactions still carrying anomalies are
        marked ``serializable``; the rest stay weakly consistent."""
        flagged = {p.txn for p in self.residual_pairs}
        txns = tuple(
            replace(t, serializable=True) if t.name in flagged else t
            for t in self.repaired_program.transactions
        )
        return replace(self.repaired_program, transactions=txns)

    def summary(self) -> str:
        lines = [
            f"anomalous pairs: {len(self.initial_pairs)} -> "
            f"{len(self.residual_pairs)} "
            f"({self.repair_ratio:.0%} repaired)",
            f"tables: {len(self.original_program.schemas)} -> "
            f"{len(self.repaired_program.schemas)}",
            f"time: {self.elapsed_seconds:.2f}s",
        ]
        for outcome in self.outcomes:
            lines.append(f"  [{outcome.action}] {outcome.pair.describe()}")
        return "\n".join(lines)


class RepairEngine:
    """Stateful driver for one repair run.

    ``strategy``/``cache`` configure the anomaly oracle's execution
    pipeline (see :class:`~repro.analysis.oracle.AnomalyOracle`); with a
    caching strategy repeated re-analyses across the search only
    re-solve queries whose transactions a rewrite actually touched, and
    with ``strategy="incremental"`` every re-analysis shares one warm
    solver session per focus triple -- which is what makes cost-guided
    searches (``search="beam"``) affordable: every candidate plan's
    residual count lands on the same
    :class:`~repro.analysis.oracle.OracleSession` pool.  On multi-core
    hosts ``strategy="parallel-incremental"`` goes further: beam search
    scores each candidate generation through one batched oracle call, so
    the generation's queries fan out across the sharded warm-session
    workers concurrently.

    ``search`` selects the plan-search strategy: ``"greedy"`` (default;
    reproduces the historical engine exactly), ``"beam"``, ``"random"``,
    or any instance with a ``search(program, oracle)`` method (see
    :func:`repro.repair.search.resolve_search`).  ``search_options`` are
    forwarded to the named strategy's constructor (e.g. ``width`` and
    ``cost_model`` for beam).
    """

    def __init__(
        self,
        level: ConsistencyLevel = EC,
        use_prefilter: bool = True,
        strategy: object = "serial",
        cache: Optional[object] = None,
        search: object = "greedy",
        max_workers: Optional[int] = None,
        progress=None,
        budget=None,
        **search_options: object,
    ):
        self.oracle = AnomalyOracle(
            level,
            use_prefilter,
            strategy=strategy,
            cache=cache,
            max_workers=max_workers,
            progress=progress,
            budget=budget,
        )
        self.searcher = resolve_search(search, **search_options)
        # The bundled strategies declare a `progress` slot; custom
        # searchers may not -- observing them is best-effort.  Always
        # assign (None included): a caller-owned searcher reused across
        # engines must not keep emitting to a previous call's callback.
        try:
            self.searcher.progress = progress
        except AttributeError:  # pragma: no cover - exotic searcher
            pass

    def close(self) -> None:
        """Release the oracle's strategy resources (worker pools)."""
        self.oracle.close()

    def repair(self, program: ast.Program) -> RepairReport:
        result = self.searcher.search(program, self.oracle)
        return RepairReport(
            original_program=program,
            repaired_program=result.repaired_program,
            initial_pairs=result.initial_pairs,
            residual_pairs=result.residual_pairs,
            outcomes=result.outcomes,
            correspondences=list(result.context.correspondences),
            rewrites=list(result.context.rewrites),
            elapsed_seconds=result.elapsed_seconds,
            plan=result.plan,
            strategy=result.strategy,
            extras=dict(result.extras),
        )


def repair(
    program: ast.Program,
    level: ConsistencyLevel = EC,
    use_prefilter: bool = True,
    strategy: object = "serial",
    cache: Optional[object] = None,
    search: object = "greedy",
    max_workers: Optional[int] = None,
    progress=None,
    **search_options: object,
) -> RepairReport:
    """Run the full repair pipeline on ``program``.

    A strategy given by name is owned by this call and torn down (worker
    pools included) before returning; a strategy *instance* belongs to
    the caller and is left running for reuse.  ``max_workers`` sizes the
    process-pool strategies (``"parallel"``, ``"parallel-incremental"``,
    ``"auto"``); ``cache`` may be a
    :class:`~repro.analysis.pipeline.PersistentQueryCache` to warm-start
    the oracle from an earlier run's outcomes.
    """
    engine = RepairEngine(
        level,
        use_prefilter,
        strategy=strategy,
        cache=cache,
        search=search,
        max_workers=max_workers,
        progress=progress,
        **search_options,
    )
    try:
        return engine.repair(program)
    finally:
        if isinstance(strategy, str):
            engine.close()


def replay_plan(program: ast.Program, plan: RewritePlan) -> RepairReport:
    """Replay a serialized plan on ``program`` without any oracle work.

    The report's pair lists are empty (no analysis ran); the repaired
    program, correspondences, and rewrites are reproduced exactly.
    Raises :class:`~repro.errors.PlanError` when the plan does not fit.
    """
    import time

    start = time.perf_counter()
    application = plan.apply(program)
    return RepairReport(
        original_program=program,
        repaired_program=application.program,
        initial_pairs=[],
        residual_pairs=[],
        outcomes=[],
        correspondences=application.correspondences,
        rewrites=application.rewrites,
        elapsed_seconds=time.perf_counter() - start,
        plan=plan,
        strategy="replay",
    )
