"""The repair driver (Figure 10's ``repair`` / ``try_repair``).

The engine follows the paper's control flow exactly:

- same-kind, same-schema pairs go straight to merging;
- same-kind, cross-schema pairs first redirect one schema onto the other
  (needs a declared reference path for theta-hat), then merge;
- everything else (the select/update read-modify-write shape) goes to the
  logger translation.

All rewrites are applied program-wide; the engine tracks label renames so
later anomalies referring to merged-away commands still resolve.  The
returned :class:`RepairReport` carries everything downstream consumers
need: the repaired program, value correspondences and rewrites (for data
migration / containment checks), per-pair outcomes, and the residual
anomaly set whose transactions the AT-SC configuration pins to
serializable execution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.accesses import rmw_field, summarize_transaction
from repro.analysis.consistency import EC, ConsistencyLevel
from repro.analysis.oracle import AccessPair, AnomalyOracle
from repro.errors import RefactoringError
from repro.lang import ast
from repro.refactor.correspondence import ValueCorrespondence
from repro.refactor.logger import (
    LoggerRewrite,
    apply_logger,
    build_logger,
    logger_applicable,
)
from repro.refactor.redirect import (
    RedirectRewrite,
    apply_redirect,
    build_redirect,
    redirect_applicable,
)
from repro.repair.merging import try_merging
from repro.repair.postprocess import postprocess
from repro.repair.preprocess import preprocess

Rewrite = Union[RedirectRewrite, LoggerRewrite]


@dataclass
class RepairOutcome:
    """What happened to one anomalous access pair."""

    pair: AccessPair
    action: str  # merged | redirected | redirected+merged | logged | absorbed | unrepaired
    detail: str = ""


@dataclass
class RepairReport:
    """Complete output of the repair pipeline."""

    original_program: ast.Program
    repaired_program: ast.Program
    initial_pairs: List[AccessPair]
    residual_pairs: List[AccessPair]
    outcomes: List[RepairOutcome]
    correspondences: List[ValueCorrespondence]
    rewrites: List[Rewrite]
    elapsed_seconds: float

    @property
    def repaired_count(self) -> int:
        return len(self.initial_pairs) - len(self.residual_pairs)

    @property
    def repair_ratio(self) -> float:
        if not self.initial_pairs:
            return 1.0
        return self.repaired_count / len(self.initial_pairs)

    def serializable_variant(self) -> ast.Program:
        """The AT-SC program: transactions still carrying anomalies are
        marked ``serializable``; the rest stay weakly consistent."""
        flagged = {p.txn for p in self.residual_pairs}
        txns = tuple(
            replace(t, serializable=True) if t.name in flagged else t
            for t in self.repaired_program.transactions
        )
        return replace(self.repaired_program, transactions=txns)

    def summary(self) -> str:
        lines = [
            f"anomalous pairs: {len(self.initial_pairs)} -> "
            f"{len(self.residual_pairs)} "
            f"({self.repair_ratio:.0%} repaired)",
            f"tables: {len(self.original_program.schemas)} -> "
            f"{len(self.repaired_program.schemas)}",
            f"time: {self.elapsed_seconds:.2f}s",
        ]
        for outcome in self.outcomes:
            lines.append(f"  [{outcome.action}] {outcome.pair.describe()}")
        return "\n".join(lines)


class RepairEngine:
    """Stateful driver for one repair run.

    ``strategy``/``cache`` configure the anomaly oracle's execution
    pipeline (see :class:`~repro.analysis.oracle.AnomalyOracle`).  With a
    caching strategy the engine's repeated re-analyses -- after
    preprocessing and after the repair loop -- only re-solve queries
    whose transactions a rewrite actually touched: untouched transaction
    pairs fingerprint identically and hit the memo cache, while a
    renamed/merged command changes its transaction's fingerprint and so
    invalidates exactly the entries that mention it.  (Entries for
    superseded program versions stay until ``cache.invalidate``/``clear``
    -- they are unreachable by construction, merely occupying memory.)

    With ``strategy="incremental"`` the engine additionally keeps one
    warm solver session per focus triple across the whole fixpoint: the
    oracle instance (and so its strategy's
    :class:`~repro.analysis.oracle.OracleSession` pool) is shared by
    every re-analysis, so a query that misses the memo cache only
    because it runs at a new consistency level lands on the previous
    iteration's solver -- skeleton already encoded, learned clauses and
    activity retained -- and reduces to one assumption-based solve.
    """

    def __init__(
        self,
        level: ConsistencyLevel = EC,
        use_prefilter: bool = True,
        strategy: object = "serial",
        cache: Optional[object] = None,
    ):
        self.oracle = AnomalyOracle(
            level, use_prefilter, strategy=strategy, cache=cache
        )
        # (txn, original label) -> current label after merges.
        self._label_map: Dict[Tuple[str, str], str] = {}
        # Secondary rewrites produced by hub redirection (two rewrites
        # repair one pair); drained into the report after each pair.
        self._extra_rewrites: List[Rewrite] = []
        self._extra_correspondences: List[ValueCorrespondence] = []

    def close(self) -> None:
        """Release the oracle's strategy resources (worker pools)."""
        self.oracle.close()

    # -- label bookkeeping -------------------------------------------------

    def _current(self, txn: str, label: str) -> str:
        seen = set()
        while (txn, label) in self._label_map and label not in seen:
            seen.add(label)
            label = self._label_map[(txn, label)]
        return label

    def _note_merge(self, txn: str, winner: str, loser: str) -> None:
        self._label_map[(txn, loser)] = winner

    # -- main algorithm ------------------------------------------------------

    def repair(self, program: ast.Program) -> RepairReport:
        start = time.perf_counter()
        original = program
        initial_report = self.oracle.analyze(program)
        program = preprocess(program, initial_report.pairs)
        if program is original:
            # Preprocessing split nothing; analysis is deterministic, so
            # re-running it would reproduce the initial report verbatim.
            pairs = list(initial_report.pairs)
        else:
            # Re-detect: splitting renamed command labels.
            pairs = self.oracle.analyze(program).pairs
        pairs = sorted(pairs, key=lambda p: (p.txn, p.c1, p.c2))

        outcomes: List[RepairOutcome] = []
        correspondences: List[ValueCorrespondence] = []
        rewrites: List[Rewrite] = []
        for pair in pairs:
            result = self.try_repair(program, pair)
            if result is None:
                outcomes.append(RepairOutcome(pair, "unrepaired"))
                continue
            program, action, new_corrs, new_rewrites = result
            outcomes.append(RepairOutcome(pair, action))
            correspondences.extend(new_corrs)
            rewrites.extend(new_rewrites)
            if self._extra_rewrites:
                rewrites.extend(self._extra_rewrites)
                correspondences.extend(self._extra_correspondences)
                self._extra_rewrites = []
                self._extra_correspondences = []

        program = postprocess(program, correspondences)
        residual = self.oracle.analyze(program).pairs
        elapsed = time.perf_counter() - start
        return RepairReport(
            original_program=original,
            repaired_program=program,
            initial_pairs=pairs,
            residual_pairs=residual,
            outcomes=outcomes,
            correspondences=correspondences,
            rewrites=rewrites,
            elapsed_seconds=elapsed,
        )

    def try_repair(
        self, program: ast.Program, pair: AccessPair
    ) -> Optional[Tuple[ast.Program, str, List[ValueCorrespondence], List[Rewrite]]]:
        """One application of Figure 10's ``try_repair``; None on failure."""
        txn_name = pair.txn
        label1 = self._current(txn_name, pair.c1)
        label2 = self._current(txn_name, pair.c2)
        if label1 == label2:
            return program, "absorbed", [], []
        c1 = _find_command(program, txn_name, label1)
        c2 = _find_command(program, txn_name, label2)
        if c1 is None or c2 is None:
            return None

        if _same_kind(c1, c2):
            if c1.table == c2.table:  # type: ignore[union-attr]
                merged = try_merging(program, txn_name, label1, label2)
                if merged is not None:
                    self._note_merge(txn_name, label1, label2)
                    return merged, "merged", [], []
                return None
            redirected = self._try_redirect(program, txn_name, c1, c2)
            if redirected is not None:
                program, corrs, rewrite = redirected
                merged = try_merging(program, txn_name, label1, label2)
                if merged is not None:
                    self._note_merge(txn_name, label1, label2)
                    return merged, "redirected+merged", corrs, [rewrite]
                return program, "redirected", corrs, [rewrite]
            return None
        return self._try_logging(program, txn_name, c1, c2)

    # -- redirect ------------------------------------------------------------

    def _try_redirect(
        self,
        program: ast.Program,
        txn_name: str,
        c1: ast.Command,
        c2: ast.Command,
    ) -> Optional[Tuple[ast.Program, List[ValueCorrespondence], Rewrite]]:
        """Redirect c2's schema into c1's (then reverse, then via a hub).

        The moved field set is closed under accessed-together fields: if
        some select retrieves a moved field alongside other payload
        fields of the source table, those are moved too, so every access
        site remains expressible after the rewrite.
        """
        for src_cmd, dst_cmd in ((c2, c1), (c1, c2)):
            result = self._redirect_into(program, src_cmd, dst_cmd.table)  # type: ignore[union-attr]
            if result is not None:
                return result
        # Common hub: both tables fold into a third one that declares (or
        # is declared by) reference paths to each -- e.g. SAVINGS and
        # CHECKING both keyed by ACCOUNTS.custid.
        hub = self._redirect_into_hub(program, txn_name, c1, c2)
        if hub is not None:
            return hub
        return None

    def _redirect_into(
        self, program: ast.Program, src_cmd: ast.Command, dst_table: str
    ) -> Optional[Tuple[ast.Program, List[ValueCorrespondence], Rewrite]]:
        fields = _accessed_payload_fields(program, src_cmd)
        if not fields or src_cmd.table == dst_table:  # type: ignore[union-attr]
            return None
        fields = _close_accessed_together(program, src_cmd.table, fields)  # type: ignore[union-attr]
        rewrite = build_redirect(program, src_cmd.table, dst_table, fields)  # type: ignore[union-attr]
        if rewrite is None or redirect_applicable(program, rewrite) is not None:
            return None
        try:
            new_program, corrs = apply_redirect(program, rewrite)
        except RefactoringError:
            return None
        return new_program, corrs, rewrite

    def _redirect_into_hub(
        self,
        program: ast.Program,
        txn_name: str,
        c1: ast.Command,
        c2: ast.Command,
    ) -> Optional[Tuple[ast.Program, List[ValueCorrespondence], Rewrite]]:
        for hub in program.schema_names:
            if hub in (c1.table, c2.table):  # type: ignore[union-attr]
                continue
            first = self._redirect_into(program, c1, hub)
            if first is None:
                continue
            program1, corrs1, rewrite1 = first
            c2_now = _find_command(program1, txn_name, getattr(c2, "label", ""))
            if c2_now is None:
                continue
            second = self._redirect_into(program1, c2_now, hub)
            if second is None:
                continue
            program2, corrs2, rewrite2 = second
            # Record both rewrites; report the first, stash the second.
            self._extra_rewrites.append(rewrite2)
            self._extra_correspondences.extend(corrs2)
            return program2, corrs1, rewrite1
        return None

    # -- logging ---------------------------------------------------------------

    def _try_logging(
        self,
        program: ast.Program,
        txn_name: str,
        c1: ast.Command,
        c2: ast.Command,
    ) -> Optional[Tuple[ast.Program, str, List[ValueCorrespondence], List[Rewrite]]]:
        select, update = (c1, c2) if isinstance(c1, ast.Select) else (c2, c1)
        if not isinstance(select, ast.Select) or not isinstance(update, ast.Update):
            return None
        txn = program.transaction(txn_name)
        summary = summarize_transaction(program, txn)
        try:
            info_r = summary.command(select.label)
            info_w = summary.command(update.label)
        except KeyError:
            return None
        f = rmw_field(summary, info_r, info_w)
        if f is None:
            return None
        rewrite = build_logger(program, update.table, f)
        if logger_applicable(program, rewrite) is not None:
            return None
        try:
            new_program, corrs = apply_logger(program, rewrite)
        except RefactoringError:
            return None
        return new_program, "logged", corrs, [rewrite]


def repair(
    program: ast.Program,
    level: ConsistencyLevel = EC,
    use_prefilter: bool = True,
    strategy: object = "serial",
    cache: Optional[object] = None,
) -> RepairReport:
    """Run the full repair pipeline on ``program``.

    A strategy given by name is owned by this call and torn down (worker
    pools included) before returning; a strategy *instance* belongs to
    the caller and is left running for reuse.
    """
    engine = RepairEngine(level, use_prefilter, strategy=strategy, cache=cache)
    try:
        return engine.repair(program)
    finally:
        if isinstance(strategy, str):
            engine.close()


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _find_command(
    program: ast.Program, txn_name: str, label: str
) -> Optional[ast.Command]:
    try:
        txn = program.transaction(txn_name)
    except KeyError:
        return None
    for cmd in ast.iter_db_commands(txn):
        if getattr(cmd, "label", "") == label:
            return cmd
    return None


def _same_kind(c1: ast.Command, c2: ast.Command) -> bool:
    kinds = {type(c1), type(c2)}
    return kinds == {ast.Select} or kinds == {ast.Update}


def _close_accessed_together(
    program: ast.Program, table: str, fields: List[str]
) -> List[str]:
    """Close the moved-field set under 'retrieved by the same select':
    if any select pulls a moved field together with other payload fields
    of the table, those fields must move too or the select has no home."""
    schema = program.schema(table)
    moved = set(fields)
    changed = True
    while changed:
        changed = False
        for txn in program.transactions:
            for cmd in ast.iter_db_commands(txn):
                if getattr(cmd, "table", None) != table:
                    continue
                if isinstance(cmd, ast.Select):
                    accessed = {
                        f for f in cmd.selected_fields(schema) if f not in schema.key
                    }
                elif isinstance(cmd, ast.Update):
                    accessed = {
                        f for f in cmd.written_fields if f not in schema.key
                    }
                else:
                    continue
                if accessed & moved and not accessed <= moved:
                    moved |= accessed
                    changed = True
    return [f for f in schema.fields if f in moved]


def _accessed_payload_fields(program: ast.Program, cmd: ast.Command) -> List[str]:
    """Non-key fields the command accesses on its table."""
    schema = program.schema(cmd.table)  # type: ignore[union-attr]
    if isinstance(cmd, ast.Select):
        accessed = cmd.selected_fields(schema)
    elif isinstance(cmd, ast.Update):
        accessed = cmd.written_fields
    else:
        return []
    return [f for f in accessed if f not in schema.key]
