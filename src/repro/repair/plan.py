"""The rewrite-plan IR: repairs as first-class, serializable programs.

A repair is no longer something the engine *does* to an AST; it is a
:class:`RewritePlan` -- an ordered sequence of :class:`RewriteStep`\\ s --
that can be searched over, scored, serialized to JSON, shipped around,
and replayed on the pristine program to reproduce the repaired program
byte-for-byte (via :func:`repro.lang.printer.print_program`).

Mapping back to the paper's refactoring calculus (Figure 8) and repair
procedure (Section 5 / Figure 10):

=====================  ======================================================
Step                   Paper rule
=====================  ======================================================
:class:`IntroSchemaStep`  ``intro rho`` -- add a fresh schema.
:class:`IntroFieldStep`   ``intro rho.f`` -- add a fresh field to a schema.
:class:`RedirectStep`     ``intro v`` instantiated with the **redirect**
                          rewrite ``[[.]]_v`` (Section 4.2.1, aggregator
                          ``any``); implicitly performs its ``intro rho.f``
                          obligations for fresh target fields.
:class:`LoggerStep`       ``intro v`` instantiated with the **logger**
                          rewrite (Section 4.2.2, aggregator ``sum``);
                          implicitly performs ``intro rho`` for the fresh
                          logging schema.
:class:`MergeStep`        Figure 10's ``try_merging`` (condition R1).
:class:`SplitStep`        Section 5 preprocessing (command splitting,
                          ``U4`` -> ``U4.1``/``U4.2``).
:class:`PostprocessStep`  Section 5 postprocessing (final merges, dead
                          select elimination, dissolving fully-migrated
                          tables).
=====================  ======================================================

Every step exposes the same three-method protocol:

- ``applicable(program, ctx)`` -- a human-readable reason the step cannot
  run here, or None when it can;
- ``apply(program, ctx)`` -- the rewritten program (raising
  :class:`~repro.errors.PlanError` when inapplicable), recording produced
  rewrites/correspondences and label renames into the
  :class:`PlanContext`;
- ``explain()`` -- one line of provenance for reports.

Label-rename threading lives in :class:`PlanContext`: merging ``l2``
into ``l1`` records ``l2 -> l1`` so later steps (and the search loop's
anomaly pairs) that still name ``l2`` resolve to the surviving command,
including chains of merges.  This replaces the old
``RepairEngine._current`` / ``_note_merge`` private bookkeeping.

JSON format (``RewritePlan.to_json``)::

    {"version": 1,
     "steps": [{"step": "split", "txn": "regSt", "label": "U4",
                "groups": [["st_co_id", "st_reg"], ["..."]]},
               {"step": "redirect", "src_table": "EMAIL",
                "dst_table": "STUDENT", "fields": ["em_addr"]},
               {"step": "merge", "txn": "getSt",
                "label1": "S1", "label2": "S2"},
               {"step": "logger", "table": "COURSE", "field": "co_st_cnt"},
               {"step": "postprocess"}]}

Steps deliberately store *surface* identifiers (table/field/label names)
rather than resolved AST nodes: replaying the same step sequence from
the same starting program deterministically rebuilds the same rewrites,
which is what makes a plan a reproducible artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type, Union

from repro.errors import PlanError, RefactoringError
from repro.lang import ast
from repro.refactor.correspondence import ValueCorrespondence
from repro.refactor.logger import (
    LoggerRewrite,
    apply_logger,
    build_logger,
    logger_applicable,
)
from repro.refactor.redirect import (
    RedirectRewrite,
    apply_redirect,
    build_redirect,
    redirect_applicable,
)
from repro.refactor.rules import intro_field, intro_schema
from repro.repair.merging import try_merging
from repro.repair.postprocess import postprocess
from repro.repair.preprocess import split_update

Rewrite = Union[RedirectRewrite, LoggerRewrite]

PLAN_FORMAT_VERSION = 1


@dataclass
class PlanContext:
    """Mutable state threaded through a plan application.

    ``label_map`` maps ``(txn, merged-away label) -> surviving label``;
    :meth:`current` chases chains so a label renamed by several merges
    still resolves.  ``rewrites`` and ``correspondences`` accumulate the
    artifacts downstream consumers (data migration, containment checks)
    need, in application order.
    """

    label_map: Dict[Tuple[str, str], str] = field(default_factory=dict)
    correspondences: List[ValueCorrespondence] = field(default_factory=list)
    rewrites: List[Rewrite] = field(default_factory=list)

    def current(self, txn: str, label: str) -> str:
        """Resolve ``label`` through every merge recorded so far."""
        seen = set()
        while (txn, label) in self.label_map and label not in seen:
            seen.add(label)
            label = self.label_map[(txn, label)]
        return label

    def note_merge(self, txn: str, winner: str, loser: str) -> None:
        self.label_map[(txn, loser)] = winner

    def clone(self) -> "PlanContext":
        """Independent copy for speculative (search) application."""
        return PlanContext(
            label_map=dict(self.label_map),
            correspondences=list(self.correspondences),
            rewrites=list(self.rewrites),
        )


class RewriteStep:
    """Base of the step protocol; subclasses are frozen dataclasses."""

    kind: str = "?"

    def applicable(self, program: ast.Program, ctx: PlanContext) -> Optional[str]:
        """Reason this step cannot be applied here, or None when it can."""
        raise NotImplementedError

    def apply(self, program: ast.Program, ctx: PlanContext) -> ast.Program:
        """Apply the step; raises :class:`PlanError` when inapplicable."""
        raise NotImplementedError

    def explain(self) -> str:
        raise NotImplementedError

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        data = {"step": self.kind}
        data.update(self._payload())
        return data

    def _payload(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_json(data: dict) -> "RewriteStep":
        kind = data.get("step")
        cls = _STEP_KINDS.get(kind)
        if cls is None:
            raise PlanError(f"unknown plan step kind {kind!r}")
        try:
            return cls._decode(data)
        except (KeyError, TypeError) as exc:
            raise PlanError(f"malformed {kind} step: {exc}") from exc


@dataclass(frozen=True)
class SplitStep(RewriteStep):
    """Split a multi-field update into one update per field group."""

    txn: str
    label: str
    groups: Tuple[Tuple[str, ...], ...]

    kind = "split"

    def applicable(self, program, ctx):
        label = ctx.current(self.txn, self.label)
        cmd = _find_command(program, self.txn, label)
        if not isinstance(cmd, ast.Update):
            return f"{self.txn}/{label} is not an update"
        assigned = [f for f, _ in cmd.assignments]
        flat = [f for group in self.groups for f in group]
        if sorted(flat) != sorted(assigned):
            return (
                f"{self.txn}/{label}: groups {flat} do not partition "
                f"assigned fields {assigned}"
            )
        return None

    def apply(self, program, ctx):
        _check(self, program, ctx)
        return split_update(
            program, self.txn, ctx.current(self.txn, self.label), self.groups
        )

    def explain(self):
        groups = " | ".join("{" + ", ".join(g) + "}" for g in self.groups)
        return f"split {self.txn}/{self.label} into {groups}"

    def _payload(self):
        return {
            "txn": self.txn,
            "label": self.label,
            "groups": [list(g) for g in self.groups],
        }

    @classmethod
    def _decode(cls, data):
        return cls(
            txn=data["txn"],
            label=data["label"],
            groups=tuple(tuple(g) for g in data["groups"]),
        )


@dataclass(frozen=True)
class MergeStep(RewriteStep):
    """Merge the command labelled ``label2`` with ``label1`` (R1)."""

    txn: str
    label1: str
    label2: str

    kind = "merge"

    def applicable(self, program, ctx):
        l1 = ctx.current(self.txn, self.label1)
        l2 = ctx.current(self.txn, self.label2)
        if l1 == l2:
            return f"{self.txn}: {self.label1} and {self.label2} already merged"
        if try_merging(program, self.txn, l1, l2) is None:
            return f"{self.txn}: {l1} and {l2} are not mergeable"
        return None

    def apply(self, program, ctx):
        l1 = ctx.current(self.txn, self.label1)
        l2 = ctx.current(self.txn, self.label2)
        if l1 == l2:
            raise PlanError(
                f"merge step: {self.txn}: {self.label1} and {self.label2} "
                "already merged"
            )
        merged = try_merging(program, self.txn, l1, l2)
        if merged is None:
            raise PlanError(
                f"merge step: {self.txn}: {l1} and {l2} are not mergeable"
            )
        ctx.note_merge(self.txn, l1, l2)
        return merged

    def explain(self):
        return f"merge {self.txn}/{self.label2} into {self.txn}/{self.label1}"

    def _payload(self):
        return {"txn": self.txn, "label1": self.label1, "label2": self.label2}

    @classmethod
    def _decode(cls, data):
        return cls(txn=data["txn"], label1=data["label1"], label2=data["label2"])


@dataclass(frozen=True)
class RedirectStep(RewriteStep):
    """Relocate ``fields`` of ``src_table`` into ``dst_table`` (intro v,
    redirect instantiation); fresh target fields are intro rho.f'd."""

    src_table: str
    dst_table: str
    fields: Tuple[str, ...]

    kind = "redirect"

    def _build(self, program) -> Optional[RedirectRewrite]:
        if not program.has_schema(self.src_table) or not program.has_schema(
            self.dst_table
        ):
            return None
        return build_redirect(program, self.src_table, self.dst_table, self.fields)

    def applicable(self, program, ctx):
        rewrite = self._build(program)
        if rewrite is None:
            return (
                f"no theta-hat from {self.src_table} to {self.dst_table} "
                "(missing reference path)"
            )
        return redirect_applicable(program, rewrite)

    def apply(self, program, ctx):
        rewrite = self._build(program)
        if rewrite is None:
            raise PlanError(
                f"redirect step: no theta-hat from {self.src_table} "
                f"to {self.dst_table}"
            )
        try:
            new_program, corrs = apply_redirect(program, rewrite)
        except RefactoringError as exc:
            raise PlanError(f"redirect step: {exc}") from exc
        ctx.rewrites.append(rewrite)
        ctx.correspondences.extend(corrs)
        return new_program

    def explain(self):
        moved = ", ".join(self.fields)
        return f"redirect {self.src_table}.{{{moved}}} into {self.dst_table}"

    def _payload(self):
        return {
            "src_table": self.src_table,
            "dst_table": self.dst_table,
            "fields": list(self.fields),
        }

    @classmethod
    def _decode(cls, data):
        return cls(
            src_table=data["src_table"],
            dst_table=data["dst_table"],
            fields=tuple(data["fields"]),
        )


@dataclass(frozen=True)
class LoggerStep(RewriteStep):
    """Turn increments of ``table.field`` into log inserts (intro v,
    logger instantiation); the logging schema is intro rho'd."""

    table: str
    field: str

    kind = "logger"

    def _build(self, program) -> Optional[LoggerRewrite]:
        if not program.has_schema(self.table):
            return None
        return build_logger(program, self.table, self.field)

    def applicable(self, program, ctx):
        rewrite = self._build(program)
        if rewrite is None:
            return f"no schema named {self.table}"
        return logger_applicable(program, rewrite)

    def apply(self, program, ctx):
        rewrite = self._build(program)
        if rewrite is None:
            raise PlanError(f"logger step: no schema named {self.table}")
        try:
            new_program, corrs = apply_logger(program, rewrite)
        except RefactoringError as exc:
            raise PlanError(f"logger step: {exc}") from exc
        ctx.rewrites.append(rewrite)
        ctx.correspondences.extend(corrs)
        return new_program

    def explain(self):
        return f"log {self.table}.{self.field} (functional update)"

    def _payload(self):
        return {"table": self.table, "field": self.field}

    @classmethod
    def _decode(cls, data):
        return cls(table=data["table"], field=data["field"])


@dataclass(frozen=True)
class IntroSchemaStep(RewriteStep):
    """``intro rho``: add a fresh schema."""

    name: str
    key: Tuple[str, ...]
    fields: Tuple[str, ...] = ()

    kind = "intro_schema"

    def applicable(self, program, ctx):
        if program.has_schema(self.name):
            return f"schema {self.name} already exists"
        return None

    def apply(self, program, ctx):
        try:
            return intro_schema(program, self.name, self.key, self.fields)
        except RefactoringError as exc:
            raise PlanError(f"intro_schema step: {exc}") from exc

    def explain(self):
        return f"intro schema {self.name} (key {', '.join(self.key)})"

    def _payload(self):
        return {
            "name": self.name,
            "key": list(self.key),
            "fields": list(self.fields),
        }

    @classmethod
    def _decode(cls, data):
        return cls(
            name=data["name"],
            key=tuple(data["key"]),
            fields=tuple(data.get("fields", ())),
        )


@dataclass(frozen=True)
class IntroFieldStep(RewriteStep):
    """``intro rho.f``: add a fresh non-key field to a schema."""

    table: str
    field: str
    ref: Optional[Tuple[str, str]] = None

    kind = "intro_field"

    def applicable(self, program, ctx):
        if not program.has_schema(self.table):
            return f"no schema named {self.table}"
        if self.field in program.schema(self.table).fields:
            return f"{self.table}.{self.field} already exists"
        return None

    def apply(self, program, ctx):
        try:
            return intro_field(program, self.table, self.field, self.ref)
        except RefactoringError as exc:
            raise PlanError(f"intro_field step: {exc}") from exc

    def explain(self):
        suffix = f" ref {self.ref[0]}.{self.ref[1]}" if self.ref else ""
        return f"intro field {self.table}.{self.field}{suffix}"

    def _payload(self):
        data = {"table": self.table, "field": self.field}
        if self.ref is not None:
            data["ref"] = list(self.ref)
        return data

    @classmethod
    def _decode(cls, data):
        ref = data.get("ref")
        return cls(
            table=data["table"],
            field=data["field"],
            ref=tuple(ref) if ref else None,
        )


@dataclass(frozen=True)
class PostprocessStep(RewriteStep):
    """Section 5 postprocessing: final merges, dead-select elimination,
    dissolving tables whose payload is covered by the correspondences
    accumulated so far."""

    kind = "postprocess"

    def applicable(self, program, ctx):
        return None

    def apply(self, program, ctx):
        return postprocess(program, ctx.correspondences)

    def explain(self):
        return "postprocess (merge remainder, drop dead selects/tables)"

    def _payload(self):
        return {}

    @classmethod
    def _decode(cls, data):
        return cls()


_STEP_KINDS: Dict[str, Type[RewriteStep]] = {
    cls.kind: cls
    for cls in (
        SplitStep,
        MergeStep,
        RedirectStep,
        LoggerStep,
        IntroSchemaStep,
        IntroFieldStep,
        PostprocessStep,
    )
}


def _check(step: RewriteStep, program: ast.Program, ctx: PlanContext) -> None:
    reason = step.applicable(program, ctx)
    if reason is not None:
        raise PlanError(f"{step.kind} step: {reason}")


def _find_command(
    program: ast.Program, txn_name: str, label: str
) -> Optional[ast.Command]:
    try:
        txn = program.transaction(txn_name)
    except KeyError:
        return None
    for cmd in ast.iter_db_commands(txn):
        if getattr(cmd, "label", "") == label:
            return cmd
    return None


# ---------------------------------------------------------------------------
# The plan
# ---------------------------------------------------------------------------


@dataclass
class PlanApplication:
    """Result of replaying a plan: the rewritten program plus the
    accumulated artifacts (in application order)."""

    program: ast.Program
    correspondences: List[ValueCorrespondence]
    rewrites: List[Rewrite]
    context: PlanContext


@dataclass(frozen=True)
class RewritePlan:
    """An ordered, serializable sequence of rewrite steps."""

    steps: Tuple[RewriteStep, ...] = ()

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def extended(self, *steps: RewriteStep) -> "RewritePlan":
        return RewritePlan(self.steps + tuple(steps))

    def apply(
        self, program: ast.Program, ctx: Optional[PlanContext] = None
    ) -> PlanApplication:
        """Replay every step in order on ``program``.

        Raises :class:`PlanError` if any step is inapplicable at its
        position -- a plan either replays completely or not at all.
        """
        ctx = ctx if ctx is not None else PlanContext()
        for step in self.steps:
            program = step.apply(program, ctx)
        return PlanApplication(
            program=program,
            correspondences=list(ctx.correspondences),
            rewrites=list(ctx.rewrites),
            context=ctx,
        )

    def explain(self) -> str:
        """Multi-line provenance: one numbered line per step."""
        if not self.steps:
            return "(empty plan)"
        return "\n".join(
            f"{i:2d}. {step.explain()}" for i, step in enumerate(self.steps, 1)
        )

    # -- serialization -----------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": PLAN_FORMAT_VERSION,
            "steps": [step.to_json() for step in self.steps],
        }

    @staticmethod
    def from_json(data: dict) -> "RewritePlan":
        version = data.get("version")
        if version != PLAN_FORMAT_VERSION:
            raise PlanError(f"unsupported plan format version {version!r}")
        steps = data.get("steps")
        if not isinstance(steps, list):
            raise PlanError("plan JSON has no 'steps' list")
        return RewritePlan(tuple(RewriteStep.from_json(s) for s in steps))

    def dumps(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)

    @staticmethod
    def loads(text: str) -> "RewritePlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"plan JSON does not parse: {exc}") from exc
        if not isinstance(data, dict):
            raise PlanError("plan JSON must be an object")
        return RewritePlan.from_json(data)
