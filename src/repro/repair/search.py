"""Cost-guided search over rewrite plans (the planner behind Figure 10).

The repair problem is: given the anomaly oracle's access pairs, find a
:class:`~repro.repair.plan.RewritePlan` that removes as many anomalies
as possible without exploding the schema.  Three strategies share one
candidate generator (:func:`propose_candidates`, which enumerates the
rule applications of Figure 10 for one pair, in the paper's priority
order):

- :class:`GreedySearch` (default) -- takes the *first* applicable
  candidate per pair, exactly reproducing the historical engine's
  behaviour (merge; else redirect+merge, either direction, then via a
  hub; else logger).  No cost model consulted, no extra oracle calls.
- :class:`BeamSearch` -- keeps the ``width`` best plan prefixes per
  pair, scoring each with a :class:`CostModel`; can discover plans the
  greedy order misses (e.g. skipping a repair whose schema growth is
  not worth it).
- :class:`RandomSearch` -- the Appendix A.3 baseline: rounds of random
  rule draws, scored by the final anomaly count.  This is the one
  source of truth for random rewrites (``exp/random_search.py`` is a
  thin wrapper over it).

Cost model
----------

``CostModel.score`` combines the residual anomaly count (evaluated
through the oracle the caller provides -- use
``AnomalyOracle(strategy="incremental")`` so every candidate evaluation
lands on the warm per-triple solver sessions of
:class:`~repro.analysis.oracle.OracleSession`), a schema-growth term,
and an optional *simulated throughput* term: plug
:func:`simulated_throughput_probe` in to score candidate plans by the
closed-loop throughput of their AT-SC variant on the store simulator
(:func:`repro.store.runner.simulate`).

Beam search scores each generation of candidates through
``CostModel.evaluate_many``, which routes all candidates' residual
analyses into one ``oracle.analyze_many`` fan-out; with
``AnomalyOracle(strategy="parallel-incremental")`` the whole
generation's SAT queries run concurrently across the sharded
warm-session workers instead of one candidate at a time.  Scores (and
therefore search results) are identical under every execution strategy.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.accesses import rmw_field, summarize_transaction
from repro.analysis.oracle import AccessPair, AnomalyOracle
from repro.events import emit
from repro.errors import PlanError
from repro.lang import ast
from repro.repair.plan import (
    LoggerStep,
    MergeStep,
    PlanContext,
    PostprocessStep,
    RedirectStep,
    RewritePlan,
    RewriteStep,
    SplitStep,
    _find_command,
)
from repro.repair.preprocess import split_plans


@dataclass
class RepairOutcome:
    """What happened to one anomalous access pair."""

    pair: AccessPair
    action: str  # merged | redirected | redirected+merged | logged | absorbed | unrepaired
    detail: str = ""


@dataclass
class SearchResult:
    """Output of one plan search."""

    plan: RewritePlan
    repaired_program: ast.Program
    initial_pairs: List[AccessPair]
    residual_pairs: List[AccessPair]
    outcomes: List[RepairOutcome]
    context: PlanContext
    elapsed_seconds: float
    strategy: str = "greedy"
    # Strategy-specific extras (random: per-round anomaly counts;
    # beam: best score trajectory).
    extras: dict = field(default_factory=dict)


@dataclass
class Candidate:
    """One evaluated repair option for a pair: the steps plus the state
    reached by applying them."""

    action: str
    steps: Tuple[RewriteStep, ...]
    program: ast.Program
    ctx: PlanContext


# ---------------------------------------------------------------------------
# Candidate generation (the rule templates of Figure 10, per pair)
# ---------------------------------------------------------------------------


def _try_steps(
    program: ast.Program,
    ctx: PlanContext,
    action: str,
    steps: Sequence[RewriteStep],
) -> Optional[Candidate]:
    """Speculatively apply ``steps`` on clones; None when any fails."""
    new_ctx = ctx.clone()
    for step in steps:
        try:
            program = step.apply(program, new_ctx)
        except PlanError:
            return None
    return Candidate(action, tuple(steps), program, new_ctx)


def _with_merge(
    cand: Candidate, txn: str, label1: str, label2: str
) -> Candidate:
    """Upgrade a redirect candidate with a trailing merge when possible."""
    merge = MergeStep(txn, label1, label2)
    merged_ctx = cand.ctx.clone()
    try:
        merged_program = merge.apply(cand.program, merged_ctx)
    except PlanError:
        return cand
    return Candidate(
        cand.action + "+merged",
        cand.steps + (merge,),
        merged_program,
        merged_ctx,
    )


def _redirect_step(
    program: ast.Program, src_cmd: ast.Command, dst_table: str
) -> Optional[RedirectStep]:
    """The redirect step moving ``src_cmd``'s accessed payload fields
    (closed under accessed-together) into ``dst_table``."""
    fields = _accessed_payload_fields(program, src_cmd)
    if not fields or src_cmd.table == dst_table:  # type: ignore[union-attr]
        return None
    fields = _close_accessed_together(program, src_cmd.table, fields)  # type: ignore[union-attr]
    return RedirectStep(src_cmd.table, dst_table, tuple(fields))  # type: ignore[union-attr]


def propose_candidates(
    program: ast.Program, ctx: PlanContext, pair: AccessPair
) -> Iterator[Candidate]:
    """Enumerate applicable repairs for ``pair``, best-first in the
    paper's rule order.  Every yielded candidate has already been
    applied speculatively (its ``program``/``ctx`` are the reached
    state), so the greedy strategy is ``next(...)`` and beam search is
    ``list(...)``."""
    txn_name = pair.txn
    label1 = ctx.current(txn_name, pair.c1)
    label2 = ctx.current(txn_name, pair.c2)
    if label1 == label2:
        # A previous merge absorbed this pair.
        yield Candidate("absorbed", (), program, ctx.clone())
        return
    c1 = _find_command(program, txn_name, label1)
    c2 = _find_command(program, txn_name, label2)
    if c1 is None or c2 is None:
        return

    if _same_kind(c1, c2):
        if c1.table == c2.table:  # type: ignore[union-attr]
            cand = _try_steps(
                program, ctx, "merged", [MergeStep(txn_name, label1, label2)]
            )
            if cand is not None:
                yield cand
            return
        # Cross-schema: redirect c2's schema into c1's (then reverse),
        # then try folding both into a common hub.
        for src_cmd, dst_cmd in ((c2, c1), (c1, c2)):
            step = _redirect_step(program, src_cmd, dst_cmd.table)  # type: ignore[union-attr]
            if step is None:
                continue
            cand = _try_steps(program, ctx, "redirected", [step])
            if cand is not None:
                yield _with_merge(cand, txn_name, label1, label2)
        yield from _hub_candidates(program, ctx, txn_name, label1, label2, c1, c2)
        return

    cand = _logger_candidate(program, ctx, txn_name, c1, c2)
    if cand is not None:
        yield cand


def _hub_candidates(
    program: ast.Program,
    ctx: PlanContext,
    txn_name: str,
    label1: str,
    label2: str,
    c1: ast.Command,
    c2: ast.Command,
) -> Iterator[Candidate]:
    """Fold both tables into a third one that declares (or is declared
    by) reference paths to each -- e.g. SAVINGS and CHECKING both keyed
    by ACCOUNTS.custid."""
    for hub in program.schema_names:
        if hub in (c1.table, c2.table):  # type: ignore[union-attr]
            continue
        first = _redirect_step(program, c1, hub)
        if first is None:
            continue
        cand1 = _try_steps(program, ctx, "redirected", [first])
        if cand1 is None:
            continue
        c2_now = _find_command(cand1.program, txn_name, getattr(c2, "label", ""))
        if c2_now is None:
            continue
        second = _redirect_step(cand1.program, c2_now, hub)
        if second is None:
            continue
        # Extend cand1 rather than re-applying `first` from scratch.
        ctx2 = cand1.ctx.clone()
        try:
            program2 = second.apply(cand1.program, ctx2)
        except PlanError:
            continue
        cand = Candidate("redirected", (first, second), program2, ctx2)
        yield _with_merge(cand, txn_name, label1, label2)


def _logger_candidate(
    program: ast.Program,
    ctx: PlanContext,
    txn_name: str,
    c1: ast.Command,
    c2: ast.Command,
) -> Optional[Candidate]:
    select, update = (c1, c2) if isinstance(c1, ast.Select) else (c2, c1)
    if not isinstance(select, ast.Select) or not isinstance(update, ast.Update):
        return None
    txn = program.transaction(txn_name)
    summary = summarize_transaction(program, txn)
    try:
        info_r = summary.command(select.label)
        info_w = summary.command(update.label)
    except KeyError:
        return None
    f = rmw_field(summary, info_r, info_w)
    if f is None:
        return None
    return _try_steps(
        program, ctx, "logged", [LoggerStep(update.table, f)]
    )


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

# A throughput probe: (program, residual pairs, rewrites so far) ->
# committed transactions per second under the AT-SC configuration.
ThroughputProbe = Callable[[ast.Program, Sequence[AccessPair], Sequence[object]], float]


@dataclass
class CostModel:
    """Score a candidate plan state; lower is better.

    ``anomaly_weight * |residual pairs| + table_weight * |schemas|
    - throughput_weight * probe(...)``.  The oracle used for the
    residual count is the caller's (pass the search's own oracle so
    candidate evaluations share its memo cache and, with
    ``strategy="incremental"``, its warm solver sessions).
    """

    anomaly_weight: float = 10.0
    table_weight: float = 1.0
    throughput_weight: float = 0.0
    throughput_probe: Optional[ThroughputProbe] = None

    def evaluate(
        self,
        program: ast.Program,
        ctx: PlanContext,
        oracle: AnomalyOracle,
    ) -> Tuple[float, List[AccessPair]]:
        """(cost, residual pairs) -- exposing the pairs lets callers
        reuse the oracle run the score already paid for."""
        return self.evaluate_many([(program, ctx)], oracle)[0]

    def evaluate_many(
        self,
        items: Sequence[Tuple[ast.Program, PlanContext]],
        oracle: AnomalyOracle,
    ) -> List[Tuple[float, List[AccessPair]]]:
        """Score a whole generation of candidate states at once.

        All candidates' residual analyses go through one
        :meth:`~repro.analysis.oracle.AnomalyOracle.analyze_many` call,
        so a fan-out oracle strategy (``"parallel-incremental"``)
        overlaps every candidate's SAT queries across its warm shard
        workers instead of analyzing candidates serially.  Scores are
        identical to per-candidate :meth:`evaluate` calls -- analysis is
        deterministic and order-independent -- so search results do not
        depend on the oracle's execution strategy.
        """
        reports = oracle.analyze_many([program for program, _ in items])
        out: List[Tuple[float, List[AccessPair]]] = []
        for (program, ctx), report in zip(items, reports):
            pairs = report.pairs
            cost = self.anomaly_weight * len(pairs)
            cost += self.table_weight * len(program.schemas)
            if self.throughput_probe is not None and self.throughput_weight:
                cost -= self.throughput_weight * self.throughput_probe(
                    program, pairs, ctx.rewrites
                )
            out.append((cost, pairs))
        return out

    def score(
        self,
        program: ast.Program,
        ctx: PlanContext,
        oracle: AnomalyOracle,
    ) -> float:
        return self.evaluate(program, ctx, oracle)[0]


def simulated_throughput_probe(
    benchmark,
    cluster=None,
    config=None,
    clients: int = 16,
    scale: int = 8,
    seed: int = 7,
) -> ThroughputProbe:
    """A :class:`CostModel` throughput term backed by the store simulator.

    The probe migrates the benchmark's database into the candidate
    program's layout, profiles every transaction, flags the residually
    anomalous ones serializable (the AT-SC configuration), and runs one
    closed-loop :func:`repro.store.runner.simulate` point.  Heavier than
    the static terms -- reserve it for beam search on benchmarks where
    schema growth and anomaly count alone cannot break ties.
    """
    from repro.refactor.migrate import migrate_database
    from repro.store.network import US_CLUSTER
    from repro.store.profile import profile_program, sample_calls_for
    from repro.store.runner import simulate

    cluster = cluster or US_CLUSTER
    rng = random.Random(seed)
    db = benchmark.database(scale)
    calls = sample_calls_for(benchmark, rng, scale)
    mix = [(name, weight) for name, weight, _ in benchmark.mix]

    def probe(program, residual_pairs, rewrites) -> float:
        flagged = {p.txn for p in residual_pairs}
        txns = tuple(
            dc_replace(t, serializable=True) if t.name in flagged else t
            for t in program.transactions
        )
        at_sc = dc_replace(program, transactions=txns)
        at_db = migrate_database(db, at_sc, list(rewrites))
        profiles = profile_program(at_sc, at_db, calls)
        result = simulate(profiles, mix, cluster, clients, config)
        return result.throughput

    return probe


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


def _prologue(
    program: ast.Program, oracle: AnomalyOracle
) -> Tuple[ast.Program, PlanContext, List[RewriteStep], List[AccessPair]]:
    """Shared opening moves: analyze, record split steps, re-analyze when
    the splits changed the program, sort the pairs."""
    initial_report = oracle.analyze(program)
    ctx = PlanContext()
    steps: List[RewriteStep] = []
    plans = split_plans(program, initial_report.pairs)
    for (txn_name, label), groups in sorted(plans.items()):
        step = SplitStep(txn_name, label, tuple(tuple(g) for g in groups))
        program = step.apply(program, ctx)
        steps.append(step)
    if steps:
        # Re-detect: splitting renamed command labels.
        pairs = list(oracle.analyze(program).pairs)
    else:
        # Analysis is deterministic; re-running it would reproduce the
        # initial report verbatim.
        pairs = list(initial_report.pairs)
    pairs.sort(key=lambda p: (p.txn, p.c1, p.c2))
    return program, ctx, steps, pairs


class GreedySearch:
    """First-applicable-candidate search; byte-for-byte compatible with
    the historical in-place repair engine."""

    name = "greedy"
    #: Optional progress callback (see :mod:`repro.events`); set by
    #: the engine when the caller asked to observe the search.
    progress = None

    def search(self, program: ast.Program, oracle: AnomalyOracle) -> SearchResult:
        start = time.perf_counter()
        program, ctx, steps, pairs = _prologue(program, oracle)
        emit(self.progress, "search.start", strategy=self.name,
             pairs=len(pairs))
        outcomes: List[RepairOutcome] = []
        for pair in pairs:
            cand = next(propose_candidates(program, ctx, pair), None)
            if cand is None:
                outcomes.append(RepairOutcome(pair, "unrepaired"))
            else:
                program, ctx = cand.program, cand.ctx
                steps.extend(cand.steps)
                outcomes.append(RepairOutcome(pair, cand.action))
            emit(self.progress, "search.pair", txn=pair.txn, c1=pair.c1,
                 c2=pair.c2, action=outcomes[-1].action)
        post = PostprocessStep()
        program = post.apply(program, ctx)
        steps.append(post)
        residual = oracle.analyze(program).pairs
        emit(self.progress, "search.done", strategy=self.name,
             steps=len(steps), residual=len(residual))
        return SearchResult(
            plan=RewritePlan(tuple(steps)),
            repaired_program=program,
            initial_pairs=pairs,
            residual_pairs=residual,
            outcomes=outcomes,
            context=ctx,
            elapsed_seconds=time.perf_counter() - start,
            strategy=self.name,
        )


@dataclass
class _BeamState:
    program: ast.Program
    ctx: PlanContext
    steps: Tuple[RewriteStep, ...]
    outcomes: Tuple[RepairOutcome, ...]
    score: float = 0.0


class BeamSearch:
    """Keep the ``width`` best plan prefixes per pair, scored by the
    cost model.  ``width=1`` degenerates to a cost-checked greedy;
    wider beams can decline a repair whose schema growth the model
    prices above the anomaly it removes."""

    name = "beam"
    progress = None

    def __init__(
        self,
        width: int = 4,
        cost_model: Optional[CostModel] = None,
        max_candidates: int = 8,
    ):
        if width < 1:
            raise ValueError("beam width must be >= 1")
        self.width = width
        self.cost_model = cost_model or CostModel()
        self.max_candidates = max_candidates

    def search(self, program: ast.Program, oracle: AnomalyOracle) -> SearchResult:
        start = time.perf_counter()
        program, ctx, steps, pairs = _prologue(program, oracle)
        emit(self.progress, "search.start", strategy=self.name,
             pairs=len(pairs), width=self.width)
        base = _BeamState(program, ctx, tuple(steps), ())
        base.score = self.cost_model.score(program, ctx, oracle)
        states = [base]
        trajectory: List[float] = []
        for pair in pairs:
            expanded: List[_BeamState] = []
            fresh: List[_BeamState] = []
            for state in states:
                count = 0
                for cand in propose_candidates(state.program, state.ctx, pair):
                    new = _BeamState(
                        cand.program,
                        cand.ctx,
                        state.steps + cand.steps,
                        state.outcomes + (RepairOutcome(pair, cand.action),),
                    )
                    expanded.append(new)
                    fresh.append(new)
                    count += 1
                    if count >= self.max_candidates:
                        break
                # Skipping the pair is always an option the model may
                # prefer; its program is the parent's, so it inherits
                # the parent's score without re-analysing.  Appended
                # *after* the real candidates so a score tie (e.g. an
                # absorbed pair, whose candidate state is identical)
                # resolves to the properly labelled outcome.
                expanded.append(
                    _BeamState(
                        state.program,
                        state.ctx,
                        state.steps,
                        state.outcomes + (RepairOutcome(pair, "unrepaired"),),
                        score=state.score,
                    )
                )
            # Score the whole generation in one oracle fan-out: with a
            # parallel-incremental strategy every candidate's residual
            # analysis runs concurrently on the warm shard workers.
            scored = self.cost_model.evaluate_many(
                [(s.program, s.ctx) for s in fresh], oracle
            )
            for new, (cost, _) in zip(fresh, scored):
                new.score = cost
            # Stable sort: ties go to the earlier (higher-priority) candidate.
            expanded.sort(key=lambda s: s.score)
            states = expanded[: self.width]
            trajectory.append(states[0].score)
            emit(self.progress, "search.pair", txn=pair.txn, c1=pair.c1,
                 c2=pair.c2, action=states[0].outcomes[-1].action,
                 best_score=states[0].score)

        final_states: List[_BeamState] = []
        for state in states:
            post = PostprocessStep()
            program_f = post.apply(state.program, state.ctx)
            final_states.append(
                _BeamState(
                    program_f, state.ctx, state.steps + (post,), state.outcomes
                )
            )
        final_scored = self.cost_model.evaluate_many(
            [(s.program, s.ctx) for s in final_states], oracle
        )
        finished: List[Tuple[float, int, _BeamState, List[AccessPair]]] = []
        for i, (state_f, (cost, pairs_f)) in enumerate(
            zip(final_states, final_scored)
        ):
            state_f.score = cost
            finished.append((state_f.score, i, state_f, pairs_f))
        finished.sort(key=lambda t: (t[0], t[1]))
        _, _, best, residual = finished[0]
        emit(self.progress, "search.done", strategy=self.name,
             steps=len(best.steps), residual=len(residual),
             best_score=best.score)
        return SearchResult(
            plan=RewritePlan(best.steps),
            repaired_program=best.program,
            initial_pairs=pairs,
            residual_pairs=residual,
            outcomes=list(best.outcomes),
            context=best.ctx,
            elapsed_seconds=time.perf_counter() - start,
            strategy=self.name,
            extras={"width": self.width, "score_trajectory": trajectory,
                    "best_score": best.score},
        )


def random_step(program: ast.Program, rng: random.Random) -> Optional[RewriteStep]:
    """Draw one random rule application (the Appendix A.3 distribution):
    a single-field redirect between two random tables, or a logger on a
    random table/field.  None when the draw is degenerate; the drawn
    step may still be inapplicable (that is the experiment's point)."""
    tables = list(program.schema_names)
    if not tables:
        return None
    if rng.random() < 0.5:
        src = rng.choice(tables)
        dst = rng.choice(tables)
        if src == dst:
            return None
        schema = program.schema(src)
        if not schema.non_key_fields:
            return None
        return RedirectStep(src, dst, (rng.choice(schema.non_key_fields),))
    src = rng.choice(tables)
    schema = program.schema(src)
    if not schema.non_key_fields:
        return None
    return LoggerStep(src, rng.choice(schema.non_key_fields))


class RandomSearch:
    """Rounds of random rule draws scored by the anomaly count
    (Appendix A.3 / Figure 16).  Keeps the best-scoring round's plan."""

    name = "random"
    progress = None

    def __init__(
        self,
        rounds: int = 20,
        steps_per_round: int = 10,
        seed: int = 42,
    ):
        self.rounds = rounds
        self.steps_per_round = steps_per_round
        self.seed = seed

    def search(self, program: ast.Program, oracle: AnomalyOracle) -> SearchResult:
        start = time.perf_counter()
        original = program
        initial_pairs = list(oracle.analyze(program).pairs)
        rng = random.Random(self.seed)
        round_counts: List[int] = []
        best_count = len(initial_pairs)
        best_plan = RewritePlan()
        best_program = original
        best_ctx = PlanContext()
        best_pairs = initial_pairs
        for _ in range(self.rounds):
            candidate = original
            ctx = PlanContext()
            applied: List[RewriteStep] = []
            for _ in range(self.steps_per_round):
                step = random_step(candidate, rng)
                if step is None:
                    continue
                try:
                    candidate = step.apply(candidate, ctx)
                except PlanError:
                    continue
                applied.append(step)
            pairs = oracle.analyze(candidate).pairs
            round_counts.append(len(pairs))
            emit(self.progress, "search.round", strategy=self.name,
                 round=len(round_counts), anomalies=len(pairs),
                 best=best_count)
            if len(pairs) < best_count:
                best_count = len(pairs)
                best_plan = RewritePlan(tuple(applied))
                best_program = candidate
                best_ctx = ctx
                best_pairs = pairs
        residual = list(best_pairs)
        return SearchResult(
            plan=best_plan,
            repaired_program=best_program,
            initial_pairs=initial_pairs,
            residual_pairs=residual,
            outcomes=[],
            context=best_ctx,
            elapsed_seconds=time.perf_counter() - start,
            strategy=self.name,
            extras={"round_counts": round_counts, "seed": self.seed},
        )


_STRATEGIES = {
    "greedy": GreedySearch,
    "beam": BeamSearch,
    "random": RandomSearch,
}


def resolve_search(search: object, **kwargs):
    """``search`` may be a strategy name or an instance with
    ``search(program, oracle)``; names construct a fresh strategy with
    ``kwargs`` forwarded to its constructor."""
    if isinstance(search, str):
        cls = _STRATEGIES.get(search)
        if cls is None:
            raise ValueError(
                f"unknown search strategy {search!r} "
                f"(expected one of {sorted(_STRATEGIES)})"
            )
        return cls(**kwargs)
    if not hasattr(search, "search"):
        raise TypeError(f"{search!r} has no search(program, oracle) method")
    if kwargs:
        raise ValueError("search options only apply to named strategies")
    return search


# ---------------------------------------------------------------------------
# helpers shared with candidate generation
# ---------------------------------------------------------------------------


def _same_kind(c1: ast.Command, c2: ast.Command) -> bool:
    kinds = {type(c1), type(c2)}
    return kinds == {ast.Select} or kinds == {ast.Update}


def _close_accessed_together(
    program: ast.Program, table: str, fields: List[str]
) -> List[str]:
    """Close the moved-field set under 'retrieved by the same select':
    if any select pulls a moved field together with other payload fields
    of the table, those fields must move too or the select has no home."""
    schema = program.schema(table)
    moved = set(fields)
    changed = True
    while changed:
        changed = False
        for txn in program.transactions:
            for cmd in ast.iter_db_commands(txn):
                if getattr(cmd, "table", None) != table:
                    continue
                if isinstance(cmd, ast.Select):
                    accessed = {
                        f for f in cmd.selected_fields(schema) if f not in schema.key
                    }
                elif isinstance(cmd, ast.Update):
                    accessed = {
                        f for f in cmd.written_fields if f not in schema.key
                    }
                else:
                    continue
                if accessed & moved and not accessed <= moved:
                    moved |= accessed
                    changed = True
    return [f for f in schema.fields if f in moved]


def _accessed_payload_fields(program: ast.Program, cmd: ast.Command) -> List[str]:
    """Non-key fields the command accesses on its table."""
    schema = program.schema(cmd.table)  # type: ignore[union-attr]
    if isinstance(cmd, ast.Select):
        accessed = cmd.selected_fields(schema)
    elif isinstance(cmd, ast.Update):
        accessed = cmd.written_fields
    else:
        return []
    return [f for f in accessed if f not in schema.key]
