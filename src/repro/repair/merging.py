"""Command merging (the ``try_merging`` of Figure 10).

Two same-kind commands on the same schema merge into one -- turning two
separately-viewed accesses into a single record-atomic command -- when
their where clauses provably address the same records (condition R1 of
Section 4.2).  Three provable cases, in order:

(a) **syntactic equality**: equal conjunct maps;
(b) **self-lookup**: ``c``'s clause is ``g = at_1(x.g) /\\ ...`` where
    ``x`` was selected *from the same table*; the clause then re-selects
    (at least) ``x``'s records, so it inherits the equivalence class of
    ``x``'s select -- this is how ``S2'`` (``st_em_id = x.st_em_id``)
    merges with ``S1`` (``st_id = id``) in Figure 9;
(c) **assigned-key match** (updates): ``c2``'s clause ``g = e`` matches
    an assignment ``g = e`` performed by ``c1``, so right after ``c1``
    the updated record satisfies it -- how ``U4.2'`` merges into ``U3``
    in Figure 11.

Merging additionally requires that no command between the two conflicts
with the moved one (reads or writes its fields on the same table), and
that the moved command's expressions only use variables already bound
before the merge point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from repro.lang import ast
from repro.lang.traverse import expression_vars, where_vars


def _conjunct_map(where: ast.Where) -> Optional[Dict[str, ast.Expr]]:
    conjuncts = ast.where_conjuncts(where)
    if conjuncts is None:
        return None
    out: Dict[str, ast.Expr] = {}
    for cond in conjuncts:
        if cond.op != "=" or cond.field in out:
            return None
        out[cond.field] = cond.expr
    return out


def _exprs_equal(a: ast.Expr, b: ast.Expr) -> bool:
    from repro.analysis.aliasing import _syntactically_equal

    return _syntactically_equal(a, b)


def where_equivalent(
    txn: ast.Transaction,
    c1: ast.Command,
    c2: ast.Command,
) -> bool:
    """Do ``c1`` and ``c2`` provably address the same records?

    ``c1`` and ``c2`` must be database commands on the same table inside
    ``txn``; see the module docstring for the three provable cases.
    """
    if getattr(c1, "table", None) != getattr(c2, "table", None):
        return False
    m1 = _resolve_clause(txn, c1)
    m2 = _resolve_clause(txn, c2)
    if m1 is None or m2 is None:
        return False
    if _maps_equal(m1, m2):
        return True
    # Case (c): clauses of c2 satisfied by assignments of c1.
    if isinstance(c1, ast.Update):
        remaining = {
            f: e
            for f, e in m2.items()
            if not any(f == af and _exprs_equal(e, ae) for af, ae in c1.assignments)
        }
        if not remaining or _maps_equal(m1, remaining):
            return True
    return False


def _maps_equal(a: Dict[str, ast.Expr], b: Dict[str, ast.Expr]) -> bool:
    if set(a) != set(b):
        return False
    return all(_exprs_equal(a[f], b[f]) for f in a)


def _resolve_clause(
    txn: ast.Transaction, cmd: ast.Command, depth: int = 4
) -> Optional[Dict[str, ast.Expr]]:
    """Conjunct map of ``cmd``'s where, chasing self-lookups (case b)."""
    where = getattr(cmd, "where", None)
    if where is None:
        return None
    table = cmd.table  # type: ignore[union-attr]
    m = _conjunct_map(where)
    while m is not None and depth > 0:
        lookup_var = _self_lookup_var(m, table, txn)
        if lookup_var is None:
            return m
        source = _select_binding(txn, lookup_var)
        if source is None or source.table != table:
            return m
        resolved = _conjunct_map(source.where)
        if resolved is None:
            return m
        m = resolved
        depth -= 1
    return m


def _self_lookup_var(
    m: Dict[str, ast.Expr], table: str, txn: ast.Transaction
) -> Optional[str]:
    """If every conjunct is ``g = at_1(x.g)`` for one shared ``x`` bound by
    a select on ``table``, return ``x``."""
    var: Optional[str] = None
    for field, expr in m.items():
        if not (
            isinstance(expr, ast.At)
            and expr.index == ast.Const(1)
            and expr.field == field
        ):
            return None
        if var is None:
            var = expr.var
        elif var != expr.var:
            return None
    return var


def _select_binding(txn: ast.Transaction, var: str) -> Optional[ast.Select]:
    for cmd in ast.iter_db_commands(txn):
        if isinstance(cmd, ast.Select) and cmd.var == var:
            return cmd
    return None


# ---------------------------------------------------------------------------
# The merge operation
# ---------------------------------------------------------------------------


def try_merging(
    program: ast.Program, txn_name: str, label1: str, label2: str
) -> Optional[ast.Program]:
    """Merge the command labelled ``label2`` into ``label1`` inside
    ``txn_name``; returns the new program or None when not mergeable."""
    txn = program.transaction(txn_name)
    body = list(txn.body)
    pos1 = _top_level_index(body, label1)
    pos2 = _top_level_index(body, label2)
    if pos1 is None or pos2 is None:
        return None  # nested commands are not merged (conservative)
    if pos1 > pos2:
        pos1, pos2 = pos2, pos1
        label1, label2 = label2, label1
    c1, c2 = body[pos1], body[pos2]
    if type(c1) is not type(c2) or isinstance(c1, ast.Insert):
        return None
    if c1.table != c2.table:  # type: ignore[union-attr]
        return None
    if not where_equivalent(txn, c1, c2):
        return None
    if not _safe_to_hoist(program, txn, body, pos1, pos2):
        return None

    if isinstance(c1, ast.Select):
        merged, var_rename = _merge_selects(program, c1, c2)
    else:
        merged = _merge_updates(c1, c2)
        var_rename = None
    new_body = body[:pos1] + [merged] + body[pos1 + 1 : pos2] + body[pos2 + 1 :]
    new_txn = replace(txn, body=tuple(new_body))
    if var_rename is not None:
        old_var, new_var = var_rename
        new_txn = _rename_var(new_txn, old_var, new_var)
    return program.replace_transaction(new_txn)


def _top_level_index(body: List[ast.Command], label: str) -> Optional[int]:
    for i, cmd in enumerate(body):
        if getattr(cmd, "label", "") == label:
            return i
    return None


def _safe_to_hoist(
    program: ast.Program,
    txn: ast.Transaction,
    body: List[ast.Command],
    pos1: int,
    pos2: int,
) -> bool:
    """Moving c2 up to c1's position must not cross conflicting commands
    or unbound variables."""
    c2 = body[pos2]
    table = c2.table  # type: ignore[union-attr]
    schema = program.schema(table)
    if isinstance(c2, ast.Select):
        c2_fields = set(c2.selected_fields(schema)) | set(ast.where_fields(c2.where))
        needed_vars = where_vars(c2.where)
    else:
        assert isinstance(c2, ast.Update)
        c2_fields = set(c2.written_fields) | set(ast.where_fields(c2.where))
        needed_vars = where_vars(c2.where)
        for _, e in c2.assignments:
            needed_vars |= expression_vars(e)

    bound_before: Set[str] = set()
    for cmd in body[:pos1]:
        if isinstance(cmd, ast.Select):
            bound_before.add(cmd.var)
    # Variables resolved through a self-lookup on c1 itself are fine:
    # after merging, c1's records subsume them.  Accept variables bound by
    # c1 too.
    c1 = body[pos1]
    if isinstance(c1, ast.Select):
        bound_before.add(c1.var)
    if not needed_vars <= bound_before:
        return False

    for cmd in body[pos1 + 1 : pos2]:
        for sub in _flatten(cmd):
            if getattr(sub, "table", None) != table:
                continue
            if isinstance(sub, ast.Select):
                accessed = set(sub.selected_fields(schema)) | set(
                    ast.where_fields(sub.where)
                )
            elif isinstance(sub, (ast.Update, ast.Insert)):
                accessed = set(sub.written_fields)
                if isinstance(sub, ast.Update):
                    accessed |= set(ast.where_fields(sub.where))
            else:
                continue
            if accessed & c2_fields:
                return False
    return True


def _flatten(cmd: ast.Command):
    if isinstance(cmd, (ast.If, ast.Iterate)):
        for sub in cmd.body:
            yield from _flatten(sub)
    else:
        yield cmd


def _merge_selects(
    program: ast.Program, c1: ast.Select, c2: ast.Select
) -> Tuple[ast.Select, Tuple[str, str]]:
    schema = program.schema(c1.table)
    if c1.fields == ast.STAR or c2.fields == ast.STAR:
        fields: object = ast.STAR
    else:
        fields = tuple(dict.fromkeys(tuple(c1.fields) + tuple(c2.fields)))
    merged = replace(c1, fields=fields)
    return merged, (c2.var, c1.var)


def _merge_updates(c1: ast.Update, c2: ast.Update) -> ast.Update:
    assignments = dict(c1.assignments)
    for f, e in c2.assignments:
        assignments[f] = e  # later command wins on field collision
    return replace(c1, assignments=tuple(assignments.items()))


def _rename_var(txn: ast.Transaction, old: str, new: str) -> ast.Transaction:
    def on_expr(expr: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(expr, (ast.At, ast.Agg)) and expr.var == old:
            return replace(expr, var=new)
        return None

    from repro.lang.traverse import rewrite_program_expressions

    probe = ast.Program(schemas=(), transactions=(txn,))
    return rewrite_program_expressions(probe, on_expr).transactions[0]
