"""Measured cost of live rule enforcement in the workload simulator.

The static repair's performance claim is made by
:func:`repro.repair.search.simulated_throughput_probe`: migrate, flag
the residually anomalous transactions serializable (AT-SC), simulate
one closed-loop point.  Live enforcement promises the same semantics
without redeploying the application, but it is not free -- every
operation pays a rule lookup, executed live operations pay binding
translation, and merge-partner issuances that execute nothing still pay
the lookup.  This module prices that machinery into the simulator
through the :class:`~repro.store.runner.OpRewriter` hook and reports
measured live throughput against the probe's prediction, so the
``BENCH_live.json`` regression gate can catch the interception layer
getting more expensive.

The live operation stream per transaction is obtained by profiling the
rule set's target (pre-postprocess repaired) program: in a serial run
the interceptor executes exactly that program's database commands, one
per issuance, so its op profile *is* the live profile.  The skip rate
(lookups that execute nothing) is calibrated by one interceptor-driven
serial run over the same sample calls, reading the rule counters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace as dc_replace
from typing import Dict, Optional, Sequence, Tuple

from repro.corpus import Benchmark
from repro.live.compile import compile_plan
from repro.live.intercept import LiveInterceptor
from repro.live.rules import RuleSet
from repro.refactor.migrate import migrate_database
from repro.repair import repair
from repro.repair.search import simulated_throughput_probe
from repro.semantics.scheduler import run_serial
from repro.store.network import US_CLUSTER, ClusterSpec
from repro.store.profile import OpProfile, profile_program, sample_calls_for
from repro.store.runner import OpRewriter, PerfConfig, simulate


@dataclass(frozen=True)
class OverheadModel:
    """Per-mechanism interception costs, in milliseconds."""

    #: Added to every live operation's service time: rule lookup plus
    #: binding translation on the issuing replica.
    op_overhead_ms: float = 0.05
    #: Cost of an issuance that executes nothing (a merge partner whose
    #: shared live command already ran): lookup only, charged client-side
    #: at commit.
    skip_overhead_ms: float = 0.01


class LiveOpRewriter(OpRewriter):
    """Swaps each transaction's op stream for its live enforcement.

    Built once per rule set by :func:`build_rewriter`; ``rewrite`` is a
    dictionary lookup, keeping the simulator's inner loop cheap.
    Transactions without a live profile (not in the plan's program) pass
    through unchanged.
    """

    def __init__(
        self,
        live_ops: Dict[str, Tuple[Tuple[str, str, float], ...]],
        commit_extra_ms: Dict[str, float],
    ):
        self.live_ops = live_ops
        self.commit_extra_ms = commit_extra_ms

    def rewrite(self, profile: OpProfile) -> Tuple[Sequence[Tuple], float]:
        ops = self.live_ops.get(profile.txn, profile.ops)
        return ops, self.commit_extra_ms.get(profile.txn, 0.0)


def build_rewriter(
    bench: Benchmark,
    ruleset: RuleSet,
    *,
    scale: int = 8,
    seed: int = 7,
    overhead: Optional[OverheadModel] = None,
) -> LiveOpRewriter:
    """Price a rule set's enforcement into a :class:`LiveOpRewriter`."""
    overhead = overhead or OverheadModel()
    rng = random.Random(seed)
    db = bench.database(scale)
    calls = sample_calls_for(bench, rng, scale)
    live_db = migrate_database(db, ruleset.live_program, ruleset.rewrites)
    live_profiles = profile_program(ruleset.live_program, live_db, calls)

    # Calibrate skip rates: one serial pass through the interceptor,
    # then read how many issuances executed nothing per transaction
    # (sample_calls_for yields exactly one call per transaction).
    ruleset.reset_counters()
    run_serial(
        ruleset.original_program,
        live_db,
        list(calls.values()),
        executor=LiveInterceptor(ruleset),
    )
    skips_per_txn: Dict[str, int] = {}
    for rule in ruleset.rules.values():
        skips_per_txn[rule.match.txn] = (
            skips_per_txn.get(rule.match.txn, 0) + rule.skips
        )
    ruleset.reset_counters()

    live_ops = {
        name: tuple(
            (kind, table, overhead.op_overhead_ms)
            for kind, table in profile.ops
        )
        for name, profile in live_profiles.items()
    }
    commit_extra = {
        name: skips_per_txn.get(name, 0) * overhead.skip_overhead_ms
        for name in live_profiles
    }
    return LiveOpRewriter(live_ops, commit_extra)


@dataclass(frozen=True)
class OverheadMeasurement:
    """One benchmark's predicted-vs-live simulation point."""

    benchmark: str
    clients: int
    scale: int
    seed: int
    predicted_throughput: float
    live_throughput: float
    live_avg_latency_ms: float
    live_p95_latency_ms: float
    rules: int
    rewritten_rules: int
    unsupported: int

    @property
    def overhead_ratio(self) -> float:
        """Predicted (static AT-SC) over measured live throughput; 1.0
        means enforcement is free, larger means slower."""
        if self.live_throughput <= 0:
            return float("inf")
        return self.predicted_throughput / self.live_throughput

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "clients": self.clients,
            "scale": self.scale,
            "seed": self.seed,
            "predicted_throughput": round(self.predicted_throughput, 3),
            "live_throughput": round(self.live_throughput, 3),
            "overhead_ratio": round(self.overhead_ratio, 4),
            "live_avg_latency_ms": round(self.live_avg_latency_ms, 4),
            "live_p95_latency_ms": round(self.live_p95_latency_ms, 4),
            "rules": self.rules,
            "rewritten_rules": self.rewritten_rules,
            "unsupported": self.unsupported,
        }


def measure_overhead(
    bench: Benchmark,
    *,
    cluster: Optional[ClusterSpec] = None,
    config: Optional[PerfConfig] = None,
    clients: int = 16,
    scale: int = 8,
    seed: int = 7,
    overhead: Optional[OverheadModel] = None,
) -> OverheadMeasurement:
    """Predicted (probe) vs measured (rules installed) throughput.

    Both sides use identical cluster, client count, sample calls and
    seeds; the live side issues the original transactions' profiles and
    lets the rewriter swap in the enforced op streams with their
    surcharges, mirroring how a running store would experience a
    ``protect`` rollout.  Fully deterministic for fixed arguments.
    """
    cluster = cluster or US_CLUSTER
    program = bench.program()
    report = repair(program)
    ruleset = compile_plan(program, report.plan)

    probe = simulated_throughput_probe(
        bench, cluster, config, clients=clients, scale=scale, seed=seed
    )
    predicted = probe(
        report.repaired_program, report.residual_pairs, report.rewrites
    )

    # The live store still runs the *original* application; residual
    # anomalies survive the repair either way, so the same transactions
    # get the serializable flag as in the probe's AT-SC configuration.
    flagged = {p.txn for p in report.residual_pairs}
    txns = tuple(
        dc_replace(t, serializable=True) if t.name in flagged else t
        for t in program.transactions
    )
    at_program = dc_replace(program, transactions=txns)
    rng = random.Random(seed)
    db = bench.database(scale)
    calls = sample_calls_for(bench, rng, scale)
    profiles = profile_program(at_program, db, calls)
    rewriter = build_rewriter(
        bench, ruleset, scale=scale, seed=seed, overhead=overhead
    )
    mix = [(name, weight) for name, weight, _ in bench.mix]
    live = simulate(profiles, mix, cluster, clients, config, rewriter=rewriter)

    return OverheadMeasurement(
        benchmark=bench.name,
        clients=clients,
        scale=scale,
        seed=seed,
        predicted_throughput=predicted,
        live_throughput=live.throughput,
        live_avg_latency_ms=live.avg_latency_ms,
        live_p95_latency_ms=live.percentile_latency_ms(0.95),
        rules=len(ruleset.rules),
        rewritten_rules=ruleset.rewritten_rule_count(),
        unsupported=len(ruleset.unsupported),
    )
