"""Live repair: enforcing rewrite plans on running stores.

The static pipeline (:mod:`repro.repair`) answers *what the application
should look like*; this package answers *what to do about the copy that
is already running*.  A :class:`~repro.repair.plan.RewritePlan` is
compiled (:mod:`repro.live.compile`) into declarative
:class:`~repro.live.rules.MutationRule`\\ s, a
:class:`~repro.live.intercept.LiveInterceptor` enforces them inside
each issuing transaction, :mod:`repro.live.validate` runs the
full-corpus live-vs-static differential gate, and
:mod:`repro.live.overhead` prices enforcement into the workload
simulator against the static probe's prediction.
"""

from repro.live.compile import NO_RUNTIME_ANALOGUE, compile_plan
from repro.live.intercept import LiveInterceptor
from repro.live.overhead import (
    LiveOpRewriter,
    OverheadMeasurement,
    OverheadModel,
    build_rewriter,
    measure_overhead,
)
from repro.live.rules import (
    BindingSpec,
    FieldSource,
    MutationRule,
    RuleMatch,
    RuleSet,
    UnsupportedStep,
)
from repro.live.validate import (
    DEFAULT_SAMPLES,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    BenchmarkVerdict,
    ExplorationCount,
    ProtectReport,
    corpus_calls,
    explore_anomalies,
    validate_benchmark,
    validate_corpus,
)

__all__ = [
    "DEFAULT_SAMPLES",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "BenchmarkVerdict",
    "BindingSpec",
    "ExplorationCount",
    "FieldSource",
    "LiveInterceptor",
    "LiveOpRewriter",
    "MutationRule",
    "NO_RUNTIME_ANALOGUE",
    "OverheadMeasurement",
    "OverheadModel",
    "ProtectReport",
    "RuleMatch",
    "RuleSet",
    "UnsupportedStep",
    "build_rewriter",
    "compile_plan",
    "corpus_calls",
    "explore_anomalies",
    "measure_overhead",
    "validate_benchmark",
    "validate_corpus",
]
