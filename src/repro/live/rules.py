"""Declarative mutation rules: the runtime form of a rewrite plan.

A :class:`MutationRule` is what one original database command compiles
into: a match condition on (transaction, label, table, operation kind,
fields) plus the ordered live commands that must execute in its place.
The :class:`RuleSet` holds every rule of a compiled plan together with
the live (pre-postprocess repaired) program they execute against and the
binding translations that map live select results back into the shape
the original transaction code expects.

Rules are *declarative*: compiling a plan produces only data (matchers,
live command references, translation specs); all execution lives in
:mod:`repro.live.intercept`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang import ast
from repro.repair.plan import Rewrite

# How one original select field is reconstructed from live bindings:
#   ``direct``  -- projected per-record from a live select variable;
#   ``sum``     -- the paper's functional-update readback: the scalar sum
#                  of a log variable's records, injected into each record;
#   ``key``     -- a source key component recovered positionally from log
#                  record ids (the source select was replaced wholesale by
#                  a log select).
DIRECT = "direct"
SUM = "sum"
KEY = "key"


@dataclass(frozen=True)
class FieldSource:
    """Where one original select field's value comes from at runtime."""

    orig_field: str
    live_var: str
    live_field: str
    mode: str = DIRECT
    key_index: int = 0  # position in the source key (mode == KEY only)


@dataclass(frozen=True)
class BindingSpec:
    """Rebuilds an original select binding from live select bindings.

    ``direct_var`` names the live variable whose records carry the
    per-record (non-aggregated) fields; when None every field is
    synthesized (scalar sums / key recovery) into a single record.
    """

    var: str  # original select variable
    table: str  # original table (used for synthesized record ids)
    direct_var: Optional[str]
    sources: Tuple[FieldSource, ...]


@dataclass(frozen=True)
class RuleMatch:
    """The declarative match condition of one rule."""

    txn: str
    label: str
    op: str  # "select" | "update" | "insert"
    table: str
    fields: Tuple[str, ...]


@dataclass
class MutationRule:
    """One original command -> its live enforcement.

    ``serving`` lists the labels of the live commands that realise this
    original command, in live body order; ``identity`` marks commands the
    plan left untouched (the rule still fires so counters account for
    every operation).  ``hits`` counts issuances of the original command,
    ``rewrites`` counts live commands executed on its behalf, and
    ``skips`` counts issuances that executed nothing because a merge
    partner already ran the shared live command.
    """

    match: RuleMatch
    serving: Tuple[str, ...]
    identity: bool = False
    binding: Optional[BindingSpec] = None
    hits: int = 0
    rewrites: int = 0
    skips: int = 0

    @property
    def key(self) -> Tuple[str, str]:
        return (self.match.txn, self.match.label)

    def counters(self) -> Dict[str, int]:
        return {"hits": self.hits, "rewrites": self.rewrites, "skips": self.skips}


@dataclass(frozen=True)
class UnsupportedStep:
    """A plan step with no sound runtime analogue, recorded and skipped."""

    step: dict  # the step's wire form (RewriteStep.to_json)
    reason: str

    def to_json(self) -> dict:
        return {"step": dict(self.step), "reason": self.reason}


@dataclass
class RuleSet:
    """Everything the interceptor needs to enforce one compiled plan."""

    original_program: ast.Program
    live_program: ast.Program
    rules: Dict[Tuple[str, str], MutationRule] = field(default_factory=dict)
    # Live commands indexed by (txn, live label), in live body order.
    live_commands: Dict[Tuple[str, str], ast.Command] = field(default_factory=dict)
    live_order: Dict[Tuple[str, str], int] = field(default_factory=dict)
    rewrites: List[Rewrite] = field(default_factory=list)
    unsupported: List[UnsupportedStep] = field(default_factory=list)

    def rule_for(self, txn: str, label: str) -> Optional[MutationRule]:
        return self.rules.get((txn, label))

    def reset_counters(self) -> None:
        for rule in self.rules.values():
            rule.hits = rule.rewrites = rule.skips = 0

    def rewritten_rule_count(self) -> int:
        return sum(1 for r in self.rules.values() if not r.identity)

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-rule counters keyed ``txn/label`` (stable report form)."""
        return {
            f"{txn}/{label}": rule.counters()
            for (txn, label), rule in sorted(self.rules.items())
        }

    def summary(self) -> List[dict]:
        """JSON-ready rule descriptions for reports and wire results."""
        out = []
        for (txn, label), rule in sorted(self.rules.items()):
            out.append(
                {
                    "txn": txn,
                    "label": label,
                    "op": rule.match.op,
                    "table": rule.match.table,
                    "fields": list(rule.match.fields),
                    "serving": list(rule.serving),
                    "identity": rule.identity,
                    **rule.counters(),
                }
            )
        return out
