"""The rewrite interceptor: enforcing compiled rules at execution time.

A :class:`LiveInterceptor` is installed into the semantics schedulers as
the ``executor`` hook (see :func:`repro.semantics.scheduler.run_serial`
and ``run_interleaved``).  The *original* program keeps driving control
flow -- its transaction instances decide which command issues next --
but every database command is looked up in the rule set and its serving
live commands execute instead, atomically within the issuing step:

- each original instance owns a *shadow instance* over the live
  (pre-postprocess repaired) program, sharing the original's iteration
  stack and arguments; live commands evaluate and bind in the shadow;
- serving live commands execute back-to-back under the step's single
  view, so a rule's rewrite is atomic at the interleaving granularity;
- a merged command's second arrival executes nothing (the shared live
  command already ran) and only counts a skip;
- select results are translated back into the original shape through the
  rule's :class:`~repro.live.rules.BindingSpec` (per-record projection
  for direct fields, the functional-update ``sum`` readback for logged
  fields, key recovery from log record ids) so downstream original
  expressions evaluate unchanged.

Loops are handled by issue counting: the i-th issuance of an original
label requires each serving live command to have executed at least i
times, which executes fresh log inserts every iteration while still
deduplicating merge partners within one iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Tuple

from repro.errors import LiveRewriteError
from repro.lang import ast
from repro.live.rules import DIRECT, KEY, SUM, BindingSpec, RuleSet
from repro.semantics.events import Event
from repro.semantics.interp import Instance, ResultSet, execute_command
from repro.semantics.state import DatabaseState


@dataclass
class _ShadowEnv:
    """Per-instance live execution state."""

    shadow: Instance
    issues: Dict[str, int] = field(default_factory=dict)
    exec_count: Dict[str, int] = field(default_factory=dict)


class LiveInterceptor:
    """Executes original commands through a compiled :class:`RuleSet`.

    One interceptor serves one execution (a single history); rule
    counters accumulate on the shared rule set across interceptors.
    """

    def __init__(self, ruleset: RuleSet):
        self.ruleset = ruleset
        self._envs: Dict[int, _ShadowEnv] = {}

    # The scheduler calls the executor exactly like execute_command.
    def __call__(
        self,
        state: DatabaseState,
        instance: Instance,
        cmd: ast.Command,
        view: FrozenSet[int],
    ) -> List[Event]:
        return self.execute(state, instance, cmd, view)

    def execute(
        self,
        state: DatabaseState,
        instance: Instance,
        cmd: ast.Command,
        view: FrozenSet[int],
    ) -> List[Event]:
        rule = self.ruleset.rule_for(instance.txn.name, getattr(cmd, "label", ""))
        if rule is None:
            raise LiveRewriteError(
                f"no mutation rule for {instance.txn.name}/"
                f"{getattr(cmd, 'label', '')!r}; the rule set was compiled "
                "for a different program"
            )
        env = self._env(instance)
        rule.hits += 1
        issue = env.issues.get(rule.match.label, 0) + 1
        env.issues[rule.match.label] = issue
        events: List[Event] = []
        executed = 0
        for lab in rule.serving:
            if env.exec_count.get(lab, 0) >= issue:
                continue  # a merge partner already ran the shared command
            live_cmd = self.ruleset.live_commands[(instance.txn.name, lab)]
            events.extend(execute_command(state, env.shadow, live_cmd, view))
            env.exec_count[lab] = env.exec_count.get(lab, 0) + 1
            executed += 1
        if executed:
            rule.rewrites += executed
        else:
            rule.skips += 1
        if isinstance(cmd, ast.Select):
            assert rule.binding is not None
            instance.store[cmd.var] = self._translate(rule.binding, env.shadow)
        return events

    # -- shadow bookkeeping ------------------------------------------------

    def _env(self, instance: Instance) -> _ShadowEnv:
        env = self._envs.get(id(instance))
        if env is None:
            shadow = Instance(instance.iid, self.ruleset.live_program, instance.call)
            # Share the loop-counter stack so live expressions see the
            # original instance's iteration state.
            shadow.iter_stack = instance.iter_stack
            env = _ShadowEnv(shadow=shadow)
            self._envs[id(instance)] = env
        return env

    # -- binding translation ----------------------------------------------

    def _translate(self, spec: BindingSpec, shadow: Instance) -> ResultSet:
        scalars: Dict[str, Any] = {}
        for source in spec.sources:
            if source.mode == SUM:
                values = [
                    fields.get(source.live_field)
                    for _, fields in self._live_records(shadow, source.live_var)
                ]
                present = [v for v in values if v is not None]
                scalars[source.orig_field] = sum(present) if present else 0
        if spec.direct_var is not None:
            out: ResultSet = []
            for rid, fields in self._live_records(shadow, spec.direct_var):
                record: Dict[str, Any] = {}
                for source in spec.sources:
                    if source.mode == DIRECT:
                        record[source.orig_field] = fields.get(source.live_field)
                    else:
                        record[source.orig_field] = scalars[source.orig_field]
                out.append((rid, record))
            return out
        # No per-record carrier survived the rewrite: synthesize the one
        # record the original expressions may address via at_1 / sum.
        record = {}
        key_tuple: Tuple[Any, ...] = ()
        for source in spec.sources:
            if source.mode == SUM:
                record[source.orig_field] = scalars[source.orig_field]
            records = self._live_records(shadow, source.live_var)
            if records and not key_tuple:
                # Log keys extend the source key with log_id; strip it.
                key_tuple = tuple(records[0][0][1][:-1])
            if source.mode == KEY:
                record[source.orig_field] = (
                    key_tuple[source.key_index] if key_tuple else None
                )
        return [((spec.table, key_tuple), record)]

    def _live_records(self, shadow: Instance, var: str) -> ResultSet:
        records = shadow.store.get(var)
        if records is None:
            raise LiveRewriteError(
                f"live variable {var!r} unbound during binding translation "
                "(serving commands did not execute in order)"
            )
        return records
