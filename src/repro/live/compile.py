"""Lowering a :class:`~repro.repair.plan.RewritePlan` into mutation rules.

The compiler replays the plan step by step on the original program --
exactly as ``RewritePlan.apply`` would -- while tracking, for every
original database command, which live commands end up realising it and
how every original select binding is reconstructed from live bindings.

Two observations make this tractable without symbolic diffing:

1. every step derives labels by a fixed grammar (splits append ``.i``,
   logger companions append ``L``, merges record loser -> winner in the
   :class:`~repro.repair.plan.PlanContext`), so the serving relation can
   be folded step by step; and
2. the refactoring rules rewrite selects *in place* (redirect renames
   table/fields, logger replaces a select by a narrowed select plus a
   log select, merges absorb the loser's fields into the winner), so a
   per-select trace of (current table, current variable, per-field
   source) composes across steps.

The :class:`~repro.repair.plan.PostprocessStep` has no sound runtime
analogue -- dead-select elimination and table dissolution are
compile-time layout changes -- so it is recorded as an
:class:`~repro.live.rules.UnsupportedStep` and the rules execute against
the pre-postprocess layout (which retains every original table, so data
migration along the plan's rewrites populates it).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import LiveRewriteError, PlanError, ReproError
from repro.lang import ast
from repro.lang.traverse import iter_subexpressions
from repro.lang.validate import well_formed_where
from repro.live.rules import (
    DIRECT,
    KEY,
    SUM,
    BindingSpec,
    FieldSource,
    MutationRule,
    RuleMatch,
    RuleSet,
    UnsupportedStep,
)
from repro.repair.plan import (
    LoggerStep,
    MergeStep,
    PlanContext,
    RedirectStep,
    RewritePlan,
    SplitStep,
)

NO_RUNTIME_ANALOGUE = (
    "no sound runtime analogue: dead-select elimination and table "
    "dissolution are compile-time layout changes; live rules run "
    "against the pre-postprocess layout instead"
)


@dataclass
class _Entry:
    """One original select field tracked through the plan."""

    osel: Tuple[str, str]  # (txn, original label)
    orig_field: str
    cur_field: str
    mode: str = DIRECT
    key_index: int = 0


@dataclass
class _Trace:
    """The live select currently carrying some original fields."""

    txn: str
    label: str
    var: str
    table: str
    entries: List[_Entry] = dc_field(default_factory=list)


def compile_plan(program: ast.Program, plan: RewritePlan) -> RuleSet:
    """Lower ``plan`` into a :class:`RuleSet` enforcing it on ``program``.

    Raises :class:`~repro.errors.LiveRewriteError` when a step cannot be
    installed (inapplicable at its position, or the lowered rules would
    not be observationally faithful to the static repair).
    """
    serving: Dict[Tuple[str, str], List[str]] = {}
    orig_cmds: Dict[Tuple[str, str], ast.Command] = {}
    traces: List[_Trace] = []
    for txn in program.transactions:
        for cmd in ast.iter_db_commands(txn):
            key = (txn.name, cmd.label)
            if key in orig_cmds:
                raise LiveRewriteError(
                    f"{txn.name}: duplicate label {cmd.label!r}; labels must "
                    "be unique for live rule matching"
                )
            orig_cmds[key] = cmd
            serving[key] = [cmd.label]
            if isinstance(cmd, ast.Select):
                schema = program.schema(cmd.table)
                traces.append(
                    _Trace(
                        txn=txn.name,
                        label=cmd.label,
                        var=cmd.var,
                        table=cmd.table,
                        entries=[
                            _Entry(osel=key, orig_field=f, cur_field=f)
                            for f in cmd.selected_fields(schema)
                        ],
                    )
                )

    ruleset = RuleSet(original_program=program, live_program=program)
    ctx = PlanContext()
    cur = program
    for i, step in enumerate(plan.steps, 1):
        if step.kind == "postprocess":
            ruleset.unsupported.append(
                UnsupportedStep(step=step.to_json(), reason=NO_RUNTIME_ANALOGUE)
            )
            continue
        try:
            _fold_step(cur, step, ctx, serving, traces)
            cur = step.apply(cur, ctx)
        except (PlanError, LiveRewriteError) as exc:
            raise LiveRewriteError(
                f"rule install failed at step {i} ({step.explain()}): {exc}"
            ) from exc
    ruleset.live_program = cur
    ruleset.rewrites = list(ctx.rewrites)
    _build_rules(ruleset, serving, traces)
    return ruleset


# ---------------------------------------------------------------------------
# The fold: one case per step kind, inspecting the pre-application program
# ---------------------------------------------------------------------------


def _fold_step(cur, step, ctx, serving, traces) -> None:
    if isinstance(step, SplitStep):
        resolved = ctx.current(step.txn, step.label)
        parts = [f"{resolved}.{i}" for i in range(1, len(step.groups) + 1)]
        _replace_serving(serving, step.txn, resolved, parts)
    elif isinstance(step, MergeStep):
        _fold_merge(cur, step, ctx, serving, traces)
    elif isinstance(step, RedirectStep):
        _fold_redirect(cur, step, traces)
    elif isinstance(step, LoggerStep):
        _fold_logger(cur, step, serving, traces)
    # intro_schema / intro_field only change the layout; nothing to track.


def _replace_serving(serving, txn: str, old: str, new: List[str]) -> None:
    for (t, _), labels in serving.items():
        if t != txn or old not in labels:
            continue
        out: List[str] = []
        for lab in labels:
            if lab == old:
                out.extend(n for n in new if n not in out)
            elif lab not in out:
                out.append(lab)
        labels[:] = out


def _fold_merge(cur, step: MergeStep, ctx, serving, traces) -> None:
    l1 = ctx.current(step.txn, step.label1)
    l2 = ctx.current(step.txn, step.label2)
    # try_merging keeps the earlier-positioned command; mirror its swap.
    body = list(cur.transaction(step.txn).body)
    pos = {getattr(c, "label", ""): i for i, c in enumerate(body)}
    if l1 in pos and l2 in pos and pos[l1] > pos[l2]:
        l1, l2 = l2, l1
    winner = _trace_at(traces, step.txn, l1)
    loser = _trace_at(traces, step.txn, l2)
    if loser is not None and winner is not None:
        winner.entries.extend(loser.entries)
        traces.remove(loser)
    _replace_serving(serving, step.txn, l2, [l1])


def _fold_redirect(cur, step: RedirectStep, traces) -> None:
    rewrite = step._build(cur)
    if rewrite is None:
        raise LiveRewriteError(
            f"no theta-hat from {step.src_table} to {step.dst_table}"
        )
    src = cur.schema(step.src_table)
    moved = set(rewrite.moved_non_key_fields(cur))
    fmap = rewrite.fields()
    for trace in traces:
        if trace.table != step.src_table:
            continue
        cmd = _live_command(cur, trace.txn, trace.label)
        if not isinstance(cmd, ast.Select):
            continue
        if not (set(cmd.selected_fields(src)) & moved):
            continue
        trace.table = step.dst_table
        for entry in trace.entries:
            if entry.mode == DIRECT:
                entry.cur_field = fmap[entry.cur_field]


def _fold_logger(cur, step: LoggerStep, serving, traces) -> None:
    rewrite = step._build(cur)
    if rewrite is None:
        raise LiveRewriteError(f"no schema named {step.table}")
    src = cur.schema(step.table)
    for trace in list(traces):
        if trace.table != step.table:
            continue
        cmd = _live_command(cur, trace.txn, trace.label)
        if not isinstance(cmd, ast.Select):
            continue
        selected = cmd.selected_fields(src)
        if rewrite.field not in selected:
            continue
        others = tuple(f for f in selected if f != rewrite.field)
        log_var = f"{cmd.var}_{rewrite.log_field}"
        narrowed_kept = bool(others and set(others) - set(src.key))
        log_label = f"{trace.label}L" if narrowed_kept else trace.label
        log_trace = _Trace(
            txn=trace.txn, label=log_label, var=log_var, table=rewrite.log_table
        )
        for entry in list(trace.entries):
            if entry.cur_field == rewrite.field:
                entry.mode = SUM
                entry.cur_field = rewrite.log_field
            elif narrowed_kept:
                continue  # stays on the narrowed select
            elif entry.cur_field in src.key:
                entry.mode = KEY
                entry.key_index = src.key.index(entry.cur_field)
            else:  # pragma: no cover - walk() keeps such selects narrowed
                raise LiveRewriteError(
                    f"{trace.txn}/{trace.label}: field {entry.cur_field} "
                    "stranded by logger lowering"
                )
            trace.entries.remove(entry)
            log_trace.entries.append(entry)
        affected = {e.osel for e in log_trace.entries} | {
            e.osel for e in trace.entries
        }
        if narrowed_kept:
            for txn, lab in affected:
                labels = serving[(txn, lab)]
                if trace.label in labels and log_label not in labels:
                    labels.insert(labels.index(trace.label) + 1, log_label)
        else:
            traces.remove(trace)
        traces.append(log_trace)
    # Non-zero field initialisations gain a companion log insert (label+L).
    for txn in cur.transactions:
        for cmd in ast.iter_db_commands(txn):
            if not isinstance(cmd, ast.Insert) or cmd.table != step.table:
                continue
            if rewrite.field not in cmd.written_fields:
                continue
            if dict(cmd.assignments)[rewrite.field] == ast.Const(0):
                continue
            for (t, _), labels in serving.items():
                if t == txn.name and cmd.label in labels:
                    companion = f"{cmd.label}L"
                    if companion not in labels:
                        labels.insert(labels.index(cmd.label) + 1, companion)


def _trace_at(traces, txn: str, label: str) -> Optional[_Trace]:
    for trace in traces:
        if trace.txn == txn and trace.label == label:
            return trace
    return None


def _live_command(program, txn_name: str, label: str) -> Optional[ast.Command]:
    try:
        txn = program.transaction(txn_name)
    except (KeyError, ReproError):
        return None
    for cmd in ast.iter_db_commands(txn):
        if getattr(cmd, "label", "") == label:
            return cmd
    return None


# ---------------------------------------------------------------------------
# Final rule construction + soundness checks
# ---------------------------------------------------------------------------


def _build_rules(ruleset: RuleSet, serving, traces) -> None:
    program = ruleset.original_program
    live = ruleset.live_program
    for txn in live.transactions:
        for order, cmd in enumerate(ast.iter_db_commands(txn)):
            key = (txn.name, cmd.label)
            ruleset.live_commands[key] = cmd
            ruleset.live_order[key] = order

    entries_by_osel: Dict[Tuple[str, str], List[Tuple[_Entry, _Trace]]] = {}
    for trace in traces:
        for entry in trace.entries:
            entries_by_osel.setdefault(entry.osel, []).append((entry, trace))

    for txn in program.transactions:
        for cmd in ast.iter_db_commands(txn):
            key = (txn.name, cmd.label)
            labels = serving[key]
            for lab in labels:
                if (txn.name, lab) not in ruleset.live_commands:
                    raise LiveRewriteError(
                        f"{txn.name}/{cmd.label}: serving live command "
                        f"{lab!r} not found in the rewritten program "
                        "(rule install failure)"
                    )
            labels = sorted(labels, key=lambda lab: ruleset.live_order[(txn.name, lab)])
            identity = (
                labels == [cmd.label]
                and ruleset.live_commands[key] == cmd
            )
            binding = None
            if isinstance(cmd, ast.Select):
                binding = _binding_spec(program, txn, cmd, entries_by_osel[key])
            match = RuleMatch(
                txn=txn.name,
                label=cmd.label,
                op=_op_kind(cmd),
                table=cmd.table,
                fields=_accessed_fields(program, cmd),
            )
            ruleset.rules[key] = MutationRule(
                match=match,
                serving=tuple(labels),
                identity=identity,
                binding=binding,
            )


def _op_kind(cmd: ast.Command) -> str:
    if isinstance(cmd, ast.Select):
        return "select"
    if isinstance(cmd, ast.Update):
        return "update"
    return "insert"


def _accessed_fields(program, cmd: ast.Command) -> Tuple[str, ...]:
    if isinstance(cmd, ast.Select):
        return cmd.selected_fields(program.schema(cmd.table))
    return cmd.written_fields


def _binding_spec(program, txn, cmd: ast.Select, entry_pairs) -> BindingSpec:
    by_field = {entry.orig_field: (entry, trace) for entry, trace in entry_pairs}
    schema = program.schema(cmd.table)
    sources: List[FieldSource] = []
    direct_var: Optional[str] = None
    for f in cmd.selected_fields(schema):
        entry, trace = by_field[f]
        if entry.mode == DIRECT:
            direct_var = trace.var
        sources.append(
            FieldSource(
                orig_field=f,
                live_var=trace.var,
                live_field=entry.cur_field,
                mode=entry.mode,
                key_index=entry.key_index,
            )
        )
    spec = BindingSpec(
        var=cmd.var, table=cmd.table, direct_var=direct_var, sources=tuple(sources)
    )
    _check_spec_sound(program, txn, cmd, spec, schema)
    return spec


def _check_spec_sound(program, txn, cmd: ast.Select, spec: BindingSpec, schema):
    """Reject lowered bindings whose reconstruction could diverge.

    A ``sum`` field is a scalar injected into every record of the
    binding: ``at_1`` reads it exactly; an original ``sum(v.f)`` over it
    is only faithful when the binding provably holds at most one record
    (full-key where clause) or is synthesized as a single record.  A
    ``key`` field recovered from log ids supports ``at_1`` access only.
    """
    summed = {s.orig_field for s in spec.sources if s.mode == SUM}
    keyed = {s.orig_field for s in spec.sources if s.mode == KEY}
    if not summed and not keyed:
        return
    single_record = spec.direct_var is None or (
        well_formed_where(schema, cmd.where) is not None
    )
    for expr in _iter_txn_exprs(txn):
        for sub in iter_subexpressions(expr):
            if isinstance(sub, ast.At) and sub.var == cmd.var:
                if sub.field in (summed | keyed) and sub.index != ast.Const(1):
                    raise LiveRewriteError(
                        f"{txn.name}: at_k (k != 1) access to "
                        f"{cmd.var}.{sub.field} has no faithful live "
                        "reconstruction"
                    )
            if isinstance(sub, ast.Agg) and sub.var == cmd.var:
                if sub.field in summed and not (
                    sub.func == "sum" and single_record
                ):
                    raise LiveRewriteError(
                        f"{txn.name}: {sub.func} aggregation of logged "
                        f"field {cmd.var}.{sub.field} is not faithful "
                        "over a multi-record live binding"
                    )
                if sub.field in keyed:
                    raise LiveRewriteError(
                        f"{txn.name}: aggregation of key field "
                        f"{cmd.var}.{sub.field} recovered from log ids "
                        "is not supported"
                    )


def _iter_txn_exprs(txn) -> Iterator[ast.Expr]:
    def where_exprs(where: ast.Where) -> Iterator[ast.Expr]:
        if isinstance(where, ast.WhereCond):
            yield where.expr
        elif isinstance(where, ast.WhereBool):
            yield from where_exprs(where.left)
            yield from where_exprs(where.right)

    def walk(body) -> Iterator[ast.Expr]:
        for cmd in body:
            if isinstance(cmd, ast.Select):
                yield from where_exprs(cmd.where)
            elif isinstance(cmd, ast.Update):
                for _, e in cmd.assignments:
                    yield e
                yield from where_exprs(cmd.where)
            elif isinstance(cmd, ast.Insert):
                for _, e in cmd.assignments:
                    yield e
            elif isinstance(cmd, ast.If):
                yield cmd.cond
                yield from walk(cmd.body)
            elif isinstance(cmd, ast.Iterate):
                yield cmd.count
                yield from walk(cmd.body)

    yield from walk(txn.body)
    if txn.ret is not None:
        yield txn.ret
