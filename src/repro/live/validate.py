"""The live-repair validation harness: a full-corpus differential gate.

Installing mutation rules on a running store is only safe if the rules
deliver what the static repair promised.  This module checks that on two
axes, for every corpus program (or any single benchmark):

**Serial fidelity** -- replaying a seeded transaction mix serially, the
original program executed *through* the rules must produce exactly the
results of the statically repaired program.  This is an equality gate:
any divergence fails.

**Anomaly verdict** -- replaying the same mix under seeded weak views
(:class:`~repro.semantics.views.RandomPartialView`), the rules must
agree with the static repair on whether anomalies remain, judged by the
existing serializability verdict
(:func:`~repro.semantics.history.is_serializable`).  The comparison
target is the *pre-postprocess* repaired program: the exact program the
rules execute.  Postprocessing only prunes commands made dead by the
repair and has no runtime analogue (a running transaction still issues
the original operation sequence), so the pruned program can show fewer
dependency-graph cycles than the enforced layout while being equivalent
on results.  The post-postprocess counts are recorded alongside for
reference, as are the original program's (which show what the repair
eliminated).

Weak replays of some corpus programs can abort a schedule outright (a
partial view hides a runtime-inserted record from its own ``at_1``
reader); those schedules are counted as ``errors`` rather than failing
the harness, identically on every side of the differential.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.corpus import ALL_BENCHMARKS, BY_NAME, Benchmark
from repro.errors import ReproError, SemanticsError
from repro.lang import ast
from repro.live.compile import compile_plan
from repro.live.intercept import LiveInterceptor
from repro.refactor.migrate import migrate_database
from repro.repair import repair
from repro.repair.plan import RewritePlan
from repro.semantics.history import is_serializable
from repro.semantics.interp import TxnCall
from repro.semantics.scheduler import (
    count_db_commands,
    random_schedules,
    run_interleaved,
    run_serial,
)
from repro.semantics.state import Database
from repro.semantics.views import RandomPartialView

DEFAULT_SAMPLES = 120
DEFAULT_SEED = 11
DEFAULT_SCALE = 2


@dataclass(frozen=True)
class ExplorationCount:
    """Outcome of one seeded weak exploration of a program."""

    anomalies: int
    errors: int
    samples: int

    def to_json(self) -> dict:
        return {
            "anomalies": self.anomalies,
            "errors": self.errors,
            "samples": self.samples,
        }


@dataclass(frozen=True)
class BenchmarkVerdict:
    """The differential outcome for one benchmark."""

    benchmark: str
    seed: int
    scale: int
    calls: int
    rules: int
    identity_rules: int
    unsupported: int
    serial_match: bool
    original: ExplorationCount
    static: ExplorationCount
    target: ExplorationCount  # pre-postprocess repaired program
    live: ExplorationCount  # original program + rules
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def verdict_match(self) -> bool:
        """Do rules and their target program agree on "anomalies remain"?"""
        return (self.target.anomalies > 0) == (self.live.anomalies > 0)

    @property
    def passed(self) -> bool:
        return self.serial_match and self.verdict_match

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "seed": self.seed,
            "scale": self.scale,
            "calls": self.calls,
            "rules": self.rules,
            "identity_rules": self.identity_rules,
            "unsupported": self.unsupported,
            "serial_match": self.serial_match,
            "verdict_match": self.verdict_match,
            "passed": self.passed,
            "original": self.original.to_json(),
            "static": self.static.to_json(),
            "target": self.target.to_json(),
            "live": self.live.to_json(),
            "counters": {k: dict(v) for k, v in self.counters.items()},
        }


@dataclass(frozen=True)
class ProtectReport:
    """A validation run over one or more benchmarks."""

    samples: int
    seed: int
    scale: int
    verdicts: Tuple[BenchmarkVerdict, ...]

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def failures(self) -> List[str]:
        return [v.benchmark for v in self.verdicts if not v.passed]

    def to_json(self) -> dict:
        return {
            "samples": self.samples,
            "seed": self.seed,
            "scale": self.scale,
            "passed": self.passed,
            "failures": self.failures,
            "verdicts": [v.to_json() for v in self.verdicts],
        }


def corpus_calls(
    bench: Benchmark, rng: random.Random, scale: int
) -> List[TxnCall]:
    """One call per mix entry plus a second instance of the head entry.

    The duplicate gives every benchmark at least one same-transaction
    race, which several corpus anomalies (lost updates in particular)
    need to manifest.
    """
    calls = [TxnCall(name, gen(rng, scale)) for name, _, gen in bench.mix]
    head_rng = random.Random(rng.random())
    name0, _, gen0 = bench.mix[0]
    calls.append(TxnCall(name0, gen0(head_rng, scale)))
    return calls


def explore_anomalies(
    program: ast.Program,
    db: Database,
    calls: Sequence[TxnCall],
    samples: int,
    seed: int,
    executor_factory: Optional[Callable[[], Callable[..., list]]] = None,
) -> ExplorationCount:
    """Count non-serializable histories over seeded weak replays.

    Each schedule gets its own :class:`RandomPartialView` derived from
    ``seed`` so every differential side explores the same visibility
    space.  Schedules whose weak replay raises a
    :class:`~repro.errors.SemanticsError` (a hidden record breaking an
    ``at_1`` read) count as errors, not anomalies.
    """
    counts = [count_db_commands(program, call, db) for call in calls]
    rng = random.Random(seed)
    anomalies = errors = 0
    for i, schedule in enumerate(random_schedules(counts, rng, samples)):
        policy = RandomPartialView(random.Random(seed + i), p_visible=0.5)
        executor = executor_factory() if executor_factory is not None else None
        try:
            history = run_interleaved(
                program, db, calls, schedule, policy, executor=executor
            )
        except SemanticsError:
            errors += 1
            continue
        if not is_serializable(history):
            anomalies += 1
    return ExplorationCount(anomalies=anomalies, errors=errors, samples=samples)


def validate_benchmark(
    bench: Benchmark,
    *,
    plan: Optional[RewritePlan] = None,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    scale: int = DEFAULT_SCALE,
) -> BenchmarkVerdict:
    """Run the live-vs-static differential for one benchmark.

    ``plan`` defaults to the benchmark's own greedy repair; passing a
    plan validates an externally supplied repair (the ``--plan-in``
    path) instead -- the static side is then that plan's replay, so the
    differential compares the rules against exactly the repair they
    were compiled from.
    """
    from repro.repair.engine import replay_plan

    program = bench.program()
    if plan is None:
        report = repair(program)
        plan = report.plan
    else:
        report = replay_plan(program, plan)
    ruleset = compile_plan(program, plan)
    db = bench.database(scale=scale)
    live_db = migrate_database(db, ruleset.live_program, ruleset.rewrites)
    static_db = migrate_database(db, report.repaired_program, report.rewrites)

    rng = random.Random(seed)
    calls = corpus_calls(bench, rng, scale)

    serial_static = run_serial(report.repaired_program, static_db, calls)
    ruleset.reset_counters()
    serial_live = run_serial(
        program, live_db, calls, executor=LiveInterceptor(ruleset)
    )
    serial_match = serial_static.results == serial_live.results
    # Counters describe the serial validation replay alone; the weak
    # explorations below would otherwise swamp them with sample noise.
    counters = ruleset.counters()

    original = explore_anomalies(program, db, calls, samples, seed)
    static = explore_anomalies(
        report.repaired_program, static_db, calls, samples, seed
    )
    target = explore_anomalies(
        ruleset.live_program, live_db, calls, samples, seed
    )
    live = explore_anomalies(
        program,
        live_db,
        calls,
        samples,
        seed,
        executor_factory=lambda: LiveInterceptor(ruleset),
    )
    return BenchmarkVerdict(
        benchmark=bench.name,
        seed=seed,
        scale=scale,
        calls=len(calls),
        rules=len(ruleset.rules),
        identity_rules=sum(1 for r in ruleset.rules.values() if r.identity),
        unsupported=len(ruleset.unsupported),
        serial_match=serial_match,
        original=original,
        static=static,
        target=target,
        live=live,
        counters=counters,
    )


def validate_corpus(
    *,
    names: Optional[Sequence[str]] = None,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    scale: int = DEFAULT_SCALE,
) -> ProtectReport:
    """Run the differential gate over the whole corpus (or ``names``)."""
    if names is None:
        benches = list(ALL_BENCHMARKS)
    else:
        missing = [n for n in names if n not in BY_NAME]
        if missing:
            known = ", ".join(sorted(BY_NAME))
            raise ReproError(
                f"unknown benchmark(s) {', '.join(missing)}; choose from {known}"
            )
        benches = [BY_NAME[n] for n in names]
    verdicts = tuple(
        validate_benchmark(bench, samples=samples, seed=seed, scale=scale)
        for bench in benches
    )
    return ProtectReport(
        samples=samples, seed=seed, scale=scale, verdicts=verdicts
    )
