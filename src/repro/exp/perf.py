"""Figures 12-15: throughput and latency sweeps on simulated clusters.

One sweep runs the four configurations of Section 7.2 over a range of
closed-loop client counts:

- **EC**: the original program, all transactions weakly consistent;
- **SC**: the original program, all transactions serializable;
- **AT-EC**: the Atropos-refactored program, all weakly consistent;
- **AT-SC**: the refactored program with residually-anomalous
  transactions serializable and the rest weak.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.corpus import Benchmark
from repro.refactor.migrate import migrate_database
from repro.store import (
    ClusterSpec,
    PerfConfig,
    US_CLUSTER,
    profile_program,
    simulate,
)
from repro.store.profile import sample_calls_for

MODES = ("EC", "AT-EC", "SC", "AT-SC")


@dataclass
class PerfPoint:
    clients: int
    throughput: float
    avg_latency_ms: float


@dataclass
class PerfSeries:
    mode: str
    points: List[PerfPoint] = field(default_factory=list)

    def throughputs(self) -> List[float]:
        return [p.throughput for p in self.points]

    def latencies(self) -> List[float]:
        return [p.avg_latency_ms for p in self.points]


@dataclass
class PerfSweep:
    benchmark: str
    cluster: str
    client_counts: List[int]
    series: Dict[str, PerfSeries]

    def gain_at_peak(self) -> float:
        """AT-SC throughput gain over SC at the largest client count
        (the paper's headline is a 120% average gain)."""
        at_sc = self.series["AT-SC"].points[-1].throughput
        sc = self.series["SC"].points[-1].throughput
        return (at_sc - sc) / sc if sc > 0 else float("inf")

    def latency_reduction_at_peak(self) -> float:
        """AT-SC latency reduction vs SC (paper: 45% average)."""
        at_sc = self.series["AT-SC"].points[-1].avg_latency_ms
        sc = self.series["SC"].points[-1].avg_latency_ms
        return (sc - at_sc) / sc if sc > 0 else 0.0


def run_perf_sweep(
    benchmark: Benchmark,
    cluster: ClusterSpec = US_CLUSTER,
    client_counts: Sequence[int] = (1, 8, 32, 64, 128),
    config: Optional[PerfConfig] = None,
    scale: int = 16,
    seed: int = 7,
    strategy: object = "serial",
    workspace=None,
) -> PerfSweep:
    """Run the four-configuration sweep for one benchmark (repair step
    via :class:`repro.api.Workspace`).

    ``strategy`` configures the repair step's anomaly oracle (the sweep
    itself is simulation-bound); a caller-provided ``workspace`` wins
    over ``strategy`` and is left open for reuse.
    """
    from repro.api import Workspace

    config = config or PerfConfig()
    rng = random.Random(seed)
    program = benchmark.program()
    if workspace is not None:
        report = workspace.repair_program(program)
    else:
        with Workspace(strategy=strategy) as ws:
            report = ws.repair_program(program)

    db = benchmark.database(scale)
    calls = sample_calls_for(benchmark, rng, scale)
    profiles_orig = profile_program(program, db, calls)

    at_program = report.repaired_program
    at_db = migrate_database(db, at_program, report.rewrites)
    profiles_at = profile_program(at_program, at_db, calls)

    at_sc_program = report.serializable_variant()
    flagged = {t.name for t in at_sc_program.transactions if t.serializable}
    profiles_at_sc = {
        name: (
            prof
            if name not in flagged
            else type(prof)(txn=prof.txn, ops=prof.ops, serializable=True)
        )
        for name, prof in profiles_at.items()
    }

    mix = [(name, weight) for name, weight, _ in benchmark.mix]
    series = {mode: PerfSeries(mode) for mode in MODES}
    for clients in client_counts:
        runs = {
            "EC": simulate(profiles_orig, mix, cluster, clients, config),
            "SC": simulate(
                profiles_orig, mix, cluster, clients, config, serialize_all=True
            ),
            "AT-EC": simulate(profiles_at, mix, cluster, clients, config),
            "AT-SC": simulate(profiles_at_sc, mix, cluster, clients, config),
        }
        for mode, result in runs.items():
            series[mode].points.append(
                PerfPoint(
                    clients=clients,
                    throughput=result.throughput,
                    avg_latency_ms=result.avg_latency_ms,
                )
            )
    return PerfSweep(
        benchmark=benchmark.name,
        cluster=cluster.name,
        client_counts=list(client_counts),
        series=series,
    )
