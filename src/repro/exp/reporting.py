"""Plain-text rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    """Align columns; no external dependencies, terminal-friendly."""
    materialized: List[List[str]] = [list(map(str, headers))]
    materialized += [list(map(str, row)) for row in rows]
    widths = [
        max(len(row[i]) for row in materialized)
        for i in range(len(materialized[0]))
    ]
    lines = []
    for idx, row in enumerate(materialized):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[int], ys: Sequence[float]) -> str:
    pairs = ", ".join(f"{x}:{y:.1f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def format_stats(title: str, stats: dict) -> str:
    """Render a counter mapping (solver/cache stats) on one line."""
    body = ", ".join(f"{k}={stats[k]}" for k in sorted(stats))
    return f"{title}: {body}" if body else f"{title}: (empty)"


def format_plan(title: str, plan) -> str:
    """Render a rewrite plan's provenance: a header naming the step count
    and one indented, numbered line per step (``plan.explain()``)."""
    steps = len(plan)
    if not steps:
        return f"{title}: (no rewrites)"
    body = "\n".join(f"  {line}" for line in plan.explain().splitlines())
    noun = "step" if steps == 1 else "steps"
    return f"{title}: {steps} {noun}\n{body}"
