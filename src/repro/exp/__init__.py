"""Experiment drivers: one module per paper table/figure.

- :mod:`repro.exp.table1` -- static anomaly counts and repair (Table 1);
- :mod:`repro.exp.perf` -- throughput/latency sweeps (Figures 12-15);
- :mod:`repro.exp.random_search` -- random-refactoring baseline (Fig 16);
- :mod:`repro.exp.invariants` -- SmallBank application invariants (A.2);
- :mod:`repro.exp.reporting` -- plain-text table/series rendering.
"""

from repro.exp.table1 import Table1Row, run_table1, run_table1_row
from repro.exp.perf import PerfPoint, PerfSeries, run_perf_sweep
from repro.exp.random_search import RandomSearchResult, run_random_search
from repro.exp.invariants import InvariantReport, run_invariant_study
from repro.exp.reporting import format_plan, format_stats, format_table

__all__ = [
    "Table1Row",
    "run_table1",
    "run_table1_row",
    "PerfPoint",
    "PerfSeries",
    "run_perf_sweep",
    "RandomSearchResult",
    "run_random_search",
    "InvariantReport",
    "run_invariant_study",
    "format_plan",
    "format_stats",
    "format_table",
]
