"""Table 1: anomalous access pairs before/after repair, per level.

For each benchmark the driver reports the columns of the paper's Table 1:
transaction count, table counts before and after refactoring, anomaly
counts under EC for the original (EC) and refactored (AT) programs,
anomaly counts under causal consistency (CC) and repeatable read (RR)
for the original program, and the total analysis+repair time.

Since the façade landed (:mod:`repro.api`) this driver is a thin
wrapper over one :class:`~repro.api.workspace.Workspace`: the workspace
owns the oracle execution strategy and the memo cache, and every row's
repair run and CC/RR sweeps go through it -- sharing warm solver
sessions and cache entries across rows exactly like the service does
across requests.  ``strategy``/``cache``/``cache_dir`` keep their
historical meanings and ownership rules (named strategies and
``cache_dir`` caches are owned here and torn down; instances stay the
caller's).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis import CC, RR
from repro.analysis.pipeline import QueryCache
from repro.corpus import ALL_BENCHMARKS, Benchmark
from repro.repair.engine import RepairReport


@dataclass
class Table1Row:
    """One benchmark's measured row, paired with the paper's numbers."""

    name: str
    txns: int
    tables_before: int
    tables_after: int
    ec: int
    at: int
    cc: int
    rr: int
    time_s: float
    report: RepairReport
    paper_ec: int
    paper_at: int
    # Oracle execution counters accumulated over the row's analyses.
    oracle_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def plan(self):
        """The rewrite plan that produced the row's repaired program."""
        return self.report.plan

    @property
    def repair_seconds(self) -> float:
        """Wall-clock of the repair search alone (excludes CC/RR sweeps)."""
        return self.report.elapsed_seconds

    def plan_provenance(self) -> Dict[str, object]:
        """Plan metadata for reports/JSON: step counts by kind plus the
        full serialized plan, so any row is reproducible from its JSON."""
        by_kind: Dict[str, int] = {}
        for step in self.report.plan:
            by_kind[step.kind] = by_kind.get(step.kind, 0) + 1
        return {
            "benchmark": self.name,
            "strategy": self.report.strategy,
            "steps": len(self.report.plan),
            "steps_by_kind": by_kind,
            "plan": self.report.plan.to_json(),
        }

    def columns(self) -> List[str]:
        return [
            self.name,
            str(self.txns),
            f"{self.tables_before}, {self.tables_after}",
            str(self.ec),
            str(self.at),
            str(self.cc),
            str(self.rr),
            f"{self.time_s:.1f}",
        ]


def _merge_stats(into: Dict[str, int], report) -> None:
    into["sat_queries"] = into.get("sat_queries", 0) + report.sat_queries
    into["cache_hits"] = into.get("cache_hits", 0) + report.cache_hits
    into["cache_misses"] = into.get("cache_misses", 0) + report.cache_misses
    for key, value in report.solver_stats.items():
        into[key] = into.get(key, 0) + value


def run_table1_row(
    benchmark: Benchmark,
    strategy: object = "serial",
    cache: Optional[QueryCache] = None,
    search: object = "greedy",
    cache_dir: Optional[str] = None,
    workspace=None,
) -> Table1Row:
    """Analyse and repair one benchmark (a thin wrapper over
    :class:`repro.api.Workspace`).

    A strategy named by string is resolved once, shared by the repair
    run and the CC/RR sweeps, and torn down before returning; a strategy
    instance is the caller's to close.  ``search`` selects the plan
    search (see :func:`repro.repair.engine.repair`); the produced plan
    rides on the row (``row.plan`` / ``row.plan_provenance()``).
    ``cache_dir`` (ignored when an explicit ``cache`` is given) backs
    the row's memo cache with a
    :class:`~repro.analysis.pipeline.PersistentQueryCache`, so repeated
    runs warm-start from disk.  ``workspace`` short-circuits all of the
    above: the row runs entirely on the caller's workspace (this is how
    :func:`run_table1` shares one strategy/cache across the sweep).
    """
    from repro.api import Workspace

    owns_workspace = workspace is None
    if owns_workspace:
        workspace = Workspace(
            strategy=strategy, cache=cache, cache_dir=cache_dir, search=search
        )
    start = time.perf_counter()
    program = benchmark.program()
    try:
        report = workspace.repair_program(program, search=search)
        oracle_stats: Dict[str, int] = {}
        # One batched CC+RR sweep: on a warm strategy each focus triple
        # is discharged at both levels in one incremental solve
        # sequence; the serial workspace analyzes level by level.
        cc_report, rr_report = workspace.analyze_program_levels(
            program, (CC, RR)
        )
    finally:
        if owns_workspace:
            workspace.close()
    for analysis in (cc_report, rr_report):
        _merge_stats(oracle_stats, analysis)
    elapsed = time.perf_counter() - start
    return Table1Row(
        name=benchmark.name,
        txns=len(program.transactions),
        tables_before=len(program.schemas),
        tables_after=len(report.repaired_program.schemas),
        ec=len(report.initial_pairs),
        at=len(report.residual_pairs),
        cc=len(cc_report.pairs),
        rr=len(rr_report.pairs),
        time_s=elapsed,
        report=report,
        paper_ec=benchmark.paper.ec,
        paper_at=benchmark.paper.at,
        oracle_stats=oracle_stats,
    )


def run_table1(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    strategy: object = "serial",
    cache: Optional[QueryCache] = None,
    search: object = "greedy",
    cache_dir: Optional[str] = None,
    workspace=None,
) -> List[Table1Row]:
    """The full Table 1 sweep (a thin wrapper over
    :class:`repro.api.Workspace`).

    One workspace -- one strategy instance (and its worker pool, if
    any) plus one memo cache -- is shared across all rows.  A
    ``cache_dir`` (ignored when an explicit ``cache`` is given) makes
    that shared cache persistent, so a repeated sweep -- even in a fresh
    process -- warm-starts from the previous run's query outcomes.
    """
    from repro.api import Workspace

    benches = benchmarks or ALL_BENCHMARKS
    if workspace is not None:
        return [run_table1_row(b, search=search, workspace=workspace) for b in benches]
    with Workspace(
        strategy=strategy, cache=cache, cache_dir=cache_dir, search=search
    ) as ws:
        return [run_table1_row(b, search=search, workspace=ws) for b in benches]
